//! A small distributed system of simulated Fireflies.
//!
//! ```text
//! cargo run --example distributed
//! ```
//!
//! Three machines on a simulated Ethernet, each running its own kernel and
//! LRPC runtime (the Taos structure: network protocols live in a domain of
//! their own). Services are spread across the machines; the workstation
//! calls its local services over LRPC and the remote ones transparently
//! through the network — which composes the wire cost with an *actual*
//! LRPC on the far machine.
//!
//! The run then replays a Taos-like call mix (Table 1's ~5 % remote rate)
//! and reports where the communication time went — the paper's argument
//! for optimizing the local case, measured.

use std::sync::Arc;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use firefly::time::Nanos;
use idl::wire::Value;
use kernel::kernel::Kernel;
use lrpc::{Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx};
use msgrpc::Internet;

fn boot() -> Arc<LrpcRuntime> {
    LrpcRuntime::with_config(
        Kernel::new(Machine::new(1, CostModel::cvax_firefly())),
        RuntimeConfig {
            domain_caching: false,
            ..RuntimeConfig::default()
        },
    )
}

fn export_echo(rt: &Arc<LrpcRuntime>, domain_name: &str, idl_src: &str) {
    let domain = rt.kernel().create_domain(domain_name);
    rt.export(
        &domain,
        idl_src,
        vec![Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Var(v) = &args[0] else {
                unreachable!()
            };
            Ok(Reply::value(Value::Int32(v.len() as i32)))
        }) as Handler],
    )
    .expect("export");
}

fn main() {
    // Three machines: the user's workstation plus two servers.
    let workstation = boot();
    let file_host = boot();
    let db_host = boot();

    let net = Internet::new();
    net.attach("workstation", Arc::clone(&workstation));
    net.attach("fileserver", Arc::clone(&file_host));
    net.attach("dbserver", Arc::clone(&db_host));
    println!("{} machines on the simulated Ethernet", net.host_count());

    // Local services on the workstation; remote ones elsewhere.
    export_echo(
        &workstation,
        "window-system",
        "interface Windows { procedure Draw(data: in var bytes[1448] noninterpreted) -> int32; }",
    );
    export_echo(
        &file_host,
        "remote-fs",
        "interface RemoteFiles { procedure Write(data: in var bytes[1448] noninterpreted) -> int32; }",
    );
    export_echo(
        &db_host,
        "database",
        "interface Database { procedure Query(data: in var bytes[1448] noninterpreted) -> int32; }",
    );

    workstation.set_remote_transport(Arc::clone(&net) as Arc<dyn lrpc::RemoteTransport>);
    let app = workstation.kernel().create_domain("editor");
    let thread = workstation.kernel().spawn_thread(&app);

    let local = workstation.import(&app, "Windows").expect("local import");
    let files = workstation
        .import_remote(&app, "RemoteFiles")
        .expect("remote import");
    let db = workstation
        .import_remote(&app, "Database")
        .expect("remote import");

    // One of each, for flavour.
    let payload = vec![0x42u8; 256];
    for (name, binding) in [
        ("Windows (local)", &local),
        ("RemoteFiles", &files),
        ("Database", &db),
    ] {
        let out = binding
            .call_indexed(0, &thread, 0, &[Value::Var(payload.clone())])
            .expect("call");
        println!("{name:<22} -> {:?} in {}", out.ret, out.elapsed);
    }

    // Replay a Taos-like mix: ~95% of calls local, ~5% remote.
    let trace = workload::TraceModel::taos().generate(7, 1_000);
    let mut local_time = Nanos::ZERO;
    let mut remote_time = Nanos::ZERO;
    let mut remote_calls = 0u32;
    for event in &trace.events {
        let args = [Value::Var(vec![0u8; (event.bytes as usize).min(1448)])];
        if event.remote {
            // Alternate between the two remote services.
            let target = if remote_calls.is_multiple_of(2) {
                &files
            } else {
                &db
            };
            remote_time += target
                .call_indexed(0, &thread, 0, &args)
                .expect("remote")
                .elapsed;
            remote_calls += 1;
        } else {
            local_time += local
                .call_indexed(0, &thread, 0, &args)
                .expect("local")
                .elapsed;
        }
    }
    let total = local_time + remote_time;
    println!(
        "\nreplayed {} calls: {} local ({}), {} remote ({})",
        trace.len(),
        trace.len() as u32 - remote_calls,
        local_time,
        remote_calls,
        remote_time
    );
    println!(
        "remote calls are {:.1}% of calls but {:.0}% of communication time — \
         \"most communication traffic in operating systems is cross-domain\", \
         and that is the case LRPC makes fast",
        100.0 * f64::from(remote_calls) / trace.len() as f64,
        100.0 * remote_time.as_nanos() as f64 / total.as_nanos() as f64
    );
}
