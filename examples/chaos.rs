//! Chaos engineering on the LRPC plane: seeded faults, real recovery.
//!
//! ```text
//! cargo run --example chaos [seed]
//! ```
//!
//! Installs a deterministic [`firefly::fault::FaultPlan`] under a running
//! LRPC machine, replays a Taos-like workload trace through a
//! [`lrpc::ResilientClient`] (deadline + retry + circuit breaker), and
//! prints the injected-fault log next to the client-observed error log.
//! Run it twice with the same seed: both logs — and the plan digest —
//! reproduce bit-for-bit. That is the property the chaos test suite
//! (`tests/chaos.rs`) asserts mechanically.

use std::sync::Arc;
use std::time::Duration;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use firefly::fault::{FaultConfig, FaultPlan};
use idl::wire::Value;
use kernel::kernel::Kernel;
use lrpc::{
    AStackPolicy, Handler, LrpcRuntime, RecoveryConfig, Reply, ResilientClient, RetryPolicy,
    RuntimeConfig, ServerCtx,
};
use workload::trace::TraceModel;

const IDL: &str = r#"
    interface Store {
        [astacks = 8] [idempotent = 1] procedure Get(k: int32) -> int32;
        [astacks = 8] procedure Put(k: int32) -> int32;
        [astacks = 8] [idempotent = 1] procedure Stat() -> int32;
    }
"#;

fn handlers() -> Vec<Handler> {
    vec![
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Int32(k) = args[0] else {
                unreachable!()
            };
            Ok(Reply::value(Value::Int32(k.wrapping_add(1))))
        }) as Handler,
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Int32(k) = args[0] else {
                unreachable!()
            };
            Ok(Reply::value(Value::Int32(k.wrapping_mul(2))))
        }) as Handler,
        Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::value(Value::Int32(7)))) as Handler,
    ]
}

fn run(seed: u64) -> (u64, usize, usize, Vec<String>) {
    let kernel = Kernel::new(Machine::new(2, CostModel::cvax_firefly()));
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            astack_policy: AStackPolicy::Fail,
            import_timeout: Duration::from_millis(50),
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("store");
    rt.export(&server, IDL, handlers()).expect("export");

    // The fault schedule: every 9th dispatch panics inside the server
    // procedure, every 13th call presents a forged Binding Object, and
    // each dispatch pays 5 µs of injected scheduling delay.
    let plan = FaultPlan::new(FaultConfig {
        server_panic_every: 9,
        forge_binding_every: 13,
        dispatch_delay_us: 5,
        ..FaultConfig::with_seed(seed)
    });
    rt.set_fault_plan(Some(Arc::clone(&plan)));

    let app = rt.kernel().create_domain("app");
    let client = ResilientClient::import(
        &rt,
        &app,
        "Store",
        RecoveryConfig {
            retry: RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
            jitter_seed: seed,
            ..RecoveryConfig::default()
        },
    )
    .expect("import");

    let trace = TraceModel::taos().generate(seed, 200);
    let (mut ok, mut err) = (0usize, 0usize);
    for ev in &trace.events {
        let (proc, args) = match ev.proc_rank % 3 {
            0 => ("Get", vec![Value::Int32(ev.bytes as i32)]),
            1 => ("Put", vec![Value::Int32(ev.bytes as i32)]),
            _ => ("Stat", vec![]),
        };
        match client.call(proc, &args) {
            Ok(_) => ok += 1,
            Err(_) => err += 1,
        }
    }

    println!("injected faults ({}):", plan.event_count());
    for e in plan.events().iter().take(8) {
        println!("  {e}");
    }
    if plan.event_count() > 8 {
        println!("  ... {} more", plan.event_count() - 8);
    }
    (plan.digest(), ok, err, client.error_log())
}

fn main() {
    // Panics injected into server procedures are caught by the clerk and
    // surfaced as ServerFault; silence the default hook's backtraces.
    std::panic::set_hook(Box::new(|_| {}));
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    println!("=== chaos run, seed {seed} ===");
    let (d1, ok, err, errors) = run(seed);
    println!("calls: {ok} ok, {err} failed");
    println!("client-observed errors ({}):", errors.len());
    for e in errors.iter().take(6) {
        println!("  {e}");
    }
    if errors.len() > 6 {
        println!("  ... {} more", errors.len() - 6);
    }
    println!("fault digest: {d1:#018x}");

    println!("\n=== same seed, fresh machine ===");
    let (d2, ok2, err2, errors2) = run(seed);
    println!("calls: {ok2} ok, {err2} failed");
    println!("fault digest: {d2:#018x}");
    assert_eq!(d1, d2, "same seed, same schedule");
    assert_eq!(errors, errors2, "same seed, same observed errors");
    println!("\nbit-reproducible: digests and error logs match.");
}
