//! The uncommon cases: domain termination and captured threads.
//!
//! ```text
//! cargo run --example domain_termination
//! ```
//!
//! Section 5.3: "A domain can terminate at any time ... If the
//! terminating domain is a server handling an LRPC request, the call,
//! completed or not, must return to the client domain." And: "It is
//! therefore possible for one domain to 'capture' another's thread and
//! hold it indefinitely" — the recovery is a replacement thread that
//! resumes in the client with a call-aborted exception.

use std::sync::Arc;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use idl::wire::Value;
use kernel::kernel::Kernel;
use lrpc::{CallError, Handler, LrpcRuntime, Reply, ServerCtx};
use parking_lot::{Condvar, Mutex};

fn main() {
    // ---- Part 1: terminating a server revokes its bindings -----------
    let kernel = Kernel::new(Machine::new(2, CostModel::cvax_firefly()));
    let rt = LrpcRuntime::new(kernel);

    let server = rt.kernel().create_domain("flaky-server");
    rt.export(
        &server,
        "interface Flaky { procedure Work() -> int32; }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::value(Value::Int32(7)))) as Handler],
    )
    .expect("export");
    let client = rt.kernel().create_domain("client");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "Flaky").expect("import");

    let ok = binding
        .call(0, &thread, "Work", &[])
        .expect("server is alive");
    println!("before termination: Work() -> {:?}", ok.ret);

    // The server hits an unhandled exception (or the user types CTRL-C).
    let report = rt.terminate_domain(&server);
    println!(
        "server terminated: {} region(s) reclaimed, {} linkage(s) invalidated",
        report.regions_freed, report.linkages_invalidated
    );

    match binding.call(0, &thread, "Work", &[]) {
        Err(e) => println!("after termination: Work() raises `{e}`"),
        Ok(_) => unreachable!("revoked bindings cannot be called"),
    }

    // ---- Part 2: captured-thread recovery ----------------------------
    let capturer = rt.kernel().create_domain("capturer");
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let gate_server = Arc::clone(&gate);
    rt.export(
        &capturer,
        "interface Tarpit { procedure Hold(); }",
        vec![Box::new(move |_: &ServerCtx, _: &[Value]| {
            // The server never returns until released — it has captured
            // the caller's thread.
            let (lock, cv) = &*gate_server;
            let mut released = lock.lock();
            while !*released {
                cv.wait(&mut released);
            }
            Ok(Reply::none())
        }) as Handler],
    )
    .expect("export");

    let victim_thread = rt.kernel().spawn_thread(&client);
    let tarpit = rt.import(&client, "Tarpit").expect("import");

    let captured = Arc::clone(&victim_thread);
    let call = std::thread::spawn(move || tarpit.call(1, &captured, "Hold", &[]));
    while victim_thread.current_domain() != capturer.id() {
        std::thread::yield_now();
    }
    println!(
        "\nthread {:?} is captured inside {:?}",
        victim_thread.id(),
        capturer.name()
    );

    // The client gives up: the kernel builds a replacement thread whose
    // state is "as if it had just returned ... with a call-aborted
    // exception".
    let replacement = rt
        .abandon_captured(&victim_thread)
        .expect("thread is mid-call");
    println!(
        "replacement thread {:?} resumes in {:?} with call depth {}",
        replacement.id(),
        client.name(),
        replacement.call_depth()
    );

    // When the capturer finally releases the original thread, the kernel
    // destroys it and the outstanding call reports call-aborted.
    {
        let (lock, cv) = &*gate;
        *lock.lock() = true;
        cv.notify_all();
    }
    match call.join().expect("no panic") {
        Err(CallError::CallAborted) => {
            println!("released captured thread: call-aborted, thread destroyed")
        }
        other => unreachable!("expected call-aborted, got {other:?}"),
    }
    println!("captured thread status: {:?}", victim_thread.status());
}
