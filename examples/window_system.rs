//! A window system behind LRPC — one of the Taos subsystems the paper
//! lists ("domain management, local and remote file systems, window
//! management, network protocols, etc.").
//!
//! ```text
//! cargo run --example window_system
//! ```
//!
//! Window systems are chatty: many small calls carrying handles and tiny
//! records — exactly the Section 2.2 common case that motivates LRPC. This
//! example runs a synthetic interactive session against a window server in
//! its own protection domain and reports the aggregate communication cost
//! under LRPC versus what the SRC RPC baseline would have charged.

use std::sync::Arc;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use idl::wire::Value;
use kernel::kernel::Kernel;
use lrpc::{CallError, Handler, LrpcRuntime, Reply, ServerCtx};
use msgrpc::{MsgRpcCost, MsgRpcSystem};
use parking_lot::Mutex;

const WINDOW_IDL: &str = r#"
    interface WindowSystem {
        procedure CreateWindow(width: int16, height: int16) -> int32;
        [astacks = 10]
        procedure MoveWindow(handle: int32, x: int16, y: int16);
        procedure RaiseWindow(handle: int32);
        procedure GetGeometry(handle: int32)
            -> record { x: int16, y: int16, width: int16, height: int16 };
        [astacks = 10]
        procedure DrawText(handle: int32, text: in var bytes[200] noninterpreted);
        procedure DestroyWindow(handle: int32);
    }
"#;

#[derive(Clone, Copy, Default)]
struct Win {
    x: i16,
    y: i16,
    w: i16,
    h: i16,
    alive: bool,
}

fn window_handlers(state: Arc<Mutex<Vec<Win>>>) -> Vec<Handler> {
    let s_create = Arc::clone(&state);
    let s_move = Arc::clone(&state);
    let s_raise = Arc::clone(&state);
    let s_geom = Arc::clone(&state);
    let s_draw = Arc::clone(&state);
    let s_destroy = state;
    let get = |s: &Mutex<Vec<Win>>, h: i32| -> Result<Win, CallError> {
        s.lock()
            .get(h as usize)
            .copied()
            .filter(|w| w.alive)
            .ok_or(CallError::ServerFault(format!("bad window handle {h}")))
    };
    vec![
        Box::new(move |_: &ServerCtx, args: &[Value]| {
            let (Value::Int16(w), Value::Int16(h)) = (&args[0], &args[1]) else {
                unreachable!()
            };
            let mut windows = s_create.lock();
            windows.push(Win {
                x: 0,
                y: 0,
                w: *w,
                h: *h,
                alive: true,
            });
            Ok(Reply::value(Value::Int32(windows.len() as i32 - 1)))
        }),
        Box::new(move |_: &ServerCtx, args: &[Value]| {
            let Value::Int32(h) = args[0] else {
                unreachable!()
            };
            let (Value::Int16(x), Value::Int16(y)) = (&args[1], &args[2]) else {
                unreachable!()
            };
            let mut windows = s_move.lock();
            let win = windows
                .get_mut(h as usize)
                .filter(|w| w.alive)
                .ok_or(CallError::ServerFault("bad handle".into()))?;
            win.x = *x;
            win.y = *y;
            Ok(Reply::none())
        }),
        Box::new(move |_: &ServerCtx, args: &[Value]| {
            let Value::Int32(h) = args[0] else {
                unreachable!()
            };
            get(&s_raise, h)?;
            Ok(Reply::none())
        }),
        Box::new(move |_: &ServerCtx, args: &[Value]| {
            let Value::Int32(h) = args[0] else {
                unreachable!()
            };
            let w = get(&s_geom, h)?;
            Ok(Reply::value(Value::Record(vec![
                Value::Int16(w.x),
                Value::Int16(w.y),
                Value::Int16(w.w),
                Value::Int16(w.h),
            ])))
        }),
        Box::new(move |_: &ServerCtx, args: &[Value]| {
            let Value::Int32(h) = args[0] else {
                unreachable!()
            };
            get(&s_draw, h)?;
            Ok(Reply::none())
        }),
        Box::new(move |_: &ServerCtx, args: &[Value]| {
            let Value::Int32(h) = args[0] else {
                unreachable!()
            };
            let mut windows = s_destroy.lock();
            if let Some(w) = windows.get_mut(h as usize) {
                w.alive = false;
            }
            Ok(Reply::none())
        }),
    ]
}

fn main() {
    let kernel = Kernel::new(Machine::cvax_firefly());
    let rt = LrpcRuntime::new(kernel);

    let server = rt.kernel().create_domain("window-system");
    rt.export(
        &server,
        WINDOW_IDL,
        window_handlers(Arc::new(Mutex::new(Vec::new()))),
    )
    .expect("export WindowSystem");
    let app = rt.kernel().create_domain("terminal-emulator");
    let thread = rt.kernel().spawn_thread(&app);
    let ws = rt.import(&app, "WindowSystem").expect("import");

    // An interactive session: create a window, drag it around, draw text.
    let created = ws
        .call(
            0,
            &thread,
            "CreateWindow",
            &[Value::Int16(640), Value::Int16(480)],
        )
        .expect("CreateWindow");
    let Some(Value::Int32(win)) = created.ret else {
        panic!("handle")
    };
    println!(
        "CreateWindow(640x480) -> handle {win} ({})",
        created.elapsed
    );

    let mut lrpc_total = created.elapsed;
    let mut calls = 1u32;
    for step in 0..20i16 {
        let out = ws
            .call(
                0,
                &thread,
                "MoveWindow",
                &[
                    Value::Int32(win),
                    Value::Int16(step * 8),
                    Value::Int16(step * 5),
                ],
            )
            .expect("MoveWindow");
        lrpc_total += out.elapsed;
        calls += 1;
    }
    let out = ws
        .call(0, &thread, "RaiseWindow", &[Value::Int32(win)])
        .expect("Raise");
    lrpc_total += out.elapsed;
    calls += 1;
    for line in ["$ cargo test", "running 284 tests", "test result: ok."] {
        let out = ws
            .call(
                0,
                &thread,
                "DrawText",
                &[Value::Int32(win), Value::Var(line.as_bytes().to_vec())],
            )
            .expect("DrawText");
        lrpc_total += out.elapsed;
        calls += 1;
    }
    let geom = ws
        .call(0, &thread, "GetGeometry", &[Value::Int32(win)])
        .expect("GetGeometry");
    println!("GetGeometry -> {:?} ({})", geom.ret, geom.elapsed);
    lrpc_total += geom.elapsed;
    calls += 1;
    let out = ws
        .call(0, &thread, "DestroyWindow", &[Value::Int32(win)])
        .expect("Destroy");
    lrpc_total += out.elapsed;
    calls += 1;

    println!("\nsession: {calls} calls, {lrpc_total} of LRPC communication");
    println!(
        "mean per call: {:.0}us (LRPC)",
        lrpc_total.as_micros_f64() / f64::from(calls)
    );

    // What the same session costs over the conventional path.
    let src_cost = MsgRpcCost::src_rpc_taos();
    let machine = Machine::new(1, CostModel::with_hw(src_cost.hw));
    let msg = MsgRpcSystem::new(Kernel::new(machine), src_cost);
    let sd = msg.kernel().create_domain("window-system");
    let msg_handlers: Vec<msgrpc::MsgHandler> = vec![
        Box::new(|_: &[Value]| Ok(Reply::value(Value::Int32(0)))),
        Box::new(|_: &[Value]| Ok(Reply::none())),
        Box::new(|_: &[Value]| Ok(Reply::none())),
        Box::new(|_: &[Value]| {
            Ok(Reply::value(Value::Record(vec![
                Value::Int16(0),
                Value::Int16(0),
                Value::Int16(0),
                Value::Int16(0),
            ])))
        }),
        Box::new(|_: &[Value]| Ok(Reply::none())),
        Box::new(|_: &[Value]| Ok(Reply::none())),
    ];
    let msg_server = msg
        .export(&sd, WINDOW_IDL, msg_handlers, 2)
        .expect("export msg");
    let msg_client = msg.kernel().create_domain("terminal-emulator");
    let msg_thread = msg.kernel().spawn_thread(&msg_client);
    let mut src_total = firefly::Nanos::ZERO;
    let session: Vec<(&str, Vec<Value>)> = {
        let mut v: Vec<(&str, Vec<Value>)> =
            vec![("CreateWindow", vec![Value::Int16(640), Value::Int16(480)])];
        for step in 0..20i16 {
            v.push((
                "MoveWindow",
                vec![
                    Value::Int32(0),
                    Value::Int16(step * 8),
                    Value::Int16(step * 5),
                ],
            ));
        }
        v.push(("RaiseWindow", vec![Value::Int32(0)]));
        for line in ["$ cargo test", "running 284 tests", "test result: ok."] {
            v.push((
                "DrawText",
                vec![Value::Int32(0), Value::Var(line.as_bytes().to_vec())],
            ));
        }
        v.push(("GetGeometry", vec![Value::Int32(0)]));
        v.push(("DestroyWindow", vec![Value::Int32(0)]));
        v
    };
    for (proc, args) in &session {
        let out = msg
            .call(&msg_client, &msg_thread, &msg_server, 0, proc, args)
            .expect("msg call");
        src_total += out.elapsed;
    }
    println!(
        "same session over SRC RPC: {src_total} ({:.0}us per call) — {:.1}x more \
         communication time",
        src_total.as_micros_f64() / session.len() as f64,
        src_total.as_micros_f64() / lrpc_total.as_micros_f64()
    );
}
