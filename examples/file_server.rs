//! A Taos-style file server behind an LRPC interface.
//!
//! ```text
//! cargo run --example file_server
//! ```
//!
//! The paper's Section 3.5 uses the file server's `Write` as the canonical
//! `noninterpreted` argument: "The array itself is not interpreted by the
//! server, which is made no more secure by an assurance that the bytes
//! won't change during the call. Copying is unnecessary in this case."
//! This example builds a small in-memory file system in its own protection
//! domain, exports it over LRPC, and shows the copy behaviour of
//! interpreted vs noninterpreted arguments.

use std::collections::HashMap;
use std::sync::Arc;

use firefly::cpu::Machine;
use idl::wire::Value;
use kernel::kernel::Kernel;
use lrpc::{CallError, Handler, LrpcRuntime, Reply, ServerCtx};
use parking_lot::Mutex;

const FILE_SERVER_IDL: &str = r#"
    interface FileServer {
        # Open returns a handle; the path is interpreted (it is parsed),
        # so the server stub makes a defensive copy.
        procedure Open(path: in var bytes[256]) -> int32;
        # Write's data is not interpreted; byte copying onto the shared
        # A-stack is sufficient (Section 3.5).
        [astacks = 8]
        procedure Write(handle: int32, data: in var bytes[1024] noninterpreted) -> int32;
        procedure Read(handle: int32, count: int32, data: out bytes[1024]) -> int32;
        procedure Size(handle: int32) -> int32;
        procedure Close(handle: int32);
    }
"#;

/// The server's private state: a handle table of in-memory files.
#[derive(Default)]
struct Fs {
    next_handle: i32,
    open: HashMap<i32, String>,
    files: HashMap<String, Vec<u8>>,
}

fn as_i32(v: &Value) -> Result<i32, CallError> {
    match v {
        Value::Int32(x) => Ok(*x),
        other => Err(CallError::ServerFault(format!(
            "expected int32, got {other:?}"
        ))),
    }
}

fn handlers(fs: Arc<Mutex<Fs>>) -> Vec<Handler> {
    let open_fs = Arc::clone(&fs);
    let write_fs = Arc::clone(&fs);
    let read_fs = Arc::clone(&fs);
    let size_fs = Arc::clone(&fs);
    let close_fs = fs;
    vec![
        // Open(path) -> handle
        Box::new(move |_: &ServerCtx, args: &[Value]| {
            let Value::Var(path) = &args[0] else {
                return Err(CallError::ServerFault("bad path".into()));
            };
            let path = String::from_utf8_lossy(path).into_owned();
            let mut fs = open_fs.lock();
            fs.next_handle += 1;
            let h = fs.next_handle;
            fs.files.entry(path.clone()).or_default();
            fs.open.insert(h, path);
            Ok(Reply::value(Value::Int32(h)))
        }),
        // Write(handle, data) -> bytes written
        Box::new(move |_: &ServerCtx, args: &[Value]| {
            let h = as_i32(&args[0])?;
            let Value::Var(data) = &args[1] else {
                return Err(CallError::ServerFault("bad data".into()));
            };
            let mut fs = write_fs.lock();
            let path = fs
                .open
                .get(&h)
                .cloned()
                .ok_or(CallError::ServerFault("bad handle".into()))?;
            let file = fs.files.get_mut(&path).expect("open file exists");
            file.extend_from_slice(data);
            Ok(Reply::value(Value::Int32(data.len() as i32)))
        }),
        // Read(handle, count, out data) -> bytes read
        Box::new(move |_: &ServerCtx, args: &[Value]| {
            let h = as_i32(&args[0])?;
            let count = as_i32(&args[1])?.clamp(0, 1024) as usize;
            let fs = read_fs.lock();
            let path = fs
                .open
                .get(&h)
                .ok_or(CallError::ServerFault("bad handle".into()))?;
            let file = &fs.files[path];
            let n = count.min(file.len());
            let mut buf = vec![0u8; 1024];
            buf[..n].copy_from_slice(&file[..n]);
            Ok(Reply::value(Value::Int32(n as i32)).with_out(2, Value::Bytes(buf)))
        }),
        // Size(handle) -> bytes
        Box::new(move |_: &ServerCtx, args: &[Value]| {
            let h = as_i32(&args[0])?;
            let fs = size_fs.lock();
            let path = fs
                .open
                .get(&h)
                .ok_or(CallError::ServerFault("bad handle".into()))?;
            Ok(Reply::value(Value::Int32(fs.files[path].len() as i32)))
        }),
        // Close(handle)
        Box::new(move |_: &ServerCtx, args: &[Value]| {
            let h = as_i32(&args[0])?;
            close_fs.lock().open.remove(&h);
            Ok(Reply::none())
        }),
    ]
}

fn main() {
    let kernel = Kernel::new(Machine::cvax_firefly());
    let rt = LrpcRuntime::new(kernel);

    let server = rt.kernel().create_domain("file-server");
    rt.export(
        &server,
        FILE_SERVER_IDL,
        handlers(Arc::new(Mutex::new(Fs::default()))),
    )
    .expect("export FileServer");

    let client = rt.kernel().create_domain("editor");
    let thread = rt.kernel().spawn_thread(&client);
    let fsrv = rt.import(&client, "FileServer").expect("import FileServer");

    // Open a file.
    let open = fsrv
        .call(
            0,
            &thread,
            "Open",
            &[Value::Var(b"/notes/todo.txt".to_vec())],
        )
        .expect("Open");
    let Some(Value::Int32(handle)) = open.ret else {
        panic!("Open returns a handle")
    };
    println!(
        "Open(/notes/todo.txt) -> handle {handle} ({})",
        open.elapsed
    );

    // Write noninterpreted bytes: one copy (A), straight onto the A-stack.
    let payload = b"1. reproduce LRPC\n2. ship it\n".to_vec();
    let write = fsrv
        .call(
            0,
            &thread,
            "Write",
            &[Value::Int32(handle), Value::Var(payload.clone())],
        )
        .expect("Write");
    println!(
        "Write({} bytes) -> {:?} ({}; copy operations: {})",
        payload.len(),
        write.ret,
        write.elapsed,
        write.copies.letters_string()
    );

    // Read it back through an out parameter.
    let read = fsrv
        .call(
            0,
            &thread,
            "Read",
            &[
                Value::Int32(handle),
                Value::Int32(1024),
                Value::Bytes(vec![0; 1024]),
            ],
        )
        .expect("Read");
    let Some(Value::Int32(n)) = read.ret else {
        panic!("Read returns a count")
    };
    let Some((_, Value::Bytes(buf))) = read.outs.first() else {
        panic!("Read fills data")
    };
    println!(
        "Read -> {n} bytes: {:?} ({})",
        String::from_utf8_lossy(&buf[..n as usize]),
        read.elapsed
    );

    let size = fsrv
        .call(0, &thread, "Size", &[Value::Int32(handle)])
        .expect("Size");
    println!("Size -> {:?}", size.ret);

    fsrv.call(0, &thread, "Close", &[Value::Int32(handle)])
        .expect("Close");
    println!("Close -> ok");

    // The Open path *interprets* its argument, so its copy log shows the
    // defensive server copy (E) that Write avoids.
    let open2 = fsrv
        .call(
            0,
            &thread,
            "Open",
            &[Value::Var(b"/notes/other.txt".to_vec())],
        )
        .expect("Open");
    println!(
        "\ncopy operations: Open (interpreted path) = {}, Write (noninterpreted) = {}",
        open2.copies.letters_string(),
        write.copies.letters_string()
    );
}
