//! Quickstart: export an interface, bind to it, make a call.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This walks the full LRPC lifecycle of Section 3 on a simulated C-VAX
//! Firefly: a server domain exports `Math` through its clerk, a client
//! domain imports it (the kernel pairwise-allocates A-stacks and returns a
//! Binding Object), and the client's own thread then executes the server's
//! procedure via kernel-validated domain transfer.

use firefly::cpu::Machine;
use idl::wire::Value;
use kernel::kernel::Kernel;
use lrpc::{CallError, Handler, LrpcRuntime, Reply, ServerCtx};

fn main() {
    // A four-processor C-VAX Firefly running the small kernel.
    let machine = Machine::cvax_firefly();
    let kernel = Kernel::new(machine);
    let rt = LrpcRuntime::new(kernel);

    // The server domain exports an interface through its clerk.
    let server = rt.kernel().create_domain("math-server");
    let handlers: Vec<Handler> = vec![
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
                return Err(CallError::ServerFault("stub type mismatch".into()));
            };
            Ok(Reply::value(Value::Int32(a + b)))
        }),
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Int32(x) = args[0] else {
                return Err(CallError::ServerFault("stub type mismatch".into()));
            };
            Ok(Reply::value(Value::Int32(x * x)))
        }),
    ];
    rt.export(
        &server,
        r#"interface Math {
            procedure Add(a: int32, b: int32) -> int32;
            procedure Square(x: int32) -> int32;
        }"#,
        handlers,
    )
    .expect("export Math");

    // A client domain imports the interface; the kernel allocates the
    // pairwise-shared A-stacks and hands back a Binding Object.
    let client = rt.kernel().create_domain("app");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "Math").expect("import Math");

    // Call through the binding: the client's thread runs Add in the
    // server's domain.
    let out = binding
        .call(0, &thread, "Add", &[Value::Int32(19), Value::Int32(23)])
        .expect("Add succeeds");
    println!(
        "Add(19, 23)   = {:?}   ({} simulated)",
        out.ret, out.elapsed
    );

    let out = binding
        .call(0, &thread, "Square", &[Value::Int32(12)])
        .expect("Square succeeds");
    println!(
        "Square(12)    = {:?}   ({} simulated)",
        out.ret, out.elapsed
    );

    // Where did the time go? The meter shows the Table 5 phases.
    println!("\ntime breakdown of the last call:");
    for (phase, dur) in out.meter.breakdown() {
        println!("  {:<20} {}", phase.label(), dur);
    }

    // A forged Binding Object is detected by the kernel.
    let forged = binding.forged();
    let err = forged
        .call(0, &thread, "Add", &[Value::Int32(1), Value::Int32(1)])
        .unwrap_err();
    println!("\nforged binding object rejected: {err}");
}
