//! Transparency and cross-machine calls (Section 5.1).
//!
//! ```text
//! cargo run --example remote_transparency
//! ```
//!
//! "Deciding whether a call is cross-domain or cross-machine is made at
//! the earliest possible moment — the first instruction of the stub. If
//! the call is to a truly remote server (indicated by a bit in the Binding
//! Object), then a branch is taken to a more conventional RPC stub."
//!
//! The same client code calls a local file server over LRPC and a remote
//! one over the simulated Ethernet; only the import differs.

use firefly::cpu::Machine;
use idl::wire::Value;
use kernel::kernel::Kernel;
use lrpc::{Binding, Handler, LrpcRuntime, Reply, ServerCtx};
use msgrpc::{MsgHandler, RemoteMachine};

const STORE_IDL: &str = r#"
    interface Store {
        procedure Put(key: int32, value: in var bytes[1024]) -> int32;
        procedure Get(key: int32) -> int32;
    }
"#;

fn main() {
    let kernel = Kernel::new(Machine::cvax_firefly());
    let rt = LrpcRuntime::new(kernel);

    // A local store in its own protection domain.
    let local_server = rt.kernel().create_domain("local-store");
    let local_handlers: Vec<Handler> = vec![
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Var(v) = &args[1] else {
                unreachable!("stub-decoded")
            };
            Ok(Reply::value(Value::Int32(v.len() as i32)))
        }),
        Box::new(|_: &ServerCtx, args: &[Value]| Ok(Reply::value(args[0].clone()))),
    ];
    rt.export(&local_server, STORE_IDL, local_handlers)
        .expect("export local store");

    // A remote file server across the simulated Ethernet.
    let remote = RemoteMachine::new("fileserver.cs.washington.edu");
    let remote_handlers: Vec<MsgHandler> = vec![
        Box::new(|args: &[Value]| {
            let Value::Var(v) = &args[1] else {
                unreachable!("stub-decoded")
            };
            Ok(Reply::value(Value::Int32(v.len() as i32)))
        }),
        Box::new(|args: &[Value]| Ok(Reply::value(args[0].clone()))),
    ];
    remote
        .export(
            STORE_IDL.replace("Store", "RemoteStore").as_str(),
            remote_handlers,
        )
        .expect("export remote store");
    rt.set_remote_transport(remote);

    let client = rt.kernel().create_domain("app");
    let thread = rt.kernel().spawn_thread(&client);

    // Two bindings, same programming model; the remote one carries the
    // remote bit.
    let local: Binding = rt.import(&client, "Store").expect("local import");
    let far: Binding = rt
        .import_remote(&client, "RemoteStore")
        .expect("remote import");

    let payload = Value::Var(vec![0xAA; 512]);
    let args = [Value::Int32(42), payload];

    let near = local.call(0, &thread, "Put", &args).expect("local Put");
    println!("local  Put(512 bytes): {:?} in {}", near.ret, near.elapsed);

    let wide = far.call(0, &thread, "Put", &args).expect("remote Put");
    println!("remote Put(512 bytes): {:?} in {}", wide.ret, wide.elapsed);

    let ratio = wide.elapsed.as_micros_f64() / near.elapsed.as_micros_f64();
    println!(
        "\nthe remote call is {ratio:.0}x slower — \"a cross-machine RPC is slower than \
         even a slow cross-domain RPC\", which is why systems localize processing"
    );

    // Multi-packet calls pay per Ethernet packet — the reason A-stacks
    // default to the Ethernet packet size (Section 5.2).
    let big = [Value::Int32(7), Value::Var(vec![1; 1024])];
    let one_packet = far.call(0, &thread, "Put", &big).expect("1-packet Put");
    println!(
        "\nremote Put(1024 bytes, 1 packet):  {}",
        one_packet.elapsed
    );
}
