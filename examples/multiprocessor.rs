//! LRPC on a multiprocessor: domain caching and call throughput.
//!
//! ```text
//! cargo run --example multiprocessor
//! ```
//!
//! Demonstrates the two Section 3.4 mechanisms:
//!
//! 1. *Domain caching* — an idle processor spinning in the server's
//!    context is claimed at call time, replacing the context switch with a
//!    processor exchange (Table 4's LRPC/MP column), and the scheduler
//!    prods idle processors toward the domains with the most LRPC traffic.
//! 2. *Throughput scaling* — with per-A-stack-queue locks only, call
//!    throughput scales with processors, while SRC RPC's global lock caps
//!    it near 4 000 calls/second (Figure 2).

use firefly::contention::{simulate_throughput, CallProfile, ResourceId, Seg};
use firefly::cost::CostModel;
use firefly::cpu::Machine;
use firefly::time::Nanos;
use idl::wire::Value;
use kernel::kernel::Kernel;
use kernel::prod_idle_processors;
use lrpc::{Handler, LrpcRuntime, Reply, ServerCtx};
use msgrpc::MsgRpcCost;

fn main() {
    // ---- Part 1: domain caching -------------------------------------
    let kernel = Kernel::new(Machine::cvax_firefly());
    let rt = LrpcRuntime::new(kernel);
    let server = rt.kernel().create_domain("hot-server");
    rt.export(
        &server,
        "interface Hot { procedure Ping(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .expect("export");
    let client = rt.kernel().create_domain("client");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "Hot").expect("import");

    // First calls find no idle processor in the server's context; the
    // kernel counts the misses.
    let cold = binding.call(0, &thread, "Ping", &[]).expect("cold call");
    binding.call(0, &thread, "Ping", &[]).expect("second call");
    println!(
        "without a cached domain: Ping takes {} (exchange on call: {})",
        cold.elapsed, cold.exchanged_on_call
    );
    println!(
        "idle-processor misses recorded for the server: {}",
        server.idle_misses()
    );

    // CPUs 2 and 3 go idle; the scheduler prods them toward the domains
    // showing the most LRPC activity.
    let machine = rt.kernel().machine().clone();
    machine
        .cpu(2)
        .set_idle_in(Some(firefly::vm::ContextId::KERNEL));
    machine
        .cpu(3)
        .set_idle_in(Some(firefly::vm::ContextId::KERNEL));
    let assigned = prod_idle_processors(&machine, &[server.clone(), client.clone()]);
    println!(
        "scheduler parked {} idle CPU(s) in the server's context",
        assigned[0]
    );

    // Now calls exchange processors instead of switching contexts.
    let warm = binding.call(0, &thread, "Ping", &[]).expect("warm call");
    let steady = binding
        .call(warm.end_cpu, &thread, "Ping", &[])
        .expect("steady call");
    println!(
        "with a cached domain:    Ping takes {} (exchanged on call: {}, on return: {})",
        steady.elapsed, steady.exchanged_on_call, steady.exchanged_on_return
    );

    // ---- Part 2: Figure 2's throughput experiment --------------------
    println!("\ncall throughput vs processors (domain caching disabled):");
    println!(
        "{:>5} {:>14} {:>14} {:>10}",
        "CPUs", "LRPC calls/s", "optimal", "SRC RPC"
    );
    let cvax = CostModel::cvax_firefly();
    let src = MsgRpcCost::src_rpc_taos();
    let second = Nanos::from_secs(1);
    for n in 1..=4usize {
        let lrpc_profiles: Vec<CallProfile> = (0..n)
            .map(|i| {
                let total = cvax.lrpc_null_serial();
                let bus = cvax.bus_time_null_call;
                let q = cvax.astack_queue_op;
                let compute = total - bus - q * 2;
                CallProfile::new(vec![
                    Seg::Use {
                        res: ResourceId(1 + i),
                        hold: q,
                    },
                    Seg::Compute(compute / 2),
                    Seg::Use {
                        res: ResourceId(0),
                        hold: bus,
                    },
                    Seg::Compute(compute - compute / 2),
                    Seg::Use {
                        res: ResourceId(1 + i),
                        hold: q,
                    },
                ])
            })
            .collect();
        let lrpc_tp = simulate_throughput(&lrpc_profiles, 1 + n, second).calls_per_second();

        let src_total = src.null_actual();
        let lock = src.global_lock_held;
        let src_profile = CallProfile::new(vec![
            Seg::Compute((src_total - lock) / 2),
            Seg::Use {
                res: ResourceId(0),
                hold: lock,
            },
            Seg::Compute(src_total - lock - (src_total - lock) / 2),
        ]);
        let src_tp = simulate_throughput(&vec![src_profile; n], 1, second).calls_per_second();

        let single = 1_000_000.0 / cvax.lrpc_null_serial().as_micros_f64();
        println!(
            "{n:>5} {:>14.0} {:>14.0} {:>10.0}",
            lrpc_tp,
            single * n as f64,
            src_tp
        );
    }
    println!("\nLRPC scales with processors; SRC RPC flattens behind its global lock.");
}
