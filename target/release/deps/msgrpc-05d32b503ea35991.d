/root/repo/target/release/deps/msgrpc-05d32b503ea35991.d: crates/msgrpc/src/lib.rs crates/msgrpc/src/internet.rs crates/msgrpc/src/marshal.rs crates/msgrpc/src/message.rs crates/msgrpc/src/model.rs crates/msgrpc/src/net.rs crates/msgrpc/src/receiver.rs crates/msgrpc/src/system.rs

/root/repo/target/release/deps/libmsgrpc-05d32b503ea35991.rlib: crates/msgrpc/src/lib.rs crates/msgrpc/src/internet.rs crates/msgrpc/src/marshal.rs crates/msgrpc/src/message.rs crates/msgrpc/src/model.rs crates/msgrpc/src/net.rs crates/msgrpc/src/receiver.rs crates/msgrpc/src/system.rs

/root/repo/target/release/deps/libmsgrpc-05d32b503ea35991.rmeta: crates/msgrpc/src/lib.rs crates/msgrpc/src/internet.rs crates/msgrpc/src/marshal.rs crates/msgrpc/src/message.rs crates/msgrpc/src/model.rs crates/msgrpc/src/net.rs crates/msgrpc/src/receiver.rs crates/msgrpc/src/system.rs

crates/msgrpc/src/lib.rs:
crates/msgrpc/src/internet.rs:
crates/msgrpc/src/marshal.rs:
crates/msgrpc/src/message.rs:
crates/msgrpc/src/model.rs:
crates/msgrpc/src/net.rs:
crates/msgrpc/src/receiver.rs:
crates/msgrpc/src/system.rs:
