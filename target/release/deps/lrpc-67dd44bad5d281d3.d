/root/repo/target/release/deps/lrpc-67dd44bad5d281d3.d: crates/lrpc/src/lib.rs crates/lrpc/src/astack.rs crates/lrpc/src/binding.rs crates/lrpc/src/call.rs crates/lrpc/src/error.rs crates/lrpc/src/estack.rs crates/lrpc/src/remote.rs crates/lrpc/src/runtime.rs crates/lrpc/src/touch.rs crates/lrpc/src/typed.rs

/root/repo/target/release/deps/lrpc-67dd44bad5d281d3: crates/lrpc/src/lib.rs crates/lrpc/src/astack.rs crates/lrpc/src/binding.rs crates/lrpc/src/call.rs crates/lrpc/src/error.rs crates/lrpc/src/estack.rs crates/lrpc/src/remote.rs crates/lrpc/src/runtime.rs crates/lrpc/src/touch.rs crates/lrpc/src/typed.rs

crates/lrpc/src/lib.rs:
crates/lrpc/src/astack.rs:
crates/lrpc/src/binding.rs:
crates/lrpc/src/call.rs:
crates/lrpc/src/error.rs:
crates/lrpc/src/estack.rs:
crates/lrpc/src/remote.rs:
crates/lrpc/src/runtime.rs:
crates/lrpc/src/touch.rs:
crates/lrpc/src/typed.rs:
