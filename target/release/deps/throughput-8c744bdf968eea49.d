/root/repo/target/release/deps/throughput-8c744bdf968eea49.d: crates/bench/benches/throughput.rs

/root/repo/target/release/deps/throughput-8c744bdf968eea49: crates/bench/benches/throughput.rs

crates/bench/benches/throughput.rs:
