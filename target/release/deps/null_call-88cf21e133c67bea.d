/root/repo/target/release/deps/null_call-88cf21e133c67bea.d: crates/bench/benches/null_call.rs

/root/repo/target/release/deps/null_call-88cf21e133c67bea: crates/bench/benches/null_call.rs

crates/bench/benches/null_call.rs:
