/root/repo/target/release/deps/kernel-baedcc6cfac265fd.d: crates/kernel/src/lib.rs crates/kernel/src/domain.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/nameserver.rs crates/kernel/src/objects.rs crates/kernel/src/sched.rs crates/kernel/src/thread.rs

/root/repo/target/release/deps/libkernel-baedcc6cfac265fd.rlib: crates/kernel/src/lib.rs crates/kernel/src/domain.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/nameserver.rs crates/kernel/src/objects.rs crates/kernel/src/sched.rs crates/kernel/src/thread.rs

/root/repo/target/release/deps/libkernel-baedcc6cfac265fd.rmeta: crates/kernel/src/lib.rs crates/kernel/src/domain.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/nameserver.rs crates/kernel/src/objects.rs crates/kernel/src/sched.rs crates/kernel/src/thread.rs

crates/kernel/src/lib.rs:
crates/kernel/src/domain.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/nameserver.rs:
crates/kernel/src/objects.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/thread.rs:
