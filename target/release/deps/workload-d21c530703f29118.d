/root/repo/target/release/deps/workload-d21c530703f29118.d: crates/workload/src/lib.rs crates/workload/src/activity.rs crates/workload/src/corpus.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libworkload-d21c530703f29118.rlib: crates/workload/src/lib.rs crates/workload/src/activity.rs crates/workload/src/corpus.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libworkload-d21c530703f29118.rmeta: crates/workload/src/lib.rs crates/workload/src/activity.rs crates/workload/src/corpus.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/activity.rs:
crates/workload/src/corpus.rs:
crates/workload/src/sizes.rs:
crates/workload/src/trace.rs:
