/root/repo/target/release/deps/lrpc_suite-f491abd57ba356c6.d: src/suite.rs

/root/repo/target/release/deps/liblrpc_suite-f491abd57ba356c6.rlib: src/suite.rs

/root/repo/target/release/deps/liblrpc_suite-f491abd57ba356c6.rmeta: src/suite.rs

src/suite.rs:
