/root/repo/target/release/deps/idl-598d68d011ad4ae5.d: crates/idl/src/lib.rs crates/idl/src/ast.rs crates/idl/src/copyops.rs crates/idl/src/layout.rs crates/idl/src/parse.rs crates/idl/src/print.rs crates/idl/src/stubgen.rs crates/idl/src/stubvm.rs crates/idl/src/types.rs crates/idl/src/wire.rs

/root/repo/target/release/deps/libidl-598d68d011ad4ae5.rlib: crates/idl/src/lib.rs crates/idl/src/ast.rs crates/idl/src/copyops.rs crates/idl/src/layout.rs crates/idl/src/parse.rs crates/idl/src/print.rs crates/idl/src/stubgen.rs crates/idl/src/stubvm.rs crates/idl/src/types.rs crates/idl/src/wire.rs

/root/repo/target/release/deps/libidl-598d68d011ad4ae5.rmeta: crates/idl/src/lib.rs crates/idl/src/ast.rs crates/idl/src/copyops.rs crates/idl/src/layout.rs crates/idl/src/parse.rs crates/idl/src/print.rs crates/idl/src/stubgen.rs crates/idl/src/stubvm.rs crates/idl/src/types.rs crates/idl/src/wire.rs

crates/idl/src/lib.rs:
crates/idl/src/ast.rs:
crates/idl/src/copyops.rs:
crates/idl/src/layout.rs:
crates/idl/src/parse.rs:
crates/idl/src/print.rs:
crates/idl/src/stubgen.rs:
crates/idl/src/stubvm.rs:
crates/idl/src/types.rs:
crates/idl/src/wire.rs:
