/root/repo/target/release/deps/bytes-bd9b68bff80bc4ac.d: crates/shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-bd9b68bff80bc4ac.rlib: crates/shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-bd9b68bff80bc4ac.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
