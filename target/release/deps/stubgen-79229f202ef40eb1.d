/root/repo/target/release/deps/stubgen-79229f202ef40eb1.d: crates/idl/src/bin/stubgen.rs

/root/repo/target/release/deps/stubgen-79229f202ef40eb1: crates/idl/src/bin/stubgen.rs

crates/idl/src/bin/stubgen.rs:
