/root/repo/target/release/deps/kernel-7f386ef7c5ede306.d: crates/kernel/src/lib.rs crates/kernel/src/domain.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/nameserver.rs crates/kernel/src/objects.rs crates/kernel/src/sched.rs crates/kernel/src/thread.rs

/root/repo/target/release/deps/kernel-7f386ef7c5ede306: crates/kernel/src/lib.rs crates/kernel/src/domain.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/nameserver.rs crates/kernel/src/objects.rs crates/kernel/src/sched.rs crates/kernel/src/thread.rs

crates/kernel/src/lib.rs:
crates/kernel/src/domain.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/nameserver.rs:
crates/kernel/src/objects.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/thread.rs:
