/root/repo/target/release/deps/workload-af265ef25fc7f95c.d: crates/workload/src/lib.rs crates/workload/src/activity.rs crates/workload/src/corpus.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/workload-af265ef25fc7f95c: crates/workload/src/lib.rs crates/workload/src/activity.rs crates/workload/src/corpus.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/activity.rs:
crates/workload/src/corpus.rs:
crates/workload/src/sizes.rs:
crates/workload/src/trace.rs:
