/root/repo/target/release/deps/lrpc_suite-56c2d57e2a65e4f8.d: src/suite.rs

/root/repo/target/release/deps/lrpc_suite-56c2d57e2a65e4f8: src/suite.rs

src/suite.rs:
