/root/repo/target/release/deps/stubs-43914c8df6ad1500.d: crates/bench/benches/stubs.rs

/root/repo/target/release/deps/stubs-43914c8df6ad1500: crates/bench/benches/stubs.rs

crates/bench/benches/stubs.rs:
