/root/repo/target/release/deps/tables-6faae1b9fa21f205.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-6faae1b9fa21f205: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
