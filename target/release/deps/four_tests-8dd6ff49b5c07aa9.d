/root/repo/target/release/deps/four_tests-8dd6ff49b5c07aa9.d: crates/bench/benches/four_tests.rs

/root/repo/target/release/deps/four_tests-8dd6ff49b5c07aa9: crates/bench/benches/four_tests.rs

crates/bench/benches/four_tests.rs:
