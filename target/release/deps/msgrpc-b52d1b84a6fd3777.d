/root/repo/target/release/deps/msgrpc-b52d1b84a6fd3777.d: crates/msgrpc/src/lib.rs crates/msgrpc/src/internet.rs crates/msgrpc/src/marshal.rs crates/msgrpc/src/message.rs crates/msgrpc/src/model.rs crates/msgrpc/src/net.rs crates/msgrpc/src/receiver.rs crates/msgrpc/src/system.rs

/root/repo/target/release/deps/msgrpc-b52d1b84a6fd3777: crates/msgrpc/src/lib.rs crates/msgrpc/src/internet.rs crates/msgrpc/src/marshal.rs crates/msgrpc/src/message.rs crates/msgrpc/src/model.rs crates/msgrpc/src/net.rs crates/msgrpc/src/receiver.rs crates/msgrpc/src/system.rs

crates/msgrpc/src/lib.rs:
crates/msgrpc/src/internet.rs:
crates/msgrpc/src/marshal.rs:
crates/msgrpc/src/message.rs:
crates/msgrpc/src/model.rs:
crates/msgrpc/src/net.rs:
crates/msgrpc/src/receiver.rs:
crates/msgrpc/src/system.rs:
