/root/repo/target/release/deps/bench-8e8ad1d5433ab2b2.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libbench-8e8ad1d5433ab2b2.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libbench-8e8ad1d5433ab2b2.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/common.rs:
crates/bench/src/experiments.rs:
