/root/repo/target/release/deps/firefly-c5b484289ca77251.d: crates/firefly/src/lib.rs crates/firefly/src/contention.rs crates/firefly/src/cost.rs crates/firefly/src/cpu.rs crates/firefly/src/error.rs crates/firefly/src/mem.rs crates/firefly/src/meter.rs crates/firefly/src/time.rs crates/firefly/src/tlb.rs crates/firefly/src/vm.rs

/root/repo/target/release/deps/firefly-c5b484289ca77251: crates/firefly/src/lib.rs crates/firefly/src/contention.rs crates/firefly/src/cost.rs crates/firefly/src/cpu.rs crates/firefly/src/error.rs crates/firefly/src/mem.rs crates/firefly/src/meter.rs crates/firefly/src/time.rs crates/firefly/src/tlb.rs crates/firefly/src/vm.rs

crates/firefly/src/lib.rs:
crates/firefly/src/contention.rs:
crates/firefly/src/cost.rs:
crates/firefly/src/cpu.rs:
crates/firefly/src/error.rs:
crates/firefly/src/mem.rs:
crates/firefly/src/meter.rs:
crates/firefly/src/time.rs:
crates/firefly/src/tlb.rs:
crates/firefly/src/vm.rs:
