/root/repo/target/release/deps/ablation_bench-6db4a7670f9d5bdc.d: crates/bench/benches/ablation_bench.rs

/root/repo/target/release/deps/ablation_bench-6db4a7670f9d5bdc: crates/bench/benches/ablation_bench.rs

crates/bench/benches/ablation_bench.rs:
