/root/repo/target/debug/examples/multiprocessor-1b4863c6c2ab4714.d: examples/multiprocessor.rs

/root/repo/target/debug/examples/multiprocessor-1b4863c6c2ab4714: examples/multiprocessor.rs

examples/multiprocessor.rs:
