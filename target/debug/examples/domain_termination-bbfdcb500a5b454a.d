/root/repo/target/debug/examples/domain_termination-bbfdcb500a5b454a.d: examples/domain_termination.rs

/root/repo/target/debug/examples/domain_termination-bbfdcb500a5b454a: examples/domain_termination.rs

examples/domain_termination.rs:
