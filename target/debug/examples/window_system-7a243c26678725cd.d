/root/repo/target/debug/examples/window_system-7a243c26678725cd.d: examples/window_system.rs

/root/repo/target/debug/examples/window_system-7a243c26678725cd: examples/window_system.rs

examples/window_system.rs:
