/root/repo/target/debug/examples/remote_transparency-636fd7f85943e8fe.d: examples/remote_transparency.rs

/root/repo/target/debug/examples/remote_transparency-636fd7f85943e8fe: examples/remote_transparency.rs

examples/remote_transparency.rs:
