/root/repo/target/debug/examples/file_server-c1d843e591b7d794.d: examples/file_server.rs

/root/repo/target/debug/examples/file_server-c1d843e591b7d794: examples/file_server.rs

examples/file_server.rs:
