/root/repo/target/debug/examples/quickstart-ada926d5ff846fca.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ada926d5ff846fca: examples/quickstart.rs

examples/quickstart.rs:
