/root/repo/target/debug/examples/distributed-1c0f2926c95a7f84.d: examples/distributed.rs

/root/repo/target/debug/examples/distributed-1c0f2926c95a7f84: examples/distributed.rs

examples/distributed.rs:
