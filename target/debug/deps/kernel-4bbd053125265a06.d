/root/repo/target/debug/deps/kernel-4bbd053125265a06.d: crates/kernel/src/lib.rs crates/kernel/src/domain.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/nameserver.rs crates/kernel/src/objects.rs crates/kernel/src/sched.rs crates/kernel/src/thread.rs

/root/repo/target/debug/deps/kernel-4bbd053125265a06: crates/kernel/src/lib.rs crates/kernel/src/domain.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/nameserver.rs crates/kernel/src/objects.rs crates/kernel/src/sched.rs crates/kernel/src/thread.rs

crates/kernel/src/lib.rs:
crates/kernel/src/domain.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/nameserver.rs:
crates/kernel/src/objects.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/thread.rs:
