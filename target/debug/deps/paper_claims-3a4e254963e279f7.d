/root/repo/target/debug/deps/paper_claims-3a4e254963e279f7.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-3a4e254963e279f7: tests/paper_claims.rs

tests/paper_claims.rs:
