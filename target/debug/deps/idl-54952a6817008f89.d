/root/repo/target/debug/deps/idl-54952a6817008f89.d: crates/idl/src/lib.rs crates/idl/src/ast.rs crates/idl/src/copyops.rs crates/idl/src/layout.rs crates/idl/src/parse.rs crates/idl/src/print.rs crates/idl/src/stubgen.rs crates/idl/src/stubvm.rs crates/idl/src/types.rs crates/idl/src/wire.rs

/root/repo/target/debug/deps/idl-54952a6817008f89: crates/idl/src/lib.rs crates/idl/src/ast.rs crates/idl/src/copyops.rs crates/idl/src/layout.rs crates/idl/src/parse.rs crates/idl/src/print.rs crates/idl/src/stubgen.rs crates/idl/src/stubvm.rs crates/idl/src/types.rs crates/idl/src/wire.rs

crates/idl/src/lib.rs:
crates/idl/src/ast.rs:
crates/idl/src/copyops.rs:
crates/idl/src/layout.rs:
crates/idl/src/parse.rs:
crates/idl/src/print.rs:
crates/idl/src/stubgen.rs:
crates/idl/src/stubvm.rs:
crates/idl/src/types.rs:
crates/idl/src/wire.rs:
