/root/repo/target/debug/deps/workload-789bf8158eb2cc4c.d: crates/workload/src/lib.rs crates/workload/src/activity.rs crates/workload/src/corpus.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/workload-789bf8158eb2cc4c: crates/workload/src/lib.rs crates/workload/src/activity.rs crates/workload/src/corpus.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/activity.rs:
crates/workload/src/corpus.rs:
crates/workload/src/sizes.rs:
crates/workload/src/trace.rs:
