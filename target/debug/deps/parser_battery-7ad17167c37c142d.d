/root/repo/target/debug/deps/parser_battery-7ad17167c37c142d.d: crates/idl/tests/parser_battery.rs

/root/repo/target/debug/deps/parser_battery-7ad17167c37c142d: crates/idl/tests/parser_battery.rs

crates/idl/tests/parser_battery.rs:
