/root/repo/target/debug/deps/props-ef40a4c149805181.d: crates/kernel/tests/props.rs

/root/repo/target/debug/deps/props-ef40a4c149805181: crates/kernel/tests/props.rs

crates/kernel/tests/props.rs:
