/root/repo/target/debug/deps/facade-4b110fb59e98e0f6.d: tests/facade.rs

/root/repo/target/debug/deps/facade-4b110fb59e98e0f6: tests/facade.rs

tests/facade.rs:
