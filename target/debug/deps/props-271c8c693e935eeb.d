/root/repo/target/debug/deps/props-271c8c693e935eeb.d: tests/props.rs

/root/repo/target/debug/deps/props-271c8c693e935eeb: tests/props.rs

tests/props.rs:
