/root/repo/target/debug/deps/distributed_system-60a4d5461ed648bb.d: tests/distributed_system.rs

/root/repo/target/debug/deps/distributed_system-60a4d5461ed648bb: tests/distributed_system.rs

tests/distributed_system.rs:
