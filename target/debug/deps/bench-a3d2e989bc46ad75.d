/root/repo/target/debug/deps/bench-a3d2e989bc46ad75.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/bench-a3d2e989bc46ad75: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/common.rs:
crates/bench/src/experiments.rs:
