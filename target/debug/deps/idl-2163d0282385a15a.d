/root/repo/target/debug/deps/idl-2163d0282385a15a.d: crates/idl/src/lib.rs crates/idl/src/ast.rs crates/idl/src/copyops.rs crates/idl/src/layout.rs crates/idl/src/parse.rs crates/idl/src/print.rs crates/idl/src/stubgen.rs crates/idl/src/stubvm.rs crates/idl/src/types.rs crates/idl/src/wire.rs

/root/repo/target/debug/deps/libidl-2163d0282385a15a.rlib: crates/idl/src/lib.rs crates/idl/src/ast.rs crates/idl/src/copyops.rs crates/idl/src/layout.rs crates/idl/src/parse.rs crates/idl/src/print.rs crates/idl/src/stubgen.rs crates/idl/src/stubvm.rs crates/idl/src/types.rs crates/idl/src/wire.rs

/root/repo/target/debug/deps/libidl-2163d0282385a15a.rmeta: crates/idl/src/lib.rs crates/idl/src/ast.rs crates/idl/src/copyops.rs crates/idl/src/layout.rs crates/idl/src/parse.rs crates/idl/src/print.rs crates/idl/src/stubgen.rs crates/idl/src/stubvm.rs crates/idl/src/types.rs crates/idl/src/wire.rs

crates/idl/src/lib.rs:
crates/idl/src/ast.rs:
crates/idl/src/copyops.rs:
crates/idl/src/layout.rs:
crates/idl/src/parse.rs:
crates/idl/src/print.rs:
crates/idl/src/stubgen.rs:
crates/idl/src/stubvm.rs:
crates/idl/src/types.rs:
crates/idl/src/wire.rs:
