/root/repo/target/debug/deps/msgrpc-c3be1842bd0f98a3.d: crates/msgrpc/src/lib.rs crates/msgrpc/src/internet.rs crates/msgrpc/src/marshal.rs crates/msgrpc/src/message.rs crates/msgrpc/src/model.rs crates/msgrpc/src/net.rs crates/msgrpc/src/receiver.rs crates/msgrpc/src/system.rs

/root/repo/target/debug/deps/msgrpc-c3be1842bd0f98a3: crates/msgrpc/src/lib.rs crates/msgrpc/src/internet.rs crates/msgrpc/src/marshal.rs crates/msgrpc/src/message.rs crates/msgrpc/src/model.rs crates/msgrpc/src/net.rs crates/msgrpc/src/receiver.rs crates/msgrpc/src/system.rs

crates/msgrpc/src/lib.rs:
crates/msgrpc/src/internet.rs:
crates/msgrpc/src/marshal.rs:
crates/msgrpc/src/message.rs:
crates/msgrpc/src/model.rs:
crates/msgrpc/src/net.rs:
crates/msgrpc/src/receiver.rs:
crates/msgrpc/src/system.rs:
