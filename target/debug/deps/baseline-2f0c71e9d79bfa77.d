/root/repo/target/debug/deps/baseline-2f0c71e9d79bfa77.d: crates/msgrpc/tests/baseline.rs

/root/repo/target/debug/deps/baseline-2f0c71e9d79bfa77: crates/msgrpc/tests/baseline.rs

crates/msgrpc/tests/baseline.rs:
