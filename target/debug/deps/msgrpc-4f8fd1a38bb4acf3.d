/root/repo/target/debug/deps/msgrpc-4f8fd1a38bb4acf3.d: crates/msgrpc/src/lib.rs crates/msgrpc/src/internet.rs crates/msgrpc/src/marshal.rs crates/msgrpc/src/message.rs crates/msgrpc/src/model.rs crates/msgrpc/src/net.rs crates/msgrpc/src/receiver.rs crates/msgrpc/src/system.rs

/root/repo/target/debug/deps/libmsgrpc-4f8fd1a38bb4acf3.rlib: crates/msgrpc/src/lib.rs crates/msgrpc/src/internet.rs crates/msgrpc/src/marshal.rs crates/msgrpc/src/message.rs crates/msgrpc/src/model.rs crates/msgrpc/src/net.rs crates/msgrpc/src/receiver.rs crates/msgrpc/src/system.rs

/root/repo/target/debug/deps/libmsgrpc-4f8fd1a38bb4acf3.rmeta: crates/msgrpc/src/lib.rs crates/msgrpc/src/internet.rs crates/msgrpc/src/marshal.rs crates/msgrpc/src/message.rs crates/msgrpc/src/model.rs crates/msgrpc/src/net.rs crates/msgrpc/src/receiver.rs crates/msgrpc/src/system.rs

crates/msgrpc/src/lib.rs:
crates/msgrpc/src/internet.rs:
crates/msgrpc/src/marshal.rs:
crates/msgrpc/src/message.rs:
crates/msgrpc/src/model.rs:
crates/msgrpc/src/net.rs:
crates/msgrpc/src/receiver.rs:
crates/msgrpc/src/system.rs:
