/root/repo/target/debug/deps/firefly-c44c9734c4bd1a39.d: crates/firefly/src/lib.rs crates/firefly/src/contention.rs crates/firefly/src/cost.rs crates/firefly/src/cpu.rs crates/firefly/src/error.rs crates/firefly/src/mem.rs crates/firefly/src/meter.rs crates/firefly/src/time.rs crates/firefly/src/tlb.rs crates/firefly/src/vm.rs

/root/repo/target/debug/deps/firefly-c44c9734c4bd1a39: crates/firefly/src/lib.rs crates/firefly/src/contention.rs crates/firefly/src/cost.rs crates/firefly/src/cpu.rs crates/firefly/src/error.rs crates/firefly/src/mem.rs crates/firefly/src/meter.rs crates/firefly/src/time.rs crates/firefly/src/tlb.rs crates/firefly/src/vm.rs

crates/firefly/src/lib.rs:
crates/firefly/src/contention.rs:
crates/firefly/src/cost.rs:
crates/firefly/src/cpu.rs:
crates/firefly/src/error.rs:
crates/firefly/src/mem.rs:
crates/firefly/src/meter.rs:
crates/firefly/src/time.rs:
crates/firefly/src/tlb.rs:
crates/firefly/src/vm.rs:
