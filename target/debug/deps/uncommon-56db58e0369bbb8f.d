/root/repo/target/debug/deps/uncommon-56db58e0369bbb8f.d: crates/lrpc/tests/uncommon.rs

/root/repo/target/debug/deps/uncommon-56db58e0369bbb8f: crates/lrpc/tests/uncommon.rs

crates/lrpc/tests/uncommon.rs:
