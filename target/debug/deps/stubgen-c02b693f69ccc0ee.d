/root/repo/target/debug/deps/stubgen-c02b693f69ccc0ee.d: crates/idl/src/bin/stubgen.rs

/root/repo/target/debug/deps/stubgen-c02b693f69ccc0ee: crates/idl/src/bin/stubgen.rs

crates/idl/src/bin/stubgen.rs:
