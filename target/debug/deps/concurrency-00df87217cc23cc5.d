/root/repo/target/debug/deps/concurrency-00df87217cc23cc5.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-00df87217cc23cc5: tests/concurrency.rs

tests/concurrency.rs:
