/root/repo/target/debug/deps/call_path-0a9ffe0a28158ee7.d: crates/lrpc/tests/call_path.rs

/root/repo/target/debug/deps/call_path-0a9ffe0a28158ee7: crates/lrpc/tests/call_path.rs

crates/lrpc/tests/call_path.rs:
