/root/repo/target/debug/deps/props-c03d657d732d25f7.d: crates/msgrpc/tests/props.rs

/root/repo/target/debug/deps/props-c03d657d732d25f7: crates/msgrpc/tests/props.rs

crates/msgrpc/tests/props.rs:
