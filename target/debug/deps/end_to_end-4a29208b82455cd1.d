/root/repo/target/debug/deps/end_to_end-4a29208b82455cd1.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-4a29208b82455cd1: tests/end_to_end.rs

tests/end_to_end.rs:
