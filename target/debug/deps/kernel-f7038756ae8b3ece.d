/root/repo/target/debug/deps/kernel-f7038756ae8b3ece.d: crates/kernel/src/lib.rs crates/kernel/src/domain.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/nameserver.rs crates/kernel/src/objects.rs crates/kernel/src/sched.rs crates/kernel/src/thread.rs

/root/repo/target/debug/deps/libkernel-f7038756ae8b3ece.rlib: crates/kernel/src/lib.rs crates/kernel/src/domain.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/nameserver.rs crates/kernel/src/objects.rs crates/kernel/src/sched.rs crates/kernel/src/thread.rs

/root/repo/target/debug/deps/libkernel-f7038756ae8b3ece.rmeta: crates/kernel/src/lib.rs crates/kernel/src/domain.rs crates/kernel/src/ids.rs crates/kernel/src/kernel.rs crates/kernel/src/nameserver.rs crates/kernel/src/objects.rs crates/kernel/src/sched.rs crates/kernel/src/thread.rs

crates/kernel/src/lib.rs:
crates/kernel/src/domain.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/nameserver.rs:
crates/kernel/src/objects.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/thread.rs:
