/root/repo/target/debug/deps/props-d1f535e8b0905faf.d: crates/firefly/tests/props.rs

/root/repo/target/debug/deps/props-d1f535e8b0905faf: crates/firefly/tests/props.rs

crates/firefly/tests/props.rs:
