/root/repo/target/debug/deps/stubgen-6b31eccd0dbd7b78.d: crates/idl/src/bin/stubgen.rs

/root/repo/target/debug/deps/stubgen-6b31eccd0dbd7b78: crates/idl/src/bin/stubgen.rs

crates/idl/src/bin/stubgen.rs:
