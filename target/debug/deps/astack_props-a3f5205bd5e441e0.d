/root/repo/target/debug/deps/astack_props-a3f5205bd5e441e0.d: crates/lrpc/tests/astack_props.rs

/root/repo/target/debug/deps/astack_props-a3f5205bd5e441e0: crates/lrpc/tests/astack_props.rs

crates/lrpc/tests/astack_props.rs:
