/root/repo/target/debug/deps/lrpc_suite-042da30a51fdaa38.d: src/suite.rs

/root/repo/target/debug/deps/liblrpc_suite-042da30a51fdaa38.rlib: src/suite.rs

/root/repo/target/debug/deps/liblrpc_suite-042da30a51fdaa38.rmeta: src/suite.rs

src/suite.rs:
