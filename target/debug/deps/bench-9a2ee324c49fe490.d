/root/repo/target/debug/deps/bench-9a2ee324c49fe490.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libbench-9a2ee324c49fe490.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libbench-9a2ee324c49fe490.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/common.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/common.rs:
crates/bench/src/experiments.rs:
