/root/repo/target/debug/deps/bytes-4f7a9c498ea4b6e2.d: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-4f7a9c498ea4b6e2.rlib: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-4f7a9c498ea4b6e2.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
