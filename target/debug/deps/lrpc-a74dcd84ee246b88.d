/root/repo/target/debug/deps/lrpc-a74dcd84ee246b88.d: crates/lrpc/src/lib.rs crates/lrpc/src/astack.rs crates/lrpc/src/binding.rs crates/lrpc/src/call.rs crates/lrpc/src/error.rs crates/lrpc/src/estack.rs crates/lrpc/src/remote.rs crates/lrpc/src/runtime.rs crates/lrpc/src/touch.rs crates/lrpc/src/typed.rs

/root/repo/target/debug/deps/liblrpc-a74dcd84ee246b88.rlib: crates/lrpc/src/lib.rs crates/lrpc/src/astack.rs crates/lrpc/src/binding.rs crates/lrpc/src/call.rs crates/lrpc/src/error.rs crates/lrpc/src/estack.rs crates/lrpc/src/remote.rs crates/lrpc/src/runtime.rs crates/lrpc/src/touch.rs crates/lrpc/src/typed.rs

/root/repo/target/debug/deps/liblrpc-a74dcd84ee246b88.rmeta: crates/lrpc/src/lib.rs crates/lrpc/src/astack.rs crates/lrpc/src/binding.rs crates/lrpc/src/call.rs crates/lrpc/src/error.rs crates/lrpc/src/estack.rs crates/lrpc/src/remote.rs crates/lrpc/src/runtime.rs crates/lrpc/src/touch.rs crates/lrpc/src/typed.rs

crates/lrpc/src/lib.rs:
crates/lrpc/src/astack.rs:
crates/lrpc/src/binding.rs:
crates/lrpc/src/call.rs:
crates/lrpc/src/error.rs:
crates/lrpc/src/estack.rs:
crates/lrpc/src/remote.rs:
crates/lrpc/src/runtime.rs:
crates/lrpc/src/touch.rs:
crates/lrpc/src/typed.rs:
