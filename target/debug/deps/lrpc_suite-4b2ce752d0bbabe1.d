/root/repo/target/debug/deps/lrpc_suite-4b2ce752d0bbabe1.d: src/suite.rs

/root/repo/target/debug/deps/lrpc_suite-4b2ce752d0bbabe1: src/suite.rs

src/suite.rs:
