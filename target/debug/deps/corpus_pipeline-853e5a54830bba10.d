/root/repo/target/debug/deps/corpus_pipeline-853e5a54830bba10.d: tests/corpus_pipeline.rs

/root/repo/target/debug/deps/corpus_pipeline-853e5a54830bba10: tests/corpus_pipeline.rs

tests/corpus_pipeline.rs:
