/root/repo/target/debug/deps/tables-57da2deb4291fc13.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-57da2deb4291fc13: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
