/root/repo/target/debug/deps/firefly-9d9ae9177647e0b4.d: crates/firefly/src/lib.rs crates/firefly/src/contention.rs crates/firefly/src/cost.rs crates/firefly/src/cpu.rs crates/firefly/src/error.rs crates/firefly/src/mem.rs crates/firefly/src/meter.rs crates/firefly/src/time.rs crates/firefly/src/tlb.rs crates/firefly/src/vm.rs

/root/repo/target/debug/deps/libfirefly-9d9ae9177647e0b4.rlib: crates/firefly/src/lib.rs crates/firefly/src/contention.rs crates/firefly/src/cost.rs crates/firefly/src/cpu.rs crates/firefly/src/error.rs crates/firefly/src/mem.rs crates/firefly/src/meter.rs crates/firefly/src/time.rs crates/firefly/src/tlb.rs crates/firefly/src/vm.rs

/root/repo/target/debug/deps/libfirefly-9d9ae9177647e0b4.rmeta: crates/firefly/src/lib.rs crates/firefly/src/contention.rs crates/firefly/src/cost.rs crates/firefly/src/cpu.rs crates/firefly/src/error.rs crates/firefly/src/mem.rs crates/firefly/src/meter.rs crates/firefly/src/time.rs crates/firefly/src/tlb.rs crates/firefly/src/vm.rs

crates/firefly/src/lib.rs:
crates/firefly/src/contention.rs:
crates/firefly/src/cost.rs:
crates/firefly/src/cpu.rs:
crates/firefly/src/error.rs:
crates/firefly/src/mem.rs:
crates/firefly/src/meter.rs:
crates/firefly/src/time.rs:
crates/firefly/src/tlb.rs:
crates/firefly/src/vm.rs:
