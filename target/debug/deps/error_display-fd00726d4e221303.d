/root/repo/target/debug/deps/error_display-fd00726d4e221303.d: tests/error_display.rs

/root/repo/target/debug/deps/error_display-fd00726d4e221303: tests/error_display.rs

tests/error_display.rs:
