/root/repo/target/debug/deps/workload-c6ed6dd5cf63eab5.d: crates/workload/src/lib.rs crates/workload/src/activity.rs crates/workload/src/corpus.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libworkload-c6ed6dd5cf63eab5.rlib: crates/workload/src/lib.rs crates/workload/src/activity.rs crates/workload/src/corpus.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libworkload-c6ed6dd5cf63eab5.rmeta: crates/workload/src/lib.rs crates/workload/src/activity.rs crates/workload/src/corpus.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/activity.rs:
crates/workload/src/corpus.rs:
crates/workload/src/sizes.rs:
crates/workload/src/trace.rs:
