//! Integration of the top-level facade: `Simulation`, the typed call API
//! and kernel diagnostics working together.

use idl::wire::Value;
use lrpc::{Handler, Reply, ServerCtx};
use lrpc_suite::Simulation;

#[test]
fn simulation_plus_typed_api_end_to_end() {
    let sim = Simulation::cvax_serial();
    let server = sim.rt.kernel().create_domain("kv");
    let store = std::sync::Arc::new(parking_lot::Mutex::new(std::collections::HashMap::new()));
    let put_store = std::sync::Arc::clone(&store);
    let get_store = store;
    sim.rt
        .export(
            &server,
            r#"interface Kv {
                procedure Put(key: int32, value: int32) -> bool;
                procedure Get(key: int32) -> int32;
            }"#,
            vec![
                Box::new(move |_: &ServerCtx, args: &[Value]| {
                    let (Value::Int32(k), Value::Int32(v)) = (&args[0], &args[1]) else {
                        unreachable!()
                    };
                    let replaced = put_store.lock().insert(*k, *v).is_some();
                    Ok(Reply::value(Value::Bool(replaced)))
                }) as Handler,
                Box::new(move |_: &ServerCtx, args: &[Value]| {
                    let Value::Int32(k) = args[0] else {
                        unreachable!()
                    };
                    let v = get_store.lock().get(&k).copied().unwrap_or(-1);
                    Ok(Reply::value(Value::Int32(v)))
                }) as Handler,
            ],
        )
        .unwrap();
    let client = sim.rt.kernel().create_domain("app");
    let thread = sim.rt.kernel().spawn_thread(&client);
    let kv = sim.rt.import(&client, "Kv").unwrap();

    // Typed round trips.
    let replaced = kv
        .invoke("Put")
        .unwrap()
        .arg(7i32)
        .arg(42i32)
        .call(0, &thread)
        .unwrap()
        .ret_bool()
        .unwrap();
    assert!(!replaced);
    let got = kv
        .invoke("Get")
        .unwrap()
        .arg(7i32)
        .call(0, &thread)
        .unwrap()
        .ret_i32()
        .unwrap();
    assert_eq!(got, 42);
    let missing = kv
        .invoke("Get")
        .unwrap()
        .arg(8i32)
        .call(0, &thread)
        .unwrap()
        .ret_i32()
        .unwrap();
    assert_eq!(missing, -1);

    // Kernel diagnostics see the whole picture.
    let snap = sim.kernel.snapshot();
    assert!(snap.domains.iter().any(|d| d.name == "kv"));
    assert!(snap.domains.iter().any(|d| d.name == "app"));
    assert_eq!(snap.threads_in_calls, 0, "all calls returned");
    assert!(snap.allocated_bytes > 0);
    assert!(snap.to_string().contains("kv"));

    // Binding statistics accumulated.
    assert_eq!(kv.state().stats.calls(), 3);
    assert_eq!(kv.state().stats.failures(), 0);
}

#[test]
fn stub_plan_cache_and_stub_histogram_are_observable() {
    // The stub compiler runs once per interface: the first import misses
    // the plan cache and compiles, further imports of the same interface
    // hit. Metered calls feed the per-interface stub-phase histogram.
    let sim = Simulation::cvax_serial();
    let server = sim.rt.kernel().create_domain("echo");
    sim.rt
        .export(
            &server,
            "interface Echo { procedure Id(x: int32) -> int32; }",
            vec![
                Box::new(|_: &ServerCtx, args: &[Value]| Ok(Reply::value(args[0].clone())))
                    as Handler,
            ],
        )
        .unwrap();
    let c1 = sim.rt.kernel().create_domain("app1");
    let c2 = sim.rt.kernel().create_domain("app2");
    let b1 = sim.rt.import(&c1, "Echo").unwrap();
    let _b2 = sim.rt.import(&c2, "Echo").unwrap();

    let thread = sim.rt.kernel().spawn_thread(&c1);
    let out = b1.call_indexed(0, &thread, 0, &[Value::Int32(9)]).unwrap();
    assert_eq!(out.ret, Some(Value::Int32(9)));

    let snap = sim.rt.collect_metrics();
    assert_eq!(
        snap.counter("stub_plan_cache_miss"),
        Some(1),
        "first import compiles the interface's copy plans"
    );
    assert_eq!(
        snap.counter("stub_plan_cache_hit"),
        Some(1),
        "second import of the same interface reuses them"
    );
    let stub = snap
        .histogram("lrpc_stub_ns:Echo")
        .expect("stub-phase histogram attached at import");
    assert_eq!(stub.count, 1, "one metered call observed");
    assert!(stub.sum > 0, "the stub phase charged virtual time");
}

#[test]
fn presets_measure_what_they_claim() {
    // The serial preset reproduces the paper's serial Null; the Firefly
    // preset with a parked idle CPU reproduces the MP Null.
    let serial = Simulation::cvax_serial();
    let server = serial.rt.kernel().create_domain("s");
    serial
        .rt
        .export(
            &server,
            "interface N { procedure Null(); }",
            vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
        )
        .unwrap();
    let client = serial.rt.kernel().create_domain("c");
    let thread = serial.rt.kernel().spawn_thread(&client);
    let binding = serial.rt.import(&client, "N").unwrap();
    binding.call(0, &thread, "Null", &[]).unwrap();
    let out = binding.call(0, &thread, "Null", &[]).unwrap();
    assert_eq!(out.elapsed, firefly::Nanos::from_micros(157));
}
