//! User-facing error messages: every error a caller can see renders with
//! the information needed to act on it.

use firefly::error::MemFault;
use firefly::mem::RegionId;
use firefly::vm::ContextId;
use idl::stubvm::StubError;
use idl::wire::WireError;
use kernel::objects::HandleError;
use lrpc::CallError;

#[test]
fn mem_faults_name_the_region_and_context() {
    let cases = [
        (
            MemFault::NotMapped {
                ctx: ContextId(4),
                region: RegionId(9),
            },
            vec!["region#9", "ctx#4", "not mapped"],
        ),
        (
            MemFault::ProtectionViolation {
                ctx: ContextId(4),
                region: RegionId(9),
                write: true,
            },
            vec!["write", "denied"],
        ),
        (
            MemFault::ProtectionViolation {
                ctx: ContextId(4),
                region: RegionId(9),
                write: false,
            },
            vec!["read", "denied"],
        ),
        (
            MemFault::OutOfRange {
                region: RegionId(2),
                offset: 10,
                len: 20,
            },
            vec!["10", "20", "out of range"],
        ),
        (
            MemFault::NoSuchRegion {
                region: RegionId(5),
            },
            vec!["region#5", "does not exist"],
        ),
    ];
    for (fault, needles) in cases {
        let msg = fault.to_string();
        for n in needles {
            assert!(msg.contains(n), "{msg:?} should contain {n:?}");
        }
    }
}

#[test]
fn wire_errors_describe_the_conformance_failure() {
    assert!(WireError::Conformance { found: -7 }
        .to_string()
        .contains("-7"));
    let too_long = WireError::TooLong {
        len: 2000,
        max: 1500,
    }
    .to_string();
    assert!(too_long.contains("2000") && too_long.contains("1500"));
    assert!(WireError::Truncated.to_string().contains("truncated"));
    assert!(WireError::BadTag(9).to_string().contains('9'));
}

#[test]
fn handle_errors_distinguish_forgery_from_staleness() {
    assert!(HandleError::Forged.to_string().contains("forged"));
    assert!(HandleError::Dangling.to_string().contains("no live"));
}

#[test]
fn call_errors_carry_the_paper_exception_names() {
    let cases: Vec<(CallError, &str)> = vec![
        (CallError::BindingRevoked, "revoked"),
        (CallError::CallFailed, "call-failed"),
        (CallError::CallAborted, "call-aborted"),
        (CallError::NoAStacks, "A-stack"),
        (CallError::AStackBusy, "in use"),
        (CallError::BadAStack, "validation"),
        (CallError::BadProcedure { index: 7 }, "7"),
        (CallError::DomainDead, "not active"),
        (CallError::ImportTimeout { name: "FS".into() }, "FS"),
        (CallError::ServerFault("boom".into()), "boom"),
        (CallError::NoRemoteTransport, "remote"),
        (CallError::InvalidBinding(HandleError::Forged), "binding"),
        (
            CallError::Mem(MemFault::NoSuchRegion {
                region: RegionId(1),
            }),
            "memory fault",
        ),
        (
            CallError::Stub(StubError::ArgCount {
                expected: 2,
                got: 1,
            }),
            "expected 2 arguments",
        ),
    ];
    for (err, needle) in cases {
        let msg = err.to_string();
        assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
    }
}

#[test]
fn errors_are_std_error_sources() {
    fn takes_error<E: std::error::Error>(_: E) {}
    takes_error(CallError::CallFailed);
    takes_error(MemFault::NoSuchRegion {
        region: RegionId(1),
    });
    takes_error(WireError::Truncated);
    takes_error(HandleError::Forged);
    takes_error(idl::ParseError {
        line: 1,
        col: 2,
        msg: "x".into(),
    });
}
