//! Replay-plane integration tests: the checked-in corpus replays
//! byte-identically, and corrupted logs fail *structurally* — a
//! [`replay::ReplayDivergence`] or [`replay::LogError`] naming the
//! damage, never a panic.

use std::path::Path;

use bench::rr;
use replay::{kind, LogError, RecordLog};

/// Every log in `replay-corpus/` replays byte-identically. The digests
/// the verdict compares against live in each log's metadata block, so
/// this holds across processes and machines.
#[test]
fn corpus_logs_replay_byte_identically() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("replay-corpus");
    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).expect("replay-corpus/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rlog") {
            continue;
        }
        let log = RecordLog::read_from(&path)
            .expect("corpus log readable")
            .expect("corpus log decodes");
        let report = rr::replay(&log).expect("corpus log carries scenario meta");
        assert!(
            report.is_identical(),
            "{} no longer replays identically: divergence={:?} unconsumed={} mismatches={:?}",
            path.display(),
            report.divergence,
            report.unconsumed,
            report.mismatches
        );
        replayed += 1;
    }
    assert!(
        replayed >= 5,
        "expected at least 5 corpus logs, saw {replayed}"
    );
}

/// Flipping one recorded *checked* decision (a clock charge) surfaces
/// as a structured divergence naming the exact site and sequence
/// number — not a panic, not a wrong-but-green replay.
#[test]
fn corrupted_checked_decision_is_a_structured_divergence() {
    let rec = rr::record(rr::Scenario::chaos(42, 60));
    let mut log = rec.log.clone();
    let clock = log
        .streams
        .get_mut("clock:cpu0")
        .expect("chaos run charges cpu0");
    assert_eq!(clock[0].kind, kind::CLOCK_CHARGE);
    clock[0].payload += 1;
    let corrupted = clock[0].payload;

    let report = rr::replay(&log).expect("scenario meta intact");
    assert!(!report.is_identical());
    let d = report.divergence.expect("payload flip must diverge");
    assert_eq!(d.site, "clock:cpu0");
    assert_eq!(d.seq, 0);
    assert_eq!(
        d.expected.expect("log has an event here").payload,
        corrupted
    );
    assert_eq!(d.got.payload, corrupted - 1);
}

/// Flipping a *resolved* decision (a fault draw the replay obeys)
/// steers the run down a different path; the byte-equality verdict
/// still refuses it, via a later divergence or artifact mismatch.
#[test]
fn corrupted_resolved_decision_fails_the_verdict() {
    let rec = rr::record(rr::Scenario::chaos(42, 60));
    let mut log = rec.log.clone();
    let dispatch = log
        .streams
        .get_mut("fault:dispatch:RrChaos")
        .expect("chaos run draws dispatch faults");
    // Toggle the panic bit of the first dispatch draw.
    dispatch[0].payload ^= 1;

    let report = rr::replay(&log).expect("scenario meta intact");
    assert!(
        !report.is_identical(),
        "an obeyed-but-wrong fault draw must not verify as identical"
    );
    assert!(
        report.divergence.is_some() || !report.mismatches.is_empty(),
        "expected a divergence or artifact mismatch, got a silently different run"
    );
}

/// Truncating a stream (the recording knows fewer decisions than the
/// run makes) diverges with `expected: None` — "log exhausted".
#[test]
fn truncated_stream_diverges_as_log_exhausted() {
    let rec = rr::record(rr::Scenario::fig2(10));
    let mut log = rec.log.clone();
    let clock = log
        .streams
        .get_mut("clock:cpu0")
        .expect("fig2 run charges cpu0");
    let recorded = clock.len();
    clock.pop();

    let report = rr::replay(&log).expect("scenario meta intact");
    let d = report.divergence.expect("missing tail event must diverge");
    assert_eq!(d.site, "clock:cpu0");
    assert_eq!(d.seq as usize, recorded - 1);
    assert!(
        d.expected.is_none(),
        "exhausted stream reports expected=None"
    );
    assert!(d.to_string().contains("log exhausted"));
}

/// A raw byte flip in the encoded file never panics: it decodes to a
/// structured [`LogError`], or decodes fine and then fails the replay
/// verdict at the damaged decision.
#[test]
fn raw_byte_flip_is_structured_all_the_way_down() {
    let rec = rr::record(rr::Scenario::chaos(7, 40));
    let bytes = rec.log.encode();

    // Flip the low bit of the last byte (the final varint of the last
    // stream's last event — or its count byte when empty).
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 1;
    match RecordLog::decode(&flipped) {
        Err(e) => {
            assert!(matches!(e, LogError::Truncated(_) | LogError::Malformed(_)));
        }
        Ok(log) => {
            let verdict = rr::replay(&log);
            match verdict {
                Err(msg) => assert!(!msg.is_empty(), "meta damage reports a reason"),
                Ok(report) => assert!(!report.is_identical()),
            }
        }
    }

    // Header damage is a structured LogError, before any replay runs.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert_eq!(RecordLog::decode(&bad_magic), Err(LogError::BadMagic));
    let mut bad_version = bytes;
    bad_version[4] = 0xFF;
    assert!(matches!(
        RecordLog::decode(&bad_version),
        Err(LogError::UnsupportedVersion(_))
    ));
}

/// End-to-end file round trip: record to disk, read back, replay.
#[test]
fn record_to_disk_read_back_replay() {
    let dir = std::env::temp_dir().join("lrpc-replay-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("roundtrip.rlog");

    let rec = rr::record(rr::Scenario::chaos(99, 30));
    rec.log.write_to(&path).expect("write log");
    let log = RecordLog::read_from(&path)
        .expect("read log")
        .expect("decode log");
    assert_eq!(log, rec.log);

    let report = rr::replay(&log).expect("scenario meta intact");
    assert!(report.is_identical(), "divergence={:?}", report.divergence);
    let _ = std::fs::remove_file(&path);
}
