//! Property tests for the observability plane (`crates/obs`).
//!
//! Two invariants the rest of the repo leans on:
//!
//! 1. The flight recorder's seqlock protocol never yields a *torn* span —
//!    a reader racing an interleaved writer either sees a span exactly as
//!    one `push` wrote it, or skips the slot; it never stitches words from
//!    two different writes together (`obs::flight` module docs point
//!    here).
//! 2. A histogram's per-bucket counts always sum to its observation
//!    count, and every observation lands in the log2 bucket that
//!    `bucket_index` names.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use obs::flight::{FlightRing, SpanRecord};
use obs::latency::{tail_bucket_bounds, tail_bucket_index, TailHistogram};
use obs::metrics::{bucket_index, bucket_upper_bound, Histogram};
use obs::TraceId;
use proptest::prelude::*;

/// Builds the span `push` number `i` writes, with all four words derived
/// from `i` so any cross-write mixture is detectable.
fn correlated_span(i: u64) -> SpanRecord {
    SpanRecord {
        trace: TraceId::from_raw(i + 1), // raw 0 means "never written"
        phase: (i % 997) as u16,
        start_ns: i.wrapping_mul(3),
        dur_ns: i ^ 0x5a5a,
    }
}

/// A span is untorn iff its words are the correlated image of one index.
fn assert_untorn(span: &SpanRecord) -> Result<(), TestCaseError> {
    let i = span.trace.raw() - 1;
    let expect = correlated_span(i);
    prop_assert_eq!(span.phase, expect.phase, "phase word from another write");
    prop_assert_eq!(span.start_ns, expect.start_ns, "start word torn");
    prop_assert_eq!(span.dur_ns, expect.dur_ns, "duration word torn");
    Ok(())
}

proptest! {
    /// Interleaved recorder writes never tear a span: while one thread
    /// pushes a stream of correlated spans into a (deliberately tiny,
    /// constantly wrapping) ring, concurrent readers only ever observe
    /// spans whose four words belong to a single write.
    #[test]
    fn interleaved_writes_never_tear_a_span(
        capacity in 1usize..12,
        writes in 64u64..512,
        readers in 1usize..4,
    ) {
        let ring = Arc::new(FlightRing::new(capacity));
        let done = Arc::new(AtomicBool::new(false));
        let mut torn = Vec::new();
        std::thread::scope(|s| {
            let reader_handles: Vec<_> = (0..readers)
                .map(|_| {
                    let ring = Arc::clone(&ring);
                    let done = Arc::clone(&done);
                    s.spawn(move || {
                        let mut seen = Vec::new();
                        while !done.load(Ordering::Relaxed) {
                            seen.extend(ring.read_all());
                        }
                        seen.extend(ring.read_all());
                        seen
                    })
                })
                .collect();
            for i in 0..writes {
                ring.push(correlated_span(i));
            }
            done.store(true, Ordering::Relaxed);
            for h in reader_handles {
                for span in h.join().expect("reader panicked") {
                    if let Err(e) = assert_untorn(&span) {
                        torn.push(e);
                    }
                }
            }
        });
        if let Some(e) = torn.into_iter().next() {
            return Err(e);
        }
        // Quiesced ring: the last `capacity` writes are all readable.
        let settled = ring.read_all();
        prop_assert_eq!(settled.len(), capacity.min(writes as usize));
        prop_assert_eq!(ring.pushed(), writes);
    }

    /// Histogram bucket counts sum to the observation count, the sum field
    /// is the exact total, and each value is counted by the bucket whose
    /// bounds contain it.
    #[test]
    fn histogram_buckets_sum_to_observation_count(
        values in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, values.len() as u64,
            "every observation is in exactly one bucket");
        let expected_sum = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(snap.sum, expected_sum);

        // Recompute the expected bucket occupancy independently.
        let mut expect = std::collections::BTreeMap::new();
        for &v in &values {
            *expect.entry(bucket_upper_bound(bucket_index(v))).or_insert(0u64) += 1;
        }
        let got: std::collections::BTreeMap<u64, u64> = snap.buckets.iter().copied().collect();
        prop_assert_eq!(got, expect);
    }

    /// `bucket_index` sends every value to a bucket whose bounds hold it:
    /// value ≤ upper(bucket) and (for non-first buckets) value > upper of
    /// the bucket below.
    #[test]
    fn bucket_bounds_bracket_every_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        }
    }

    /// Merging tail snapshots is associative (and, with the commutativity
    /// the bucket-wise sum gives for free, order-independent): the
    /// per-thread recorders of the tail benchmark can be combined in any
    /// grouping and report the same quantiles.
    #[test]
    fn tail_merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..120),
        b in proptest::collection::vec(any::<u64>(), 0..120),
        c in proptest::collection::vec(any::<u64>(), 0..120),
    ) {
        let snap = |values: &[u64]| {
            let h = TailHistogram::new();
            for &v in values {
                h.observe(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        let left = sa.merge(&sb).merge(&sc);
        let right = sa.merge(&sb.merge(&sc));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left, sc.merge(&sb).merge(&sa), "order-independent");
    }

    /// Quantiles are monotone in the query: q1 ≤ q2 implies
    /// quantile(q1) ≤ quantile(q2), with the extremes pinned — the top
    /// quantile is the exact maximum, and every quantile brackets at
    /// least one observed value from below (≤ 1/128 relative error).
    #[test]
    fn tail_quantiles_are_monotone(
        values in proptest::collection::vec(any::<u64>(), 1..300),
        q1_millis in 0u32..=1000,
        q2_millis in 0u32..=1000,
    ) {
        let h = TailHistogram::new();
        for &v in &values {
            h.observe(v);
        }
        let snap = h.snapshot();
        let (q1, q2) = (f64::from(q1_millis) / 1e3, f64::from(q2_millis) / 1e3);
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let lo = snap.quantile(lo_q).expect("non-empty");
        let hi = snap.quantile(hi_q).expect("non-empty");
        prop_assert!(lo <= hi, "quantile({lo_q})={lo} > quantile({hi_q})={hi}");
        prop_assert_eq!(snap.quantile(1.0), Some(*values.iter().max().unwrap()),
            "the top quantile is the exact max");
        // Every reported quantile is a reachable bucket bound: some
        // observed value lands in its bucket.
        let idx = tail_bucket_index(lo);
        prop_assert!(values.iter().any(|&v| tail_bucket_index(v.min(snap.max)) == idx),
            "quantile names an occupied bucket");
    }

    /// Merging never loses an observation: count, sum, max, and the
    /// per-bucket occupancy of a merge all equal what one histogram fed
    /// the concatenated stream would report — and every value sits in
    /// the bucket whose bounds bracket it.
    #[test]
    fn tail_merge_loses_no_value(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        b in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let ha = TailHistogram::new();
        for &v in &a {
            ha.observe(v);
            let (lo, hi) = tail_bucket_bounds(tail_bucket_index(v));
            prop_assert!(lo <= v && v <= hi, "{v} outside bucket [{lo}, {hi}]");
        }
        let hb = TailHistogram::new();
        for &v in &b {
            hb.observe(v);
        }
        let merged = ha.snapshot().merge(&hb.snapshot());

        let all = TailHistogram::new();
        for &v in a.iter().chain(b.iter()) {
            all.observe(v);
        }
        prop_assert_eq!(merged, all.snapshot(),
            "merge == histogram of the concatenated stream");
    }
}
