//! Cross-crate integration: a small operating system of cooperating
//! protection domains, built entirely on LRPC.

use std::sync::Arc;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use idl::wire::Value;
use kernel::kernel::Kernel;
use lrpc::{Binding, CallError, Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx};
use msgrpc::{MsgHandler, RemoteMachine};
use parking_lot::Mutex;

/// Builds a three-tier system: an `app` domain calls a `name-db` domain,
/// whose handler calls a `storage` domain — the thread crosses all three.
#[test]
fn three_tier_system_works_end_to_end() {
    let kernel = Kernel::new(Machine::cvax_firefly());
    let rt = LrpcRuntime::new(kernel);

    // Tier 3: storage keeps raw bytes by slot.
    let storage = rt.kernel().create_domain("storage");
    let blocks: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
    let blocks2 = Arc::clone(&blocks);
    let blocks3 = Arc::clone(&blocks);
    rt.export(
        &storage,
        r#"interface Storage {
            procedure Store(data: in var bytes[512] noninterpreted) -> int32;
            procedure Fetch(slot: int32, data: out bytes[512]) -> int32;
        }"#,
        vec![
            Box::new(move |_: &ServerCtx, args: &[Value]| {
                let Value::Var(data) = &args[0] else {
                    unreachable!()
                };
                let mut blocks = blocks2.lock();
                blocks.push(data.clone());
                Ok(Reply::value(Value::Int32(blocks.len() as i32 - 1)))
            }) as Handler,
            Box::new(move |_: &ServerCtx, args: &[Value]| {
                let Value::Int32(slot) = args[0] else {
                    unreachable!()
                };
                let blocks = blocks3.lock();
                let data = blocks
                    .get(slot as usize)
                    .ok_or(CallError::ServerFault("bad slot".into()))?;
                let mut buf = vec![0u8; 512];
                buf[..data.len()].copy_from_slice(data);
                Ok(Reply::value(Value::Int32(data.len() as i32)).with_out(1, Value::Bytes(buf)))
            }) as Handler,
        ],
    )
    .unwrap();

    // Tier 2: the name database maps keys to storage slots, calling into
    // storage on the client's thread.
    let namedb = rt.kernel().create_domain("name-db");
    let table: Arc<Mutex<Vec<(i32, i32)>>> = Arc::new(Mutex::new(Vec::new()));
    let storage_binding: Arc<Mutex<Option<Binding>>> = Arc::new(Mutex::new(None));
    let rt2 = Arc::clone(&rt);
    let namedb2 = Arc::clone(&namedb);
    let table_put = Arc::clone(&table);
    let table_get = Arc::clone(&table);
    let sb_put = Arc::clone(&storage_binding);
    let sb_get = Arc::clone(&storage_binding);
    let bind_storage = move |rt: &Arc<LrpcRuntime>,
                             cell: &Arc<Mutex<Option<Binding>>>,
                             domain: &Arc<kernel::Domain>|
          -> Result<(), CallError> {
        let mut guard = cell.lock();
        if guard.is_none() {
            *guard = Some(rt.import(domain, "Storage")?);
        }
        Ok(())
    };
    let rt3 = Arc::clone(&rt);
    let namedb3 = Arc::clone(&namedb);
    rt.export(
        &namedb,
        r#"interface NameDb {
            procedure Put(key: int32, value: in var bytes[512]) -> int32;
            procedure Get(key: int32, value: out bytes[512]) -> int32;
        }"#,
        vec![
            Box::new(move |ctx: &ServerCtx, args: &[Value]| {
                bind_storage(&rt2, &sb_put, &namedb2)?;
                let guard = sb_put.lock();
                let storage = guard.as_ref().expect("bound");
                let out = storage.call_indexed(ctx.cpu_id, &ctx.thread, 0, &[args[1].clone()])?;
                let Some(Value::Int32(slot)) = out.ret else {
                    unreachable!()
                };
                let Value::Int32(key) = args[0] else {
                    unreachable!()
                };
                table_put.lock().push((key, slot));
                Ok(Reply::value(Value::Int32(slot)))
            }) as Handler,
            Box::new(move |ctx: &ServerCtx, args: &[Value]| {
                let mut cell = sb_get.lock();
                if cell.is_none() {
                    *cell = Some(rt3.import(&namedb3, "Storage")?);
                }
                let storage = cell.as_ref().expect("bound");
                let Value::Int32(key) = args[0] else {
                    unreachable!()
                };
                let slot = table_get
                    .lock()
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, s)| *s)
                    .ok_or(CallError::ServerFault("unknown key".into()))?;
                let out = storage.call_indexed(
                    ctx.cpu_id,
                    &ctx.thread,
                    1,
                    &[Value::Int32(slot), Value::Bytes(vec![0; 512])],
                )?;
                let mut reply = Reply::value(out.ret.expect("length"));
                for (i, v) in out.outs {
                    if i == 1 {
                        reply = reply.with_out(1, v);
                    }
                }
                Ok(reply)
            }) as Handler,
        ],
    )
    .unwrap();

    // Tier 1: the application.
    let app = rt.kernel().create_domain("app");
    let thread = rt.kernel().spawn_thread(&app);
    let db = rt.import(&app, "NameDb").unwrap();

    let put = db
        .call(
            0,
            &thread,
            "Put",
            &[Value::Int32(1), Value::Var(b"hello, firefly".to_vec())],
        )
        .expect("Put crosses app -> name-db -> storage");
    assert_eq!(put.ret, Some(Value::Int32(0)));
    assert_eq!(thread.call_depth(), 0, "all linkages unwound");
    assert_eq!(thread.current_domain(), app.id());

    let get = db
        .call(
            0,
            &thread,
            "Get",
            &[Value::Int32(1), Value::Bytes(vec![0; 512])],
        )
        .expect("Get");
    let Some(Value::Int32(len)) = get.ret else {
        panic!("length")
    };
    let Some((_, Value::Bytes(data))) = get.outs.first() else {
        panic!("data")
    };
    assert_eq!(&data[..len as usize], b"hello, firefly");

    // The nested call is strictly more expensive than a flat one: two
    // full transfers.
    assert!(put.elapsed > firefly::Nanos::from_micros(300));
}

#[test]
fn local_and_remote_servers_share_a_programming_model() {
    let kernel = Kernel::new(Machine::cvax_firefly());
    let rt = LrpcRuntime::new(kernel);

    const ECHO_IDL: &str = "interface Echo { procedure Echo(x: int32) -> int32; }";
    let local_domain = rt.kernel().create_domain("local-echo");
    rt.export(
        &local_domain,
        ECHO_IDL,
        vec![
            Box::new(|_: &ServerCtx, args: &[Value]| Ok(Reply::value(args[0].clone()))) as Handler,
        ],
    )
    .unwrap();

    let remote = RemoteMachine::new("far-away");
    remote
        .export(
            "interface FarEcho { procedure Echo(x: int32) -> int32; }",
            vec![Box::new(|args: &[Value]| Ok(Reply::value(args[0].clone()))) as MsgHandler],
        )
        .unwrap();
    rt.set_remote_transport(remote);

    let app = rt.kernel().create_domain("app");
    let thread = rt.kernel().spawn_thread(&app);
    let near = rt.import(&app, "Echo").unwrap();
    let far = rt.import_remote(&app, "FarEcho").unwrap();

    let near_out = near.call(0, &thread, "Echo", &[Value::Int32(7)]).unwrap();
    let far_out = far.call(0, &thread, "Echo", &[Value::Int32(7)]).unwrap();
    assert_eq!(near_out.ret, far_out.ret, "transparent results");
    assert!(
        far_out.elapsed.as_nanos() > 4 * near_out.elapsed.as_nanos(),
        "the remote call is far slower: {} vs {}",
        far_out.elapsed,
        near_out.elapsed
    );
}

#[test]
fn import_without_transport_fails_cleanly() {
    let kernel = Kernel::new(Machine::cvax_uniprocessor());
    let rt = LrpcRuntime::new(kernel);
    let app = rt.kernel().create_domain("app");
    assert!(matches!(
        rt.import_remote(&app, "Anything").map(|_| ()),
        Err(CallError::NoRemoteTransport)
    ));
}

#[test]
fn terminating_a_middle_tier_fails_callers_but_not_the_system() {
    let kernel = Kernel::new(Machine::cvax_uniprocessor());
    let rt = LrpcRuntime::with_config(
        Arc::clone(&kernel),
        RuntimeConfig {
            domain_caching: false,
            ..RuntimeConfig::default()
        },
    );
    let _ = CostModel::cvax_firefly();

    let a = rt.kernel().create_domain("A");
    let b = rt.kernel().create_domain("B");
    const IDL_A: &str = "interface SvcA { procedure Pa(); }";
    const IDL_B: &str = "interface SvcB { procedure Pb(); }";
    rt.export(
        &a,
        IDL_A,
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    rt.export(
        &b,
        IDL_B,
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();

    let app = rt.kernel().create_domain("app");
    let thread = rt.kernel().spawn_thread(&app);
    let ba = rt.import(&app, "SvcA").unwrap();
    let bb = rt.import(&app, "SvcB").unwrap();

    ba.call(0, &thread, "Pa", &[]).unwrap();
    bb.call(0, &thread, "Pb", &[]).unwrap();

    rt.terminate_domain(&a);

    // Calls to A now fail; calls to B are untouched.
    assert!(ba.call(0, &thread, "Pa", &[]).is_err());
    for _ in 0..10 {
        bb.call(0, &thread, "Pb", &[]).unwrap();
    }

    // And the client can terminate too: its own binding to B is revoked.
    rt.terminate_domain(&app);
    assert!(bb.call(0, &thread, "Pb", &[]).is_err());
}
