//! Multi-machine integration: a fleet of simulated Fireflies on one
//! Ethernet, exercising local LRPC and cross-machine transparency
//! together.

use std::sync::Arc;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use idl::wire::Value;
use kernel::kernel::Kernel;
use lrpc::{Binding, Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx};
use msgrpc::Internet;

fn boot() -> Arc<LrpcRuntime> {
    LrpcRuntime::with_config(
        Kernel::new(Machine::new(2, CostModel::cvax_firefly())),
        RuntimeConfig {
            domain_caching: false,
            ..RuntimeConfig::default()
        },
    )
}

fn export_len(rt: &Arc<LrpcRuntime>, domain: &str, idl_src: &str) {
    let d = rt.kernel().create_domain(domain);
    rt.export(
        &d,
        idl_src,
        vec![Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Var(v) = &args[0] else {
                unreachable!()
            };
            Ok(Reply::value(Value::Int32(v.len() as i32)))
        }) as Handler],
    )
    .expect("export");
}

#[test]
fn four_machines_full_mesh() {
    // Four machines; each exports one service and calls all the others.
    let machines: Vec<Arc<LrpcRuntime>> = (0..4).map(|_| boot()).collect();
    let net = Internet::new();
    for (i, rt) in machines.iter().enumerate() {
        net.attach(format!("host{i}"), Arc::clone(rt));
        export_len(
            rt,
            &format!("svc{i}"),
            &format!(
                "interface Svc{i} {{ procedure Len(data: in var bytes[512] noninterpreted) -> int32; }}"
            ),
        );
        rt.set_remote_transport(Arc::clone(&net) as Arc<dyn lrpc::RemoteTransport>);
    }

    for (i, rt) in machines.iter().enumerate() {
        let app = rt.kernel().create_domain("app");
        let thread = rt.kernel().spawn_thread(&app);
        for (j, _) in machines.iter().enumerate() {
            let name = format!("Svc{j}");
            let binding: Binding = if i == j {
                rt.import(&app, &name).expect("local import")
            } else {
                rt.import_remote(&app, &name).expect("remote import")
            };
            let out = binding
                .call_indexed(0, &thread, 0, &[Value::Var(vec![7u8; 100 + j])])
                .expect("mesh call");
            assert_eq!(out.ret, Some(Value::Int32(100 + j as i32)));
            if i == j {
                assert!(
                    out.elapsed < firefly::Nanos::from_micros(400),
                    "local: {}",
                    out.elapsed
                );
            } else {
                assert!(
                    out.elapsed > firefly::Nanos::from_micros(2_000),
                    "remote: {}",
                    out.elapsed
                );
            }
        }
    }
}

#[test]
fn trace_replay_across_the_network_matches_the_activity_model() {
    let workstation = boot();
    let server_host = boot();
    let net = Internet::new();
    net.attach("ws", Arc::clone(&workstation));
    net.attach("srv", Arc::clone(&server_host));

    export_len(
        &workstation,
        "local-svc",
        "interface Local { procedure Len(data: in var bytes[1448] noninterpreted) -> int32; }",
    );
    export_len(
        &server_host,
        "remote-svc",
        "interface Remote { procedure Len(data: in var bytes[1448] noninterpreted) -> int32; }",
    );
    workstation.set_remote_transport(Arc::clone(&net) as Arc<dyn lrpc::RemoteTransport>);

    let app = workstation.kernel().create_domain("app");
    let thread = workstation.kernel().spawn_thread(&app);
    let local = workstation.import(&app, "Local").unwrap();
    let remote = workstation.import_remote(&app, "Remote").unwrap();

    let trace = workload::TraceModel::taos().generate(3, 500);
    for event in &trace.events {
        let args = [Value::Var(vec![0u8; (event.bytes as usize).min(1448)])];
        let binding = if event.remote { &remote } else { &local };
        let out = binding
            .call_indexed(0, &thread, 0, &args)
            .expect("trace call");
        assert_eq!(
            out.ret,
            Some(Value::Int32(args[0].clone().into_len() as i32))
        );
    }

    // The binding stats reflect the trace's mix.
    let local_calls = local.state().stats.calls();
    let remote_calls = remote.state().stats.remote_calls();
    assert_eq!(local_calls + remote_calls, 500);
    let remote_share = remote_calls as f64 / 500.0;
    assert!(
        (0.02..=0.09).contains(&remote_share),
        "remote share {remote_share}"
    );
    assert_eq!(local.state().stats.failures(), 0);
}

trait IntoLen {
    fn into_len(self) -> usize;
}

impl IntoLen for Value {
    fn into_len(self) -> usize {
        match self {
            Value::Var(v) | Value::Bytes(v) => v.len(),
            _ => 0,
        }
    }
}

#[test]
fn machine_clocks_advance_independently() {
    // Work on machine A must not move machine B's clocks (other than via
    // remote calls A makes to B).
    let a = boot();
    let b = boot();
    export_len(
        &a,
        "svc",
        "interface OnlyA { procedure Len(data: in var bytes[64] noninterpreted) -> int32; }",
    );
    let app = a.kernel().create_domain("app");
    let thread = a.kernel().spawn_thread(&app);
    let binding = a.rt_import(&app);
    for _ in 0..10 {
        binding
            .call_indexed(0, &thread, 0, &[Value::Var(vec![1; 8])])
            .unwrap();
    }
    assert!(a.kernel().machine().cpu(0).now() > firefly::Nanos::from_micros(1_000));
    assert_eq!(b.kernel().machine().cpu(0).now(), firefly::Nanos::ZERO);
}

trait RtImport {
    fn rt_import(&self, app: &Arc<kernel::Domain>) -> Binding;
}

impl RtImport for Arc<LrpcRuntime> {
    fn rt_import(&self, app: &Arc<kernel::Domain>) -> Binding {
        self.import(app, "OnlyA").expect("import")
    }
}
