//! The Null call path acquires zero process-global locks.
//!
//! Section 3.4: "LRPC minimizes the use of shared data structures on the
//! critical domain transfer path." The runtime instruments every lock
//! acquisition (`firefly::meter`): process-global locks (kernel domain and
//! thread tables, the name server, the physical-memory region table, the
//! runtime's binding-time maps) are counted separately from sharded or
//! per-queue locks (handle-table shards, per-class A-stack wait queues,
//! per-server E-stack pools). These tests pin down the steady-state
//! contract: a warmed-up Null call crosses domains without touching a
//! single global lock, on either the metered or the unmetered entry.

use std::sync::Arc;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use firefly::meter::LockTally;
use idl::wire::Value;
use kernel::kernel::Kernel;
use lrpc::{Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx};

fn null_env(domain_caching: bool) -> (Arc<LrpcRuntime>, Arc<kernel::Domain>, lrpc::Binding) {
    let kernel = Kernel::new(Machine::new(2, CostModel::cvax_firefly()));
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching,
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("null-server");
    rt.export(
        &server,
        "interface N { procedure Null(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("null-client");
    let binding = rt.import(&client, "N").unwrap();
    (rt, client, binding)
}

#[test]
fn steady_state_null_call_takes_zero_global_locks() {
    let (rt, client, binding) = null_env(false);
    let thread = rt.kernel().spawn_thread(&client);
    // Warm up: the first call may allocate an E-stack through the pool.
    binding.call_unmetered(0, &thread, 0, &[]).expect("warmup");

    let tally = LockTally::begin();
    binding
        .call_unmetered(0, &thread, 0, &[])
        .expect("measured");
    assert_eq!(
        tally.global_delta(),
        0,
        "a steady-state Null call must not acquire any process-global lock"
    );
    assert!(
        tally.sharded_delta() > 0,
        "the call does use sharded locks (handle shard, E-stack pool)"
    );
}

#[test]
fn metered_null_call_takes_zero_global_locks_too() {
    // Metering (per-phase virtual-time accounting) rides the same path
    // and must not smuggle a global lock back in.
    let (rt, client, binding) = null_env(false);
    let thread = rt.kernel().spawn_thread(&client);
    binding.call_indexed(0, &thread, 0, &[]).expect("warmup");

    let tally = LockTally::begin();
    binding.call_indexed(0, &thread, 0, &[]).expect("measured");
    assert_eq!(tally.global_delta(), 0);
}

#[test]
fn domain_caching_path_is_also_global_lock_free() {
    // With domain caching on, the call may additionally probe (and claim)
    // an idle processor; that probe is a single atomic exchange, not a
    // lock.
    let (rt, client, binding) = null_env(true);
    let thread = rt.kernel().spawn_thread(&client);
    let server_ctx = binding.state().server.ctx().id();
    rt.kernel().machine().cpu(1).set_idle_in(Some(server_ctx));
    binding.call_unmetered(0, &thread, 0, &[]).expect("warmup");

    let tally = LockTally::begin();
    binding
        .call_unmetered(0, &thread, 0, &[])
        .expect("measured");
    assert_eq!(tally.global_delta(), 0);
}

#[test]
fn binding_setup_does_take_global_locks() {
    // Sanity check on the instrumentation itself: export/import are the
    // *bind-time* slow path and hit the kernel tables and name server, so
    // the counters must see them. A counter that never moves would make
    // the zero assertions above vacuous.
    let tally = LockTally::begin();
    let (_rt, _client, _binding) = null_env(false);
    assert!(
        tally.global_delta() > 0,
        "bind-time setup goes through the global tables"
    );
}
