//! The Null call path acquires zero process-global locks.
//!
//! Section 3.4: "LRPC minimizes the use of shared data structures on the
//! critical domain transfer path." The runtime instruments every lock
//! acquisition (`firefly::meter`): process-global locks (kernel domain and
//! thread tables, the name server, the physical-memory region table, the
//! runtime's binding-time maps, the flight-recorder ring registry) are
//! counted separately from sharded or per-queue locks (handle-table
//! shards, per-class A-stack wait queues, per-server E-stack pools).
//! These tests pin down the steady-state contract: a warmed-up Null call
//! crosses domains without touching a single global lock — on the metered
//! entry, on the unmetered entry, and with the flight recorder capturing
//! every phase.
//!
//! Tallies use [`LockTally::scope`], the RAII guard that isolates this
//! thread's counters for the scope's lifetime and restores them on drop,
//! so parallel tests cannot bleed acquisitions into each other.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::{Arc, Mutex};

use bench::phases;
use firefly::cost::CostModel;
use firefly::meter::LockTally;
use idl::wire::Value;
use lrpc::{Handler, LrpcRuntime, Reply, ServerCtx, TestRuntime};

/// Serializes the tests that toggle the process-global flight recorder
/// (within this test binary; other binaries are separate processes).
static FLIGHT_TOGGLE: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------
// Heap-allocation tally.
//
// The compiled copy plans promise a *zero-allocation* fast path for
// fixed-argument calls, so this binary routes the global allocator
// through a per-thread counter. Thread-locality keeps parallel tests
// from bleeding allocations into each other, exactly like `LockTally`.
// ---------------------------------------------------------------------

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn thread_allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn null_env(domain_caching: bool) -> (Arc<LrpcRuntime>, Arc<kernel::Domain>, lrpc::Binding) {
    let rt = TestRuntime::new()
        .cpus(2)
        .domain_caching(domain_caching)
        .build();
    let server = rt.kernel().create_domain("null-server");
    rt.export(
        &server,
        "interface N { procedure Null(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("null-client");
    let binding = rt.import(&client, "N").unwrap();
    (rt, client, binding)
}

#[test]
fn steady_state_null_call_takes_zero_global_locks() {
    let (rt, client, binding) = null_env(false);
    let thread = rt.kernel().spawn_thread(&client);
    // Warm up: the first call may allocate an E-stack through the pool.
    binding.call_unmetered(0, &thread, 0, &[]).expect("warmup");

    let scope = LockTally::scope();
    binding
        .call_unmetered(0, &thread, 0, &[])
        .expect("measured");
    assert_eq!(
        scope.global(),
        0,
        "a steady-state Null call must not acquire any process-global lock"
    );
    assert!(
        scope.sharded() > 0,
        "the call does use sharded locks (handle shard, E-stack pool)"
    );
}

#[test]
fn metered_null_call_takes_zero_global_locks_too() {
    // Metering (per-phase virtual-time accounting) rides the same path
    // and must not smuggle a global lock back in.
    let (rt, client, binding) = null_env(false);
    let thread = rt.kernel().spawn_thread(&client);
    binding.call_indexed(0, &thread, 0, &[]).expect("warmup");

    let scope = LockTally::scope();
    binding.call_indexed(0, &thread, 0, &[]).expect("measured");
    assert_eq!(scope.global(), 0);
}

#[test]
fn recorder_enabled_null_call_takes_zero_global_locks() {
    // The flight recorder's only lock is the ring *registry*, taken once
    // per thread when its ring is created. The warmup call (recorder
    // already on) pays that registration, so the measured call writes
    // spans through the thread-local seqlock ring alone.
    let _serial = FLIGHT_TOGGLE.lock().unwrap();
    let (rt, client, binding) = null_env(false);
    let thread = rt.kernel().spawn_thread(&client);

    obs::flight::enable();
    binding.call_indexed(0, &thread, 0, &[]).expect("warmup");

    let scope = LockTally::scope();
    let out = binding.call_indexed(0, &thread, 0, &[]).expect("measured");
    let globals = scope.global();
    drop(scope);
    obs::flight::disable();

    assert_eq!(
        globals, 0,
        "recording a call's phases must not add a process-global lock"
    );
    assert!(
        !obs::flight::spans_for(out.trace).is_empty(),
        "the measured call really was recorded (zero locks is not vacuous)"
    );
}

#[test]
fn flight_breakdown_reproduces_table5_within_one_percent() {
    // Acceptance gate: rebuild Table 5 purely from the spans a recorded
    // Null call left in the flight rings, and check the total against the
    // cost model's closed-form prediction. The simulator charges exact
    // virtual costs, so the drift is zero — well inside the 1% gate.
    let _serial = FLIGHT_TOGGLE.lock().unwrap();
    let (rt, client, binding) = null_env(false);
    let thread = rt.kernel().spawn_thread(&client);
    binding.call_indexed(0, &thread, 0, &[]).expect("warmup");

    obs::flight::enable();
    let out = binding.call_indexed(0, &thread, 0, &[]).expect("recorded");
    let spans = obs::flight::spans_for(out.trace);
    obs::flight::disable();

    let cost = CostModel::cvax_firefly();
    let breakdown = phases::aggregate(&spans);
    let rows = phases::table5_from_breakdown(&breakdown, &cost);
    let measured: f64 = rows.iter().map(|r| r.measured.as_nanos() as f64).sum();
    let predicted = cost.lrpc_null_serial().as_nanos() as f64;
    let drift = (measured - predicted).abs() / predicted;
    assert!(
        drift <= phases::MAX_TOTAL_DRIFT,
        "flight-reconstructed Table 5 total {measured}ns drifts {:.3}% from \
         the cost model's {predicted}ns (gate {:.0}%)",
        drift * 100.0,
        phases::MAX_TOTAL_DRIFT * 100.0
    );
    // The breakdown accounts for the whole call, not just most of it.
    assert_eq!(
        breakdown.total, out.elapsed,
        "summed span durations must equal the call's elapsed virtual time"
    );
}

#[test]
fn domain_caching_path_is_also_global_lock_free() {
    // With domain caching on, the call may additionally probe (and claim)
    // an idle processor; that probe is a single atomic exchange, not a
    // lock.
    let (rt, client, binding) = null_env(true);
    let thread = rt.kernel().spawn_thread(&client);
    let server_ctx = binding.state().server.ctx().id();
    rt.kernel().machine().cpu(1).set_idle_in(Some(server_ctx));
    binding.call_unmetered(0, &thread, 0, &[]).expect("warmup");

    let scope = LockTally::scope();
    binding
        .call_unmetered(0, &thread, 0, &[])
        .expect("measured");
    assert_eq!(scope.global(), 0);
}

#[test]
fn exchanged_multi_cpu_call_takes_zero_global_locks_and_allocations() {
    // The multi-CPU steady state the tail benchmark leans on: both domain
    // transfers ride the idle-processor exchange (Section 3.4) instead of
    // a context switch. The claim itself is a per-CPU atomic exchange and
    // the TLB stays warm on both processors, so the whole call must still
    // be free of process-global locks *and* heap allocations.
    let (rt, client, binding) = null_env(true);
    let thread = rt.kernel().spawn_thread(&client);
    let server_ctx = binding.state().server.ctx().id();
    rt.kernel().machine().cpu(1).set_idle_in(Some(server_ctx));
    let mut warm = binding.call_unmetered(0, &thread, 0, &[]).expect("warmup");
    for _ in 0..7 {
        warm = binding
            .call_unmetered(warm.end_cpu, &thread, 0, &[])
            .expect("warmup");
    }

    let scope = LockTally::scope();
    let before = thread_allocations();
    let out = binding
        .call_unmetered(warm.end_cpu, &thread, 0, &[])
        .expect("measured");
    let allocated = thread_allocations() - before;
    assert!(
        out.exchanged_on_call && out.exchanged_on_return,
        "the measurement requires both transfers to hit the cached processor"
    );
    assert_eq!(
        scope.global(),
        0,
        "an exchanged multi-CPU call must not acquire any process-global lock"
    );
    assert_eq!(
        allocated, 0,
        "an exchanged multi-CPU call must not allocate ({allocated} allocations)"
    );
}

#[test]
fn steady_state_null_call_makes_zero_heap_allocations() {
    // The compiled copy plan executes the whole stub cycle with borrowed
    // slices and stack scratch: once the E-stack association and linkage
    // stack are warm, an unmetered Null call must not touch the heap at
    // all (and still without a single process-global lock).
    let (rt, client, binding) = null_env(false);
    let thread = rt.kernel().spawn_thread(&client);
    for _ in 0..8 {
        binding.call_unmetered(0, &thread, 0, &[]).expect("warmup");
    }

    let scope = LockTally::scope();
    let before = thread_allocations();
    binding
        .call_unmetered(0, &thread, 0, &[])
        .expect("measured");
    let allocated = thread_allocations() - before;
    assert_eq!(
        allocated, 0,
        "a steady-state Null call must not allocate ({allocated} allocations)"
    );
    assert_eq!(scope.global(), 0);
}

#[test]
fn steady_state_fixed_arg_call_makes_zero_heap_allocations() {
    // Same contract with real argument traffic: two int32 in-params and
    // an int32 result ride the fused copy plan, the inline ArgVec and
    // stack scratch buffers end to end.
    let rt = TestRuntime::new().cpus(2).build();
    let server = rt.kernel().create_domain("add-server");
    rt.export(
        &server,
        "interface A { procedure Add(a: int32, b: int32) -> int32; }",
        vec![Box::new(|_: &ServerCtx, args: &[Value]| {
            let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
                unreachable!()
            };
            Ok(Reply::value(Value::Int32(a + b)))
        }) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("add-client");
    let binding = rt.import(&client, "A").unwrap();
    let thread = rt.kernel().spawn_thread(&client);
    let args = [Value::Int32(40), Value::Int32(2)];
    for _ in 0..8 {
        binding
            .call_unmetered(0, &thread, 0, &args)
            .expect("warmup");
    }

    let scope = LockTally::scope();
    let before = thread_allocations();
    let out = binding
        .call_unmetered(0, &thread, 0, &args)
        .expect("measured");
    let allocated = thread_allocations() - before;
    assert_eq!(out.ret, Some(Value::Int32(42)));
    assert_eq!(
        allocated, 0,
        "a steady-state fixed-argument call must not allocate ({allocated} allocations)"
    );
    assert_eq!(scope.global(), 0);
}

#[test]
fn steady_state_large_calls_allocate_zero_per_call_oob_regions() {
    // The bulk-arena acceptance gate: once the binding's pairwise bulk
    // region exists, large variable-size arguments ride arena chunks, so
    // a steady-state burst of BigIn/BigInOut calls must create *no*
    // per-call OOB segments — the physical-memory region table stays
    // exactly as large as it was before the burst, and the binding
    // records zero arena-exhaustion fallbacks.
    //
    // `region_count()` takes the global region-table lock, so both
    // samples happen outside any `LockTally::scope`.
    let rt = TestRuntime::new().cpus(2).build();
    let server = rt.kernel().create_domain("bulk-server");
    rt.export(
        &server,
        "interface Bulk {\n\
         procedure BigIn(data: in var bytes[65536] noninterpreted);\n\
         procedure BigInOut(data: inout var bytes[65536] noninterpreted);\n\
         }",
        vec![
            Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler,
            Box::new(|_: &ServerCtx, args: &[Value]| {
                let Value::Var(data) = &args[0] else {
                    unreachable!("stubs decoded the declared types")
                };
                Ok(Reply::none().with_out(0, Value::Var(data.clone())))
            }) as Handler,
        ],
    )
    .unwrap();
    let client = rt.kernel().create_domain("bulk-client");
    let binding = rt.import(&client, "Bulk").unwrap();
    let thread = rt.kernel().spawn_thread(&client);
    let payload = vec![0xa5u8; 8 * 1024];

    // Warm up both procedures so every pooled resource exists.
    for proc_idx in [0usize, 1] {
        binding
            .call_indexed(0, &thread, proc_idx, &[Value::Var(payload.clone())])
            .expect("warmup");
    }

    let regions_before = rt.kernel().machine().mem().region_count();
    for round in 0..16 {
        for proc_idx in [0usize, 1] {
            binding
                .call_indexed(0, &thread, proc_idx, &[Value::Var(payload.clone())])
                .unwrap_or_else(|e| panic!("round {round} proc {proc_idx}: {e}"));
        }
    }
    let regions_after = rt.kernel().machine().mem().region_count();

    assert_eq!(
        regions_before, regions_after,
        "steady-state large calls must not map per-call OOB segments \
         ({regions_before} regions before the burst, {regions_after} after)"
    );
    assert_eq!(
        binding.state().stats.bulk_fallbacks(),
        0,
        "no call fell back to a per-call OOB segment"
    );
    let bulk_observations = binding
        .state()
        .stats
        .bulk_bytes()
        .map(|h| h.count())
        .unwrap_or(0);
    assert!(
        bulk_observations > 0,
        "the burst really moved bulk payloads through the arena \
         (zero fallbacks is not vacuous)"
    );
}

#[test]
fn binding_setup_does_take_global_locks() {
    // Sanity check on the instrumentation itself: export/import are the
    // *bind-time* slow path and hit the kernel tables and name server, so
    // the counters must see them. A counter that never moves would make
    // the zero assertions above vacuous.
    let scope = LockTally::scope();
    let (_rt, _client, _binding) = null_env(false);
    assert!(
        scope.global() > 0,
        "bind-time setup goes through the global tables"
    );
}
