//! Batched call plane: chaos degradation, the serial/batch differential,
//! and the batch metrics surface.
//!
//! The submission/completion ring amortizes the per-call trap, but it
//! must change *nothing else*: a `call_batch` of N mixed procedures has
//! to produce byte-identical results and identical per-call virtual
//! phase charges to N serial `call`s — minus exactly the amortized
//! crossing phases (traps, kernel transfers, context switches), which
//! move to the batch-shared meter. And under ring faults (submission
//! ring presented as full, doorbells lost in the kernel) batched callers
//! must degrade gracefully to single-call traps without leaking ring
//! slots, A-stacks or E-stacks.

use std::sync::Arc;
use std::time::Duration;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use firefly::fault::{FaultConfig, FaultKind, FaultPlan};
use firefly::meter::Phase;
use firefly::time::Nanos;
use idl::wire::Value;
use kernel::kernel::Kernel;
use kernel::Domain;
use lrpc::{
    AStackPolicy, Binding, CallOutcome, Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx,
};
use proptest::prelude::*;

const BATCH_IDL: &str = r#"
    interface Batch {
        [astacks = 8] procedure Add(a: int32, b: int32) -> int32;
        [astacks = 8] procedure Read(h: int32, buf: out bytes[8]) -> int32;
        [astacks = 8] procedure Store(data: in var bytes[64] noninterpreted) -> int32;
    }
"#;

fn batch_handlers() -> Vec<Handler> {
    vec![
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(a.wrapping_add(*b))))
        }) as Handler,
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Int32(h) = args[0] else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(h)).with_out(1, Value::Bytes(vec![h as u8; 8])))
        }) as Handler,
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Var(v) = &args[0] else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(v.len() as i32)))
        }) as Handler,
    ]
}

fn make_env() -> (
    Arc<LrpcRuntime>,
    Arc<Domain>,
    Binding,
    Arc<kernel::thread::Thread>,
) {
    let kernel = Kernel::new(Machine::new(1, CostModel::cvax_firefly()));
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            astack_policy: AStackPolicy::Fail,
            import_timeout: Duration::from_millis(50),
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("batch-server");
    rt.export(&server, BATCH_IDL, batch_handlers())
        .expect("export");
    let app = rt.kernel().create_domain("app");
    let thread = rt.kernel().spawn_thread(&app);
    let binding = rt.import(&app, "Batch").unwrap();
    (rt, server, binding, thread)
}

/// One request in both the serial and batched shape.
fn request(choice: u8, x: i32) -> (usize, Vec<Value>) {
    match choice % 3 {
        0 => (0, vec![Value::Int32(x), Value::Int32(100)]),
        1 => (1, vec![Value::Int32(x & 0x7f), Value::Bytes(vec![0; 8])]),
        _ => (
            2,
            vec![Value::Var(vec![
                x as u8;
                (x.unsigned_abs() as usize % 64).max(1)
            ])],
        ),
    }
}

fn assert_no_leaks(rt: &Arc<LrpcRuntime>, server: &Arc<Domain>, binding: &Binding) {
    let astacks = &binding.state().astacks;
    let free: usize = (0..astacks.classes().len())
        .map(|c| astacks.free_count(c))
        .sum();
    assert_eq!(
        free,
        astacks.total_count(),
        "every A-stack must be back on its queue"
    );
    let mut i = 0;
    while let Some(slot) = astacks.linkage(i) {
        assert!(!slot.is_in_use(), "linkage record {i} left claimed");
        i += 1;
    }
    let pool = rt.estack_pool(server);
    assert_eq!(pool.busy_count(), 0, "E-stack left associated with a call");
    assert_eq!(pool.busy_gauge().get(), 0, "gauge reports an E-stack leak");
    assert_eq!(
        rt.kernel().snapshot().threads_in_calls,
        0,
        "no thread may remain inside an LRPC"
    );
    let ring = binding
        .state()
        .ring
        .as_ref()
        .expect("local binding has a ring");
    assert_eq!(ring.occupancy_now(), 0, "ring slot leaked");
    assert!(!ring.doorbell().is_pending(), "doorbell left armed");
}

#[test]
fn batched_callers_degrade_gracefully_under_ring_faults() {
    let (rt, server, binding, thread) = make_env();
    let plan = FaultPlan::new(FaultConfig {
        ring_full_every: 3,
        doorbell_lost_every: 2,
        ..FaultConfig::with_seed(0xD00B)
    });
    rt.set_fault_plan(Some(Arc::clone(&plan)));

    let doorbells_before = rt
        .collect_metrics()
        .counter("lrpc_doorbells_total")
        .unwrap_or(0);

    let requests: Vec<(usize, Vec<Value>)> = (0..18).map(|i| request(i as u8, i)).collect();
    let expected: Vec<(usize, Vec<Value>)> = requests.clone();
    let out = binding.call_batch(0, &thread, requests).unwrap();

    // Every call still succeeds — degraded, never broken — and results
    // are exactly what the serial path would produce.
    assert_eq!(out.results.len(), 18);
    for (i, (r, (proc, args))) in out.results.iter().zip(&expected).enumerate() {
        let o = r
            .as_ref()
            .unwrap_or_else(|e| panic!("call {i} failed: {e}"));
        let expect = match proc {
            0 => {
                let Value::Int32(x) = args[0] else {
                    unreachable!()
                };
                x + 100
            }
            1 => {
                let Value::Int32(h) = args[0] else {
                    unreachable!()
                };
                h
            }
            _ => {
                let Value::Var(v) = &args[0] else {
                    unreachable!()
                };
                v.len() as i32
            }
        };
        assert_eq!(o.ret, Some(Value::Int32(expect)), "call {i}");
    }

    // Every 3rd enqueue found the ring "full" and degraded to a serial
    // single-call trap.
    assert_eq!(out.degraded, 6, "every 3rd call degraded");
    assert_eq!(
        plan.events()
            .iter()
            .filter(|e| e.kind == FaultKind::RingFull)
            .count(),
        6
    );
    // Lost doorbells were re-rung (extra trap), never dropped.
    let lost = plan
        .events()
        .iter()
        .filter(|e| e.kind == FaultKind::DoorbellLost)
        .count();
    assert!(lost > 0, "the schedule lost at least one doorbell");
    // Each flush pays its doorbell traps (two when one was lost) plus one
    // return trap: doorbells < traps <= 2 * doorbells.
    assert!(
        out.traps > out.doorbells && out.traps <= 2 * out.doorbells,
        "trap/doorbell accounting off: {} traps, {} doorbells",
        out.traps,
        out.doorbells
    );
    // Amortization still wins over 2 traps per call, even with the
    // degraded calls' serial trap pairs added back in.
    assert!(
        out.traps + 2 * out.degraded < 2 * 18,
        "batching under faults must still trap less than serial"
    );

    // The exported counter tracked the trapped doorbells exactly.
    let doorbells_after = rt
        .collect_metrics()
        .counter("lrpc_doorbells_total")
        .unwrap();
    assert_eq!(doorbells_after - doorbells_before, out.doorbells);

    assert_no_leaks(&rt, &server, &binding);

    // With the plan lifted, batching returns to one doorbell per flush.
    rt.set_fault_plan(None);
    let clean = binding
        .call_batch(0, &thread, (0..6).map(|i| request(0, i)).collect())
        .unwrap();
    assert_eq!(clean.degraded, 0);
    assert_eq!(clean.doorbells, 1);
    assert_eq!(clean.traps, 2);
    assert_no_leaks(&rt, &server, &binding);
}

#[test]
fn batch_metrics_reach_the_exporters() {
    let (rt, _server, binding, thread) = make_env();
    binding
        .call_batch(0, &thread, (0..4).map(|i| request(0, i)).collect())
        .unwrap();
    let snap = rt.collect_metrics();
    assert!(
        snap.counter("lrpc_doorbells_total").unwrap() >= 1,
        "doorbell counter must count the batch's trap"
    );
    assert!(
        snap.get("lrpc_ring_occupancy:Batch").is_some(),
        "per-interface occupancy gauge registered"
    );
    let text = obs::metrics_to_prometheus(&snap);
    assert!(text.contains("lrpc_doorbells_total"), "{text}");
    assert!(text.contains("lrpc_ring_occupancy"), "{text}");
    assert!(text.contains("lrpc_batch_size"), "{text}");
}

// ---------------------------------------------------------------------
// The serial/batch differential.
// ---------------------------------------------------------------------

/// The crossing phases a batch amortizes onto its shared meter; every
/// other phase must charge identically per call.
const AMORTIZED: [Phase; 4] = [
    Phase::Trap,
    Phase::KernelTransfer,
    Phase::ContextSwitch,
    Phase::ProcessorExchange,
];

fn outcome_key(o: &CallOutcome) -> (Option<Value>, Vec<(usize, Value)>, String) {
    (o.ret.clone(), o.outs.clone(), format!("{:?}", o.copies))
}

/// Runs `requests` serially in one fresh environment and batched in
/// another, both warmed first so lazily allocated resources (E-stacks,
/// TLB entries, bulk chunks) exist on both sides, and compares.
fn differential(requests: &[(usize, Vec<Value>)]) {
    // ---- Serial side -------------------------------------------------
    let (_rt_s, _server_s, binding_s, thread_s) = make_env();
    for (proc, args) in requests {
        binding_s
            .call_indexed(0, &thread_s, *proc, args)
            .expect("serial warm-up");
    }
    let serial: Vec<CallOutcome> = requests
        .iter()
        .map(|(proc, args)| binding_s.call_indexed(0, &thread_s, *proc, args).unwrap())
        .collect();

    // ---- Batched side ------------------------------------------------
    let (_rt_b, _server_b, binding_b, thread_b) = make_env();
    binding_b
        .call_batch(0, &thread_b, requests.to_vec())
        .expect("batch warm-up");
    let batch = binding_b
        .call_batch(0, &thread_b, requests.to_vec())
        .unwrap();
    assert_eq!(batch.degraded, 0);

    for (i, (s, b)) in serial.iter().zip(&batch.results).enumerate() {
        let b = b
            .as_ref()
            .unwrap_or_else(|e| panic!("batched call {i}: {e}"));
        // Byte-identical results: return value, out-params, copy log.
        assert_eq!(outcome_key(s), outcome_key(b), "call {i} results differ");
        // Identical per-call phase charges, minus the amortized traps.
        for phase in Phase::ALL {
            if AMORTIZED.contains(&phase) {
                assert_eq!(
                    b.meter.total_for(phase),
                    Nanos::ZERO,
                    "call {i}: batched call charged amortized phase {phase:?}"
                );
            } else {
                assert_eq!(
                    s.meter.total_for(phase),
                    b.meter.total_for(phase),
                    "call {i}: phase {phase:?} diverged between serial and batch"
                );
            }
        }
    }
    // The serial side really paid per-call traps the batch amortized.
    let serial_traps: Nanos = serial
        .iter()
        .map(|o| o.meter.total_for(Phase::Trap))
        .fold(Nanos::ZERO, |a, b| a + b);
    assert!(serial_traps > batch.batch_meter.total_for(Phase::Trap) || requests.len() <= 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A `call_batch` of N mixed procedures produces byte-identical
    /// results and identical per-call virtual phase charges to N serial
    /// `call`s — minus the amortized crossing phases.
    #[test]
    fn batch_of_mixed_procedures_is_differentially_identical(
        shape in proptest::collection::vec((0u8..3, -100i32..100), 1..8)
    ) {
        let requests: Vec<(usize, Vec<Value>)> =
            shape.iter().map(|&(c, x)| request(c, x)).collect();
        differential(&requests);
    }
}

#[test]
fn fixed_differential_with_every_procedure() {
    // A deterministic instance of the property (fast path for CI).
    let requests: Vec<(usize, Vec<Value>)> = (0..6).map(|i| request(i as u8, i)).collect();
    differential(&requests);
}
