//! Cross-crate pipeline: the synthetic Taos interface corpus flows through
//! the printer, the parser, the stub generator, and finally real LRPC
//! exports — the whole toolchain over the §2.2-shaped population.

use idl::wire::Value;
use idl::StubLang;
use lrpc::{Handler, Reply, ServerCtx};
use lrpc_suite::Simulation;

#[test]
fn the_whole_corpus_prints_parses_and_compiles() {
    let corpus = workload::generate_corpus();
    let mut assembly = 0usize;
    let mut marshaling = 0usize;
    for iface in &corpus {
        // Print → parse round-trips the definition exactly.
        let printed = idl::print_interface(iface);
        let reparsed = idl::parse(&printed)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{printed}", iface.name));
        assert_eq!(&reparsed, iface);

        // The stub generator compiles every procedure, choosing the
        // language at compile time.
        let compiled = idl::compile(iface);
        for p in &compiled.procs {
            match p.lang {
                StubLang::Assembly => assembly += 1,
                StubLang::Modula2Plus => marshaling += 1,
            }
            assert!(p.layout.frame_size <= p.layout.astack_size);
        }
    }
    assert_eq!(assembly + marshaling, 366);
    // Only the six complex-typed procedures need the Modula2+ path — the
    // §2.2 claim that machine-generated marshaling is never recursive.
    assert_eq!(marshaling, 6);
}

#[test]
fn a_corpus_service_exports_and_serves_over_lrpc() {
    // Take one generated service and actually run it: echo handlers that
    // return zero for every declared procedure.
    let corpus = workload::generate_corpus();
    let service = &corpus[0];
    let sim = Simulation::cvax_serial();
    let server = sim.rt.kernel().create_domain("corpus-server");
    let handlers: Vec<Handler> = service
        .procs
        .iter()
        .map(|p| {
            let ret = p.ret.clone();
            Box::new(move |_: &ServerCtx, _: &[Value]| {
                Ok(match &ret {
                    Some(t) => Reply::value(Value::zero_of(t)),
                    None => Reply::none(),
                })
            }) as Handler
        })
        .collect();
    sim.rt
        .export_def(&server, service, handlers)
        .expect("corpus service exports");

    let client = sim.rt.kernel().create_domain("app");
    let thread = sim.rt.kernel().spawn_thread(&client);
    let binding = sim.rt.import(&client, &service.name).expect("import");

    // Call every procedure with zero-valued arguments.
    for (i, p) in service.procs.iter().enumerate() {
        let args: Vec<Value> = p
            .params
            .iter()
            .map(|param| Value::zero_of(&param.ty))
            .collect();
        let out = binding
            .call_indexed(0, &thread, i, &args)
            .unwrap_or_else(|e| panic!("{}.{} failed: {e}", service.name, p.name));
        assert_eq!(out.ret.is_some(), p.ret.is_some());
    }
    assert_eq!(binding.state().stats.calls(), service.procs.len() as u64);
}

#[test]
fn popularity_weighted_load_over_a_generated_service() {
    // Drive one corpus service with the measured popularity mix and check
    // the simple-procedure dominance: the heavily-called procedures are
    // all assembly-stub fast-path ones.
    let corpus = workload::generate_corpus();
    let all: Vec<(usize, usize)> = corpus
        .iter()
        .enumerate()
        .flat_map(|(si, iface)| iface.procs.iter().enumerate().map(move |(pi, _)| (si, pi)))
        .collect();
    let pop = workload::PopularityModel::section_2_2();
    let ranks = pop.sample(99, 5_000);
    for rank in ranks.iter().take(200) {
        let (si, pi) = all[*rank];
        let compiled = idl::compile(&corpus[si]);
        if *rank < 3 {
            assert_eq!(
                compiled.procs[pi].lang,
                StubLang::Assembly,
                "the top procedures never need complex marshaling"
            );
        }
    }
}
