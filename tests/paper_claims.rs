//! The paper's headline claims, verified in one place.
//!
//! Abstract: "LRPC achieves a factor of three performance improvement over
//! more traditional approaches ... reducing the cost of same-machine
//! communication to nearly the lower bound imposed by conventional
//! hardware. ... The Firefly virtual memory and trap handling machinery
//! limit the performance of a safe cross-domain procedure call to roughly
//! 109 microseconds; LRPC adds only 48 microseconds of overhead."

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use firefly::time::Nanos;
use idl::wire::Value;
use kernel::kernel::Kernel;
use lrpc::{Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx};
use msgrpc::{MsgRpcCost, MsgRpcSystem};

fn lrpc_null_latency() -> Nanos {
    let kernel = Kernel::new(Machine::cvax_uniprocessor());
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("s");
    rt.export(
        &server,
        "interface N { procedure Null(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "N").unwrap();
    binding.call(0, &thread, "Null", &[]).unwrap();
    binding.call(0, &thread, "Null", &[]).unwrap().elapsed
}

fn src_null_latency() -> Nanos {
    let cost = MsgRpcCost::src_rpc_taos();
    let kernel = Kernel::new(Machine::new(1, CostModel::with_hw(cost.hw)));
    let system = MsgRpcSystem::new(kernel, cost);
    let sd = system.kernel().create_domain("s");
    let server = system
        .export(
            &sd,
            "interface N { procedure Null(); }",
            vec![Box::new(|_: &[Value]| Ok(Reply::none())) as msgrpc::MsgHandler],
            1,
        )
        .unwrap();
    let client = system.kernel().create_domain("c");
    let thread = system.kernel().spawn_thread(&client);
    system
        .call(&client, &thread, &server, 0, "Null", &[])
        .unwrap();
    system
        .call(&client, &thread, &server, 0, "Null", &[])
        .unwrap()
        .elapsed
}

#[test]
fn factor_of_three_over_src_rpc() {
    let lrpc = lrpc_null_latency();
    let src = src_null_latency();
    let factor = src.as_micros_f64() / lrpc.as_micros_f64();
    assert!(
        (2.8..=3.2).contains(&factor),
        "LRPC {lrpc} vs SRC RPC {src}: factor {factor:.2} (paper: ~3x)"
    );
}

#[test]
fn overhead_over_the_hardware_lower_bound_is_48_microseconds() {
    let lrpc = lrpc_null_latency();
    let lower_bound = CostModel::cvax_firefly().hw.theoretical_minimum();
    assert_eq!(lower_bound, Nanos::from_micros(109));
    assert_eq!(lrpc - lower_bound, Nanos::from_micros(48));
}

#[test]
fn lrpc_beats_every_table_2_system() {
    let lrpc = lrpc_null_latency();
    for cost in MsgRpcCost::table_2_systems() {
        // Compare overheads (the machines differ): LRPC's overhead is far
        // below every conventional system's.
        let lrpc_overhead = lrpc - CostModel::cvax_firefly().hw.theoretical_minimum();
        assert!(
            cost.overhead() > lrpc_overhead * 4,
            "{}: overhead {} vs LRPC {}",
            cost.name,
            cost.overhead(),
            lrpc_overhead
        );
    }
}

#[test]
fn safety_is_retained_despite_the_speed() {
    // The performance comes without giving up the RPC safety properties:
    // a third party can neither read the A-stack channel nor forge a
    // binding.
    let kernel = Kernel::new(Machine::cvax_uniprocessor());
    let rt = LrpcRuntime::new(kernel);
    let server = rt.kernel().create_domain("bank");
    rt.export(
        &server,
        "interface Bank { procedure Deposit(amount: int32) -> int32; }",
        vec![
            Box::new(|_: &ServerCtx, args: &[Value]| Ok(Reply::value(args[0].clone()))) as Handler,
        ],
    )
    .unwrap();
    let client = rt.kernel().create_domain("teller");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "Bank").unwrap();

    // Third-party domain: no mapping for the A-stack region.
    let snoop = rt.kernel().create_domain("snoop");
    let region = binding.state().astacks.primary_region();
    assert!(snoop.ctx().check(region.id(), false, false).is_err());

    // Forged binding object: detected.
    assert!(binding
        .forged()
        .call(0, &thread, "Deposit", &[Value::Int32(1)])
        .is_err());

    // The legitimate path still works.
    let out = binding
        .call(0, &thread, "Deposit", &[Value::Int32(100)])
        .unwrap();
    assert_eq!(out.ret, Some(Value::Int32(100)));
}

#[test]
fn uncommon_cases_do_not_penalize_the_common_case() {
    // Section 5: handling the uncommon cases must not slow the common
    // path. The Null call costs exactly the same in a runtime that has
    // remote transports configured and other domains terminating around
    // it.
    let kernel = Kernel::new(Machine::new(2, CostModel::cvax_firefly()));
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            ..RuntimeConfig::default()
        },
    );
    rt.set_remote_transport(msgrpc::RemoteMachine::new("elsewhere"));

    let server = rt.kernel().create_domain("s");
    rt.export(
        &server,
        "interface N { procedure Null(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "N").unwrap();
    binding.call(0, &thread, "Null", &[]).unwrap();

    // Other domains come and go.
    for i in 0..5 {
        let d = rt.kernel().create_domain(format!("bystander-{i}"));
        rt.terminate_domain(&d);
    }

    let out = binding.call(0, &thread, "Null", &[]).unwrap();
    assert_eq!(out.elapsed, Nanos::from_micros(157));
}
