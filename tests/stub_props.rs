//! Differential property tests for the stub compiler (`idl::plan`).
//!
//! The compiled copy plans exist purely as a host-speed optimization: for
//! any procedure they can specialize, executing the plan must be
//! *indistinguishable* from running the stub interpreter — the same frame
//! bytes, the same decoded values, the same virtual-time charges in the
//! same phases. These properties drive arbitrary fixed-type interfaces
//! through both paths and compare everything observable.

use firefly::cpu::Machine;
use firefly::meter::{Meter, Phase};
use idl::ast::{Dir, InterfaceDef, Param, ProcDef};
use idl::plan::{ArgVec, ProcPlan};
use idl::stubgen::{compile, CompiledProc};
use idl::stubvm::{LocalFrame, OobStore, StubVm};
use idl::types::{ComplexKind, Ty};
use idl::wire::Value;
use proptest::prelude::*;

/// Strategy: a fixed-size type plus two conforming values (one pushed by
/// the client, one produced by the server for out/inout directions).
fn fixed_ty_and_values() -> impl Strategy<Value = (Ty, Value, Value)> {
    prop_oneof![
        (any::<bool>(), any::<bool>()).prop_map(|(a, b)| (
            Ty::Bool,
            Value::Bool(a),
            Value::Bool(b)
        )),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| (Ty::Byte, Value::Byte(a), Value::Byte(b))),
        (any::<i16>(), any::<i16>()).prop_map(|(a, b)| (
            Ty::Int16,
            Value::Int16(a),
            Value::Int16(b)
        )),
        (any::<i32>(), any::<i32>()).prop_map(|(a, b)| (
            Ty::Int32,
            Value::Int32(a),
            Value::Int32(b)
        )),
        (0i64..=i32::MAX as i64, 0i64..=i32::MAX as i64).prop_map(|(a, b)| (
            Ty::Cardinal,
            Value::Cardinal(a),
            Value::Cardinal(b)
        )),
        (1usize..64, any::<u8>(), any::<u8>()).prop_map(|(n, a, b)| {
            (
                Ty::ByteArray(n),
                Value::Bytes(vec![a; n]),
                Value::Bytes(vec![b; n]),
            )
        }),
    ]
}

/// A procedure over fixed-size types only, together with conforming
/// client arguments, a server return value and server out-values.
#[allow(clippy::type_complexity)]
fn fixed_proc_and_values(
) -> impl Strategy<Value = (ProcDef, Vec<Value>, Option<Value>, Vec<(usize, Value)>)> {
    let params = proptest::collection::vec(
        (
            fixed_ty_and_values(),
            prop_oneof![Just(Dir::In), Just(Dir::Out), Just(Dir::InOut)],
            any::<bool>(),
            any::<bool>(),
        ),
        0..5,
    );
    let ret = proptest::option::of(fixed_ty_and_values());
    (params, ret).prop_map(|(specs, ret)| {
        let mut args = Vec::new();
        let mut outs = Vec::new();
        let params: Vec<Param> = specs
            .into_iter()
            .enumerate()
            .map(|(i, ((ty, in_v, out_v), dir, noninterpreted, by_ref))| {
                args.push(if dir.is_in() {
                    in_v
                } else {
                    Value::zero_of(&ty)
                });
                if dir.is_out() {
                    outs.push((i, out_v));
                }
                Param {
                    name: format!("p{i}"),
                    ty,
                    dir,
                    noninterpreted,
                    by_ref,
                }
            })
            .collect();
        let (ret_ty, ret_v) = match ret {
            Some((ty, _, v)) => (Some(ty), Some(v)),
            None => (None, None),
        };
        (ProcDef::new("P", params, ret_ty), args, ret_v, outs)
    })
}

/// Everything observable from one four-half stub cycle.
#[derive(Debug, PartialEq)]
struct CycleResult {
    frame: Vec<u8>,
    sargs: Vec<Value>,
    ret: Option<Value>,
    outs: Vec<(usize, Value)>,
    virtual_ns: u64,
    arg_copy_ns: u64,
    marshal_ns: u64,
}

/// Runs push → read → place → fetch through the interpreter or the
/// compiled plan on a fresh machine, capturing frame bytes, values and
/// the virtual-time charges.
fn cycle(
    proc: &CompiledProc,
    plan: &ProcPlan,
    args: &[Value],
    ret: Option<&Value>,
    outs: &[(usize, Value)],
    use_plan: bool,
) -> CycleResult {
    let machine = Machine::cvax_uniprocessor();
    let mut meter = Meter::enabled();
    let mut frame = LocalFrame::new(proc.layout.astack_size);
    let mut oob = OobStore::new();
    let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
    let (sargs, r, o) = if use_plan {
        plan.push
            .as_ref()
            .unwrap()
            .execute(proc, args, &mut frame, &mut vm)
            .unwrap();
        let mut sargs = ArgVec::new();
        plan.read
            .as_ref()
            .unwrap()
            .execute(&frame, &mut vm, &mut sargs)
            .unwrap();
        plan.place
            .as_ref()
            .unwrap()
            .execute(ret, outs, &mut frame)
            .unwrap();
        let (r, o) = plan
            .fetch
            .as_ref()
            .unwrap()
            .execute(&frame, &mut vm)
            .unwrap();
        (sargs.as_slice().to_vec(), r, o)
    } else {
        vm.client_push_args(proc, args, &mut frame, &mut oob)
            .unwrap();
        let sargs = vm.server_read_args(proc, &frame, &oob).unwrap();
        vm.server_place_results(proc, ret, outs, &mut frame, &mut oob)
            .unwrap();
        let (r, o) = vm.client_fetch_results(proc, &frame, &oob).unwrap();
        (sargs, r, o)
    };
    CycleResult {
        frame: frame.bytes().to_vec(),
        sargs,
        ret: r,
        outs: o,
        virtual_ns: machine.cpu(0).now().as_nanos(),
        arg_copy_ns: meter.total_for(Phase::ArgCopy).as_nanos(),
        marshal_ns: meter.total_for(Phase::Marshal).as_nanos(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For every procedure the compiler can fully specialize, the plan is
    /// observationally identical to the interpreter: byte-identical frame
    /// contents, identical decoded values, and bit-identical virtual-time
    /// charges phase by phase.
    #[test]
    fn compiled_plans_match_the_interpreter_exactly(
        (proc, args, ret, outs) in fixed_proc_and_values()
    ) {
        let iface = InterfaceDef::new("I", vec![proc]);
        let compiled = compile(&iface);
        let cproc = &compiled.procs[0];
        let plan = ProcPlan::compile(cproc);
        if !plan.fully_compiled() {
            // OOB-demoted or by-construction-unspecializable signature:
            // nothing to compare (covered by the fallback property below).
            return Ok(());
        }
        let interp = cycle(cproc, &plan, &args, ret.as_ref(), &outs, false);
        let planned = cycle(cproc, &plan, &args, ret.as_ref(), &outs, true);
        prop_assert_eq!(interp, planned);
    }

    /// Fixed-size parameter lists always compile: the fast path is not
    /// silently lost for the workloads it was built for.
    #[test]
    fn inline_fixed_procs_always_fully_compile(
        (proc, _, _, _) in fixed_proc_and_values()
    ) {
        let all_inline = proc
            .params
            .iter()
            .all(|p| !matches!(p.ty, Ty::ByteArray(n) if n > idl::layout::ETHERNET_PACKET_SIZE));
        let iface = InterfaceDef::new("I", vec![proc]);
        let compiled = compile(&iface);
        let plan = ProcPlan::compile(&compiled.procs[0]);
        if all_inline
            && compiled.procs[0]
                .layout
                .params
                .iter()
                .all(|s| s.kind == idl::layout::SlotKind::Inline)
        {
            prop_assert!(plan.fully_compiled(),
                "fixed inline procedure must compile: {}", plan.describe());
        }
    }

    /// Complex (pointer-rich) parameters anywhere in the signature put the
    /// whole procedure back on the interpreter. (Inline variable-size
    /// parameters compile now — covered by the differential property
    /// below.)
    #[test]
    fn complex_types_force_interpreter_fallback(
        (mut proc, _, _, _) in fixed_proc_and_values(),
        odd in prop_oneof![
            Just(Ty::Complex(ComplexKind::LinkedList)),
            Just(Ty::Complex(ComplexKind::Tree)),
            Just(Ty::Complex(ComplexKind::GarbageCollected)),
        ],
    ) {
        proc.params.push(Param {
            name: "odd".into(),
            ty: odd,
            dir: Dir::In,
            noninterpreted: false,
            by_ref: false,
        });
        let iface = InterfaceDef::new("I", vec![proc]);
        let compiled = compile(&iface);
        let plan = ProcPlan::compile(&compiled.procs[0]);
        prop_assert!(plan.push.is_none());
        prop_assert!(plan.read.is_none());
        prop_assert!(!plan.fully_compiled());
    }

    /// Inline variable-size (and by-ref) parameters lower to length-
    /// prefixed plan steps that stay observationally identical to the
    /// interpreter: byte-identical frame contents, identical decoded
    /// values, bit-identical per-phase virtual charges — at every payload
    /// length, in every direction, with and without `ref`.
    #[test]
    fn var_bytes_plans_match_the_interpreter_exactly(
        (mut proc, mut args, ret, mut outs) in fixed_proc_and_values(),
        max in 1usize..256,
        fill in any::<u8>(),
        dir in prop_oneof![Just(Dir::In), Just(Dir::Out), Just(Dir::InOut)],
        by_ref in any::<bool>(),
        len_seed in any::<u64>(),
    ) {
        let idx = proc.params.len();
        let in_len = (len_seed % (max as u64 + 1)) as usize;
        let out_len = ((len_seed >> 32) % (max as u64 + 1)) as usize;
        proc.params.push(Param {
            name: "v".into(),
            ty: Ty::VarBytes(max),
            dir,
            noninterpreted: false,
            by_ref,
        });
        args.push(if dir.is_in() {
            Value::Var(vec![fill; in_len])
        } else {
            Value::zero_of(&Ty::VarBytes(max))
        });
        if dir.is_out() {
            outs.push((idx, Value::Var(vec![fill.wrapping_add(1); out_len])));
        }
        let iface = InterfaceDef::new("I", vec![proc]);
        let compiled = compile(&iface);
        let cproc = &compiled.procs[0];
        let plan = ProcPlan::compile(cproc);
        prop_assert!(plan.fully_compiled(),
            "inline var bytes must compile: {}", plan.describe());
        let interp = cycle(cproc, &plan, &args, ret.as_ref(), &outs, false);
        let planned = cycle(cproc, &plan, &args, ret.as_ref(), &outs, true);
        prop_assert_eq!(interp, planned);
    }
}
