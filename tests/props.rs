//! Property-based tests over the core data structures and invariants.

use idl::ast::{Dir, Param, ProcDef};
use idl::layout::{layout, SlotKind};
use idl::stubgen::compile;
use idl::types::{ComplexKind, Ty};
use idl::wire::{decode, encode_vec, TreeVal, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Wire encoding properties.
// ---------------------------------------------------------------------

/// Strategy for a (type, conforming value) pair.
fn ty_and_value() -> impl Strategy<Value = (Ty, Value)> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(|b| (Ty::Bool, Value::Bool(b))),
        any::<u8>().prop_map(|b| (Ty::Byte, Value::Byte(b))),
        any::<i16>().prop_map(|v| (Ty::Int16, Value::Int16(v))),
        any::<i32>().prop_map(|v| (Ty::Int32, Value::Int32(v))),
        (0i64..=u32::MAX as i64).prop_map(|v| (Ty::Cardinal, Value::Cardinal(v))),
        proptest::collection::vec(any::<u8>(), 1..64)
            .prop_map(|b| (Ty::ByteArray(b.len()), Value::Bytes(b))),
        (proptest::collection::vec(any::<u8>(), 0..32), 32usize..64)
            .prop_map(|(b, max)| (Ty::VarBytes(max), Value::Var(b))),
        proptest::collection::vec(any::<i32>(), 0..16)
            .prop_map(|items| (Ty::Complex(ComplexKind::LinkedList), Value::List(items))),
    ];
    // One level of record nesting over the leaves.
    let record = proptest::collection::vec(leaf.clone(), 1..4).prop_map(|fields| {
        let tys = fields
            .iter()
            .enumerate()
            .map(|(i, (t, _))| (format!("f{i}"), t.clone()))
            .collect();
        let vals = fields.into_iter().map(|(_, v)| v).collect();
        (Ty::Record(tys), Value::Record(vals))
    });
    prop_oneof![leaf, record]
}

fn arbitrary_tree() -> impl Strategy<Value = TreeVal> {
    let leaf = Just(TreeVal::Leaf).boxed();
    leaf.prop_recursive(6, 32, 2, |inner| {
        (inner.clone(), any::<i32>(), inner)
            .prop_map(|(l, v, r)| TreeVal::Node(Box::new(l), v, Box::new(r)))
            .boxed()
    })
}

proptest! {
    #[test]
    fn wire_roundtrip_is_identity((ty, value) in ty_and_value()) {
        let bytes = encode_vec(&value, &ty).expect("conforming value encodes");
        let (back, used) = decode(&bytes, &ty).expect("own encoding decodes");
        prop_assert_eq!(back, value);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn tree_marshaling_roundtrips(tree in arbitrary_tree()) {
        let ty = Ty::Complex(ComplexKind::Tree);
        let value = Value::Tree(tree);
        let bytes = encode_vec(&value, &ty).expect("tree encodes");
        let (back, _) = decode(&bytes, &ty).expect("tree decodes");
        prop_assert_eq!(back, value);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256),
                                      (ty, _) in ty_and_value()) {
        // Must return Ok or Err, never panic or overflow.
        let _ = decode(&bytes, &ty);
    }

    #[test]
    fn fixed_size_matches_encoding_length((ty, value) in ty_and_value()) {
        if let Some(n) = ty.fixed_size() {
            let bytes = encode_vec(&value, &ty).expect("encodes");
            prop_assert_eq!(bytes.len(), n, "fixed-size types encode to exactly their size");
        }
    }
}

// ---------------------------------------------------------------------
// Layout properties.
// ---------------------------------------------------------------------

fn arbitrary_param(i: usize) -> impl Strategy<Value = Param> {
    let ty = prop_oneof![
        Just(Ty::Bool),
        Just(Ty::Byte),
        Just(Ty::Int16),
        Just(Ty::Int32),
        Just(Ty::Cardinal),
        (1usize..512).prop_map(Ty::ByteArray),
        (1usize..4096).prop_map(Ty::VarBytes),
        Just(Ty::Complex(ComplexKind::LinkedList)),
        Just(Ty::Complex(ComplexKind::Tree)),
    ];
    let dir = prop_oneof![Just(Dir::In), Just(Dir::Out), Just(Dir::InOut)];
    (ty, dir, any::<bool>(), any::<bool>()).prop_map(move |(ty, dir, noninterpreted, by_ref)| {
        Param {
            name: format!("p{i}"),
            ty,
            dir,
            noninterpreted,
            by_ref,
        }
    })
}

fn arbitrary_proc() -> impl Strategy<Value = ProcDef> {
    let params = proptest::collection::vec(any::<u8>(), 0..6).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, _)| arbitrary_param(i))
            .collect::<Vec<_>>()
    });
    let ret = proptest::option::of(prop_oneof![
        Just(Ty::Int32),
        Just(Ty::Bool),
        (1usize..256).prop_map(Ty::ByteArray),
    ]);
    (params, ret).prop_map(|(params, ret)| ProcDef::new("P", params, ret))
}

proptest! {
    #[test]
    fn layout_slots_never_overlap(proc in arbitrary_proc()) {
        let l = layout(&proc);
        let mut slots: Vec<_> = l.params.iter().collect();
        if let Some(r) = &l.ret {
            slots.push(r);
        }
        slots.sort_by_key(|s| s.offset);
        for w in slots.windows(2) {
            prop_assert!(w[0].offset + w[0].size <= w[1].offset, "slots overlap");
        }
        for s in &slots {
            prop_assert!(s.offset + s.size <= l.frame_size);
        }
    }

    #[test]
    fn layout_frame_fits_the_astack(proc in arbitrary_proc()) {
        let l = layout(&proc);
        prop_assert!(l.frame_size <= l.astack_size,
            "frame {} must fit the A-stack {}", l.frame_size, l.astack_size);
    }

    #[test]
    fn fixed_procedures_get_exact_astacks(proc in arbitrary_proc()) {
        let l = layout(&proc);
        if proc.all_fixed_size() {
            prop_assert!(l.fixed);
            // Exact sizing: no Ethernet default padding.
            prop_assert!(l.astack_size <= l.frame_size.max(4));
        }
    }

    #[test]
    fn complex_params_are_always_out_of_band(proc in arbitrary_proc()) {
        let l = layout(&proc);
        for (slot, param) in l.params.iter().zip(&proc.params) {
            if param.ty.is_complex() {
                prop_assert_eq!(slot.kind, SlotKind::OutOfBand);
            }
        }
    }

    #[test]
    fn compile_never_panics_and_indexes_align(proc in arbitrary_proc()) {
        let iface = idl::ast::InterfaceDef::new("I", vec![proc]);
        let compiled = compile(&iface);
        prop_assert_eq!(compiled.procs.len(), 1);
        prop_assert_eq!(compiled.procs[0].index, 0);
        prop_assert_eq!(compiled.pdl()[0].astack_size, compiled.procs[0].layout.astack_size);
    }
}

// ---------------------------------------------------------------------
// Contention-engine properties.
// ---------------------------------------------------------------------

use firefly::contention::{simulate_throughput, CallProfile, ResourceId, Seg};
use firefly::time::Nanos;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn throughput_never_exceeds_the_latency_bound(
        compute_us in 10u64..500,
        hold_us in 1u64..200,
        cpus in 1usize..6,
    ) {
        let profile = CallProfile::new(vec![
            Seg::Compute(Nanos::from_micros(compute_us)),
            Seg::Use { res: ResourceId(0), hold: Nanos::from_micros(hold_us) },
        ]);
        let latency = profile.uncontended_latency();
        let report = simulate_throughput(&vec![profile; cpus], 1, Nanos::from_secs(1));
        let per_cpu_bound = 1_000_000_000 / latency.as_nanos();
        // No CPU completes more calls than its own latency allows.
        for &calls in &report.per_cpu_calls {
            prop_assert!(calls <= per_cpu_bound + 1);
        }
        // Aggregate throughput never exceeds the resource's service rate.
        let resource_bound = 1_000_000_000 / Nanos::from_micros(hold_us).as_nanos();
        prop_assert!(report.total_calls() <= resource_bound + cpus as u64);
    }

    #[test]
    fn adding_cpus_never_reduces_throughput(
        compute_us in 10u64..300,
        hold_us in 1u64..100,
    ) {
        let profile = CallProfile::new(vec![
            Seg::Compute(Nanos::from_micros(compute_us)),
            Seg::Use { res: ResourceId(0), hold: Nanos::from_micros(hold_us) },
        ]);
        let mut last = 0;
        for n in 1..=4 {
            let total =
                simulate_throughput(&vec![profile.clone(); n], 1, Nanos::from_secs(1)).total_calls();
            prop_assert!(total + 2 >= last, "throughput regressed: {last} -> {total} at {n} CPUs");
            last = total;
        }
    }

    #[test]
    fn busy_time_equals_holds_times_calls(
        hold_us in 1u64..50,
        cpus in 1usize..4,
    ) {
        let profile = CallProfile::new(vec![
            Seg::Use { res: ResourceId(0), hold: Nanos::from_micros(hold_us) },
            Seg::Compute(Nanos::from_micros(100)),
        ]);
        let report = simulate_throughput(&vec![profile; cpus], 1, Nanos::from_millis(50));
        // Busy time counts every started hold; completed calls can lag by
        // at most one in-flight call per CPU.
        let holds = report.resource_busy[0].as_nanos() / Nanos::from_micros(hold_us).as_nanos();
        prop_assert!(holds >= report.total_calls());
        prop_assert!(holds <= report.total_calls() + cpus as u64);
    }
}
