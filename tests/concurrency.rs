//! Concurrency stress: LRPC's "design for concurrency" under real host
//! threads.
//!
//! Section 3.4: "LRPC increases throughput by minimizing the use of shared
//! data structures on the critical domain transfer path." These tests
//! hammer a single server from many host threads and check that the
//! functional invariants hold: every call completes with the right result,
//! A-stack accounting balances, linkage stacks unwind, and contention for
//! a small A-stack pool serializes instead of corrupting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use idl::wire::Value;
use kernel::kernel::Kernel;
use lrpc::{AStackPolicy, CallError, Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx};

#[test]
fn many_threads_one_server_no_interference() {
    let kernel = Kernel::new(Machine::new(4, CostModel::cvax_firefly()));
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("shared-server");
    let executed = Arc::new(AtomicU64::new(0));
    let executed2 = Arc::clone(&executed);
    rt.export(
        &server,
        "interface Calc { [astacks = 16] procedure AddOne(x: int32) -> int32; }",
        vec![Box::new(move |_: &ServerCtx, args: &[Value]| {
            executed2.fetch_add(1, Ordering::Relaxed);
            let Value::Int32(x) = args[0] else {
                unreachable!()
            };
            Ok(Reply::value(Value::Int32(x + 1)))
        }) as Handler],
    )
    .unwrap();

    let clients: Vec<_> = (0..4)
        .map(|i| rt.kernel().create_domain(format!("client-{i}")))
        .collect();
    let bindings: Vec<_> = clients
        .iter()
        .map(|c| Arc::new(rt.import(c, "Calc").unwrap()))
        .collect();

    const CALLS: i32 = 500;
    std::thread::scope(|s| {
        for (cpu, (client, binding)) in clients.iter().zip(&bindings).enumerate() {
            let rt = Arc::clone(&rt);
            let binding = Arc::clone(binding);
            s.spawn(move || {
                let thread = rt.kernel().spawn_thread(client);
                for i in 0..CALLS {
                    let out = binding
                        .call_indexed(cpu, &thread, 0, &[Value::Int32(i)])
                        .expect("concurrent call");
                    assert_eq!(out.ret, Some(Value::Int32(i + 1)));
                }
                assert_eq!(thread.call_depth(), 0);
            });
        }
    });
    assert_eq!(executed.load(Ordering::Relaxed), 4 * CALLS as u64);

    // Every A-stack went back on its queue.
    for binding in &bindings {
        let astacks = &binding.state().astacks;
        assert_eq!(astacks.free_count(0), 16, "A-stack accounting must balance");
    }
}

#[test]
fn small_astack_pool_serializes_under_wait_policy() {
    let kernel = Kernel::new(Machine::new(4, CostModel::cvax_firefly()));
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            astack_policy: AStackPolicy::Wait(Duration::from_secs(10)),
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("narrow");
    rt.export(
        &server,
        "interface Narrow { [astacks = 2] procedure P(x: int32) -> int32; }",
        vec![Box::new(move |_: &ServerCtx, args: &[Value]| {
            // A little host-time work to force overlap.
            std::thread::sleep(Duration::from_micros(200));
            Ok(Reply::value(args[0].clone()))
        }) as Handler],
    )
    .unwrap();

    let client = rt.kernel().create_domain("c");
    let binding = Arc::new(rt.import(&client, "Narrow").unwrap());
    std::thread::scope(|s| {
        for cpu in 0..4 {
            let rt = Arc::clone(&rt);
            let binding = Arc::clone(&binding);
            let client = Arc::clone(&client);
            s.spawn(move || {
                let thread = rt.kernel().spawn_thread(&client);
                for i in 0..50 {
                    let out = binding
                        .call_indexed(cpu, &thread, 0, &[Value::Int32(i)])
                        .expect("waits for an A-stack instead of failing");
                    assert_eq!(out.ret, Some(Value::Int32(i)));
                }
            });
        }
    });
    assert_eq!(binding.state().astacks.free_count(0), 2);
    assert_eq!(
        binding.state().astacks.total_count(),
        2,
        "wait policy never grows"
    );
}

#[test]
fn astack_linkage_pairs_exclude_double_use() {
    // Claim the linkage slot under a call's feet: the call must fail with
    // AStackBusy rather than corrupt the pair, and the unwinding must put
    // the A-stack back.
    let kernel = Kernel::new(Machine::cvax_uniprocessor());
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            astack_policy: AStackPolicy::Fail,
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("s");
    rt.export(
        &server,
        "interface One { [astacks = 1] procedure P(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "One").unwrap();

    let slot = binding.state().astacks.linkage(0).unwrap();
    assert!(
        slot.try_claim(),
        "simulate another thread mid-call on the pair"
    );
    let err = binding.call(0, &thread, "P", &[]).unwrap_err();
    assert!(matches!(err, CallError::AStackBusy), "got {err}");
    slot.release();
    binding.call(0, &thread, "P", &[]).unwrap();
}

#[test]
fn concurrent_termination_and_calls_settle_cleanly() {
    let kernel = Kernel::new(Machine::new(2, CostModel::cvax_firefly()));
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("doomed");
    rt.export(
        &server,
        "interface D { procedure P(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let binding = Arc::new(rt.import(&client, "D").unwrap());

    // A sleep-based race here is flaky on fast hosts (the caller can
    // drain a fixed call budget before the parent wakes), so both sides
    // handshake on call counts instead: the parent terminates only after
    // watching calls succeed, and the caller keeps calling until the
    // revocation errors actually arrive (with a generous budget so a
    // broken revocation path fails the assertion instead of hanging).
    let calls_started = Arc::new(AtomicU64::new(0));
    let caller = {
        let rt = Arc::clone(&rt);
        let binding = Arc::clone(&binding);
        let client = Arc::clone(&client);
        let calls_started = Arc::clone(&calls_started);
        std::thread::spawn(move || {
            let thread = rt.kernel().spawn_thread(&client);
            let mut ok = 0u32;
            let mut failed = 0u32;
            for _ in 0..5_000_000u64 {
                calls_started.fetch_add(1, Ordering::Relaxed);
                match binding.call_indexed(0, &thread, 0, &[]) {
                    Ok(_) => ok += 1,
                    Err(
                        CallError::BindingRevoked
                        | CallError::InvalidBinding(_)
                        | CallError::DomainDead
                        | CallError::CallFailed,
                    ) => failed += 1,
                    Err(other) => panic!("unexpected error under termination: {other}"),
                }
                if failed >= 16 {
                    break;
                }
            }
            (ok, failed)
        })
    };
    // Let some calls through, then pull the server out.
    while calls_started.load(Ordering::Relaxed) < 100 {
        std::thread::yield_now();
    }
    rt.terminate_domain(&server);
    let (ok, failed) = caller.join().expect("caller must not panic");
    assert!(ok > 0, "some calls succeeded before termination");
    assert!(
        failed > 0,
        "calls after termination fail with the revocation errors"
    );
}

#[test]
fn termination_with_outstanding_calls_fails_each_one_and_releases_pairs() {
    // Section 5.3: the server domain terminates while several clients'
    // threads are captured inside it. Every outstanding call must return
    // with call-failed (never hang), and every A-stack/linkage pair must
    // come back to its free queue.
    let kernel = Kernel::new(Machine::new(4, CostModel::cvax_firefly()));
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("doomed");
    let inside = Arc::new(AtomicU64::new(0));
    let gate = Arc::new((parking_lot::Mutex::new(false), parking_lot::Condvar::new()));
    let (inside2, gate2) = (Arc::clone(&inside), Arc::clone(&gate));
    rt.export(
        &server,
        "interface D { [astacks = 4] procedure Hold(); }",
        vec![Box::new(move |_: &ServerCtx, _: &[Value]| {
            inside2.fetch_add(1, Ordering::SeqCst);
            let (lock, cv) = &*gate2;
            let mut released = lock.lock();
            while !*released {
                cv.wait(&mut released);
            }
            Ok(Reply::none())
        }) as Handler],
    )
    .unwrap();

    let clients: Vec<_> = (0..3)
        .map(|i| rt.kernel().create_domain(format!("c{i}")))
        .collect();
    let bindings: Vec<_> = clients
        .iter()
        .map(|c| Arc::new(rt.import(c, "D").unwrap()))
        .collect();

    let callers: Vec<_> = clients
        .iter()
        .zip(&bindings)
        .map(|(client, binding)| {
            let rt = Arc::clone(&rt);
            let binding = Arc::clone(binding);
            let client = Arc::clone(client);
            std::thread::spawn(move || {
                let thread = rt.kernel().spawn_thread(&client);
                let result = binding.call_indexed(0, &thread, 0, &[]);
                (result, thread.call_depth())
            })
        })
        .collect();

    // Wait until all three threads are captured inside the server, then
    // pull the domain out from under them and let the handlers return.
    while inside.load(Ordering::SeqCst) < 3 {
        std::thread::yield_now();
    }
    rt.terminate_domain(&server);
    {
        let (lock, cv) = &*gate;
        *lock.lock() = true;
        cv.notify_all();
    }

    for caller in callers {
        let (result, depth) = caller.join().expect("caller must not panic");
        assert!(
            matches!(result, Err(CallError::CallFailed)),
            "an outstanding call sees call-failed, got {result:?}"
        );
        assert_eq!(depth, 0, "the linkage stack unwound");
    }
    for binding in &bindings {
        let astacks = &binding.state().astacks;
        assert_eq!(astacks.free_count(0), 4, "every A-stack back on its queue");
        let mut i = 0;
        while let Some(slot) = astacks.linkage(i) {
            assert!(!slot.is_in_use(), "linkage record {i} left claimed");
            i += 1;
        }
    }
    assert_eq!(rt.kernel().snapshot().threads_in_calls, 0);
}

#[test]
fn estack_pool_reclaims_under_concurrent_pressure() {
    // A tiny E-stack budget with many A-stacks forces the LRU reclamation
    // path while four threads hammer the server.
    let kernel = Kernel::new(Machine::new(4, CostModel::cvax_firefly()));
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            max_estacks: 2,
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("squeezed");
    rt.export(
        &server,
        "interface S { [astacks = 12] procedure P(x: int32) -> int32; }",
        vec![
            Box::new(|_: &ServerCtx, args: &[Value]| Ok(Reply::value(args[0].clone())))
                as lrpc::Handler,
        ],
    )
    .unwrap();

    let clients: Vec<_> = (0..4)
        .map(|i| rt.kernel().create_domain(format!("c{i}")))
        .collect();
    std::thread::scope(|s| {
        for (cpu, client) in clients.iter().enumerate() {
            let rt = Arc::clone(&rt);
            s.spawn(move || {
                let binding = rt.import(client, "S").expect("import");
                let thread = rt.kernel().spawn_thread(client);
                for i in 0..150 {
                    let out = binding
                        .call_indexed(cpu, &thread, 0, &[Value::Int32(i)])
                        .expect("squeezed call");
                    assert_eq!(out.ret, Some(Value::Int32(i)));
                }
            });
        }
    });
    // A late-binding fifth client guarantees the reclamation path runs:
    // its A-stacks live in a fresh region, so its first call presents a
    // key the pool has never seen while the pool sits at/over its 2-stack
    // budget with every prior association idle — the LRU one must be
    // reclaimed. (The concurrent phase above may or may not reclaim on
    // its own, depending on how the threads interleave.)
    let late = rt.kernel().create_domain("c-late");
    let binding = rt.import(&late, "S").expect("late import");
    let thread = rt.kernel().spawn_thread(&late);
    let out = binding
        .call_indexed(0, &thread, 0, &[Value::Int32(7)])
        .expect("late call");
    assert_eq!(out.ret, Some(Value::Int32(7)));

    let stats = rt.estack_pool(&server).stats();
    // Four bindings × distinct A-stacks with only 2 budgeted E-stacks:
    // reclamation must have kicked in, and concurrent in-call E-stacks may
    // push the peak past the cap, but never anywhere near one-per-A-stack.
    assert!(
        stats.reclamations > 0,
        "LRU reclamation exercised: {stats:?}"
    );
    assert!(
        stats.peak_allocated <= 8,
        "peak {} must stay bounded",
        stats.peak_allocated
    );
}

#[test]
fn cross_pair_churn_leaks_nothing() {
    // N clients × M servers: every client binds to every server and four
    // host threads churn calls across all pairs concurrently. The A-stack
    // queues, linkage records and E-stack pools are per-pair/per-server,
    // so the pairs must neither interfere nor leak: afterwards every free
    // queue is full again, no linkage record is claimed, no E-stack is
    // associated with an in-flight call, and no thread is captured.
    const N_CLIENTS: usize = 4;
    const N_SERVERS: usize = 3;
    const CALLS: i32 = 120;

    let kernel = Kernel::new(Machine::new(4, CostModel::cvax_firefly()));
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            ..RuntimeConfig::default()
        },
    );
    let servers: Vec<_> = (0..N_SERVERS)
        .map(|i| {
            let server = rt.kernel().create_domain(format!("server-{i}"));
            rt.export(
                &server,
                &format!("interface Svc{i} {{ [astacks = 6] procedure Echo(x: int32) -> int32; }}"),
                vec![
                    Box::new(|_: &ServerCtx, args: &[Value]| Ok(Reply::value(args[0].clone())))
                        as Handler,
                ],
            )
            .unwrap();
            server
        })
        .collect();
    let clients: Vec<_> = (0..N_CLIENTS)
        .map(|i| rt.kernel().create_domain(format!("client-{i}")))
        .collect();
    // bindings[c][s]: client c's binding to server s.
    let bindings: Vec<Vec<_>> = clients
        .iter()
        .map(|c| {
            (0..N_SERVERS)
                .map(|s| Arc::new(rt.import(c, &format!("Svc{s}")).unwrap()))
                .collect()
        })
        .collect();

    std::thread::scope(|scope| {
        for (cpu, (client, my_bindings)) in clients.iter().zip(&bindings).enumerate() {
            let rt = Arc::clone(&rt);
            scope.spawn(move || {
                let thread = rt.kernel().spawn_thread(client);
                for i in 0..CALLS {
                    // Stride the server order per thread so pairs overlap
                    // in every combination.
                    let b = &my_bindings[(i as usize + cpu) % N_SERVERS];
                    let out = b
                        .call_indexed(cpu, &thread, 0, &[Value::Int32(i)])
                        .expect("cross-pair call");
                    assert_eq!(out.ret, Some(Value::Int32(i)));
                }
                assert_eq!(thread.call_depth(), 0);
            });
        }
    });

    for my_bindings in &bindings {
        for binding in my_bindings {
            let astacks = &binding.state().astacks;
            assert_eq!(astacks.free_count(0), 6, "A-stack queue refilled");
            assert_eq!(astacks.total_count(), 6, "no growth under Fail policy");
            let mut i = 0;
            while let Some(slot) = astacks.linkage(i) {
                assert!(!slot.is_in_use(), "linkage record {i} left claimed");
                i += 1;
            }
        }
    }
    for server in &servers {
        assert_eq!(
            rt.estack_pool(server).busy_count(),
            0,
            "no E-stack left associated with an in-flight call"
        );
    }
    assert_eq!(rt.kernel().snapshot().threads_in_calls, 0);
}

#[test]
fn blocked_callers_are_granted_astacks_in_arrival_order() {
    // FIFO fairness of the wait queue behind the lock-free free list: with
    // the single A-stack held, four waiters that block in a known order
    // must be granted the stack in that same order — the lock-free pop is
    // first-come-first-served through the ticket queue, so no waiter can
    // barge past an earlier one.
    let kernel = Kernel::new(Machine::new(4, CostModel::cvax_firefly()));
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            astack_policy: AStackPolicy::Wait(Duration::from_secs(10)),
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("one-stack");
    rt.export(
        &server,
        "interface F { [astacks = 1] procedure P(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let binding = Arc::new(rt.import(&client, "F").unwrap());
    let astacks = &binding.state().astacks;

    // Hold the only A-stack so every caller must queue.
    let held = astacks
        .acquire(0, AStackPolicy::Fail, rt.kernel(), &client, &server)
        .expect("take the only stack");

    let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
    std::thread::scope(|s| {
        for i in 0..4usize {
            let order = Arc::clone(&order);
            let binding = Arc::clone(&binding);
            let (rt, client, server) = (Arc::clone(&rt), Arc::clone(&client), Arc::clone(&server));
            s.spawn(move || {
                let astacks = &binding.state().astacks;
                // Enter the wait queue strictly after the previous waiter.
                while astacks.waiters(0) != i {
                    std::thread::yield_now();
                }
                let idx = astacks
                    .acquire(
                        0,
                        AStackPolicy::Wait(Duration::from_secs(10)),
                        rt.kernel(),
                        &client,
                        &server,
                    )
                    .expect("granted eventually");
                order.lock().push(i);
                astacks.release(idx);
            });
        }
        // All four queued up, in order — now start the grant chain.
        while binding.state().astacks.waiters(0) != 4 {
            std::thread::yield_now();
        }
        binding.state().astacks.release(held);
    });
    assert_eq!(*order.lock(), vec![0, 1, 2, 3], "strict arrival order");
    assert_eq!(binding.state().astacks.free_count(0), 1);
}

#[test]
fn concurrent_remote_calls_through_the_internet() {
    use msgrpc::Internet;
    let client_machine = {
        let kernel = Kernel::new(Machine::new(4, CostModel::cvax_firefly()));
        LrpcRuntime::with_config(
            kernel,
            RuntimeConfig {
                domain_caching: false,
                ..RuntimeConfig::default()
            },
        )
    };
    let server_machine = {
        let kernel = Kernel::new(Machine::new(1, CostModel::cvax_firefly()));
        LrpcRuntime::with_config(
            kernel,
            RuntimeConfig {
                domain_caching: false,
                ..RuntimeConfig::default()
            },
        )
    };
    let net = Internet::new();
    net.attach("a", Arc::clone(&client_machine));
    net.attach("b", Arc::clone(&server_machine));
    let sd = server_machine.kernel().create_domain("svc");
    server_machine
        .export(
            &sd,
            "interface R { [astacks = 16] procedure Echo(x: int32) -> int32; }",
            vec![
                Box::new(|_: &ServerCtx, args: &[Value]| Ok(Reply::value(args[0].clone())))
                    as lrpc::Handler,
            ],
        )
        .unwrap();
    client_machine.set_remote_transport(Arc::clone(&net) as Arc<dyn lrpc::RemoteTransport>);

    let app = client_machine.kernel().create_domain("app");
    let binding = Arc::new(client_machine.import_remote(&app, "R").unwrap());
    std::thread::scope(|s| {
        for cpu in 0..4 {
            let rt = Arc::clone(&client_machine);
            let app = Arc::clone(&app);
            let binding = Arc::clone(&binding);
            s.spawn(move || {
                let thread = rt.kernel().spawn_thread(&app);
                for i in 0..40 {
                    let out = binding
                        .call_indexed(cpu, &thread, 0, &[Value::Int32(i)])
                        .expect("remote call");
                    assert_eq!(out.ret, Some(Value::Int32(i)));
                }
            });
        }
    });
    assert_eq!(binding.state().stats.remote_calls(), 160);
}
