//! Chaos suite: workload traces replayed under seeded fault schedules.
//!
//! The fault plan (see `firefly::fault`) decides *what* goes wrong; these
//! tests check that the machinery of Section 5.3 absorbs it. Every
//! schedule is seeded and deterministic, so each scenario asserts two
//! things: the *robustness invariants* (no A-stack or E-stack leaks, no
//! orphaned linkage records, captured threads released or destroyed,
//! revoked bindings rejected) and *bit-reproducibility* (the same seed
//! yields the same fault-event log and the same client-observed error
//! sequence, run after run).

use std::sync::Arc;
use std::time::Duration;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use firefly::fault::{FaultConfig, FaultKind, FaultPlan};
use idl::wire::Value;
use kernel::kernel::Kernel;
use kernel::Domain;
use lrpc::{
    AStackPolicy, Binding, BreakerConfig, BreakerState, CallError, Handler, LrpcRuntime,
    RecoveryConfig, Reply, ResilientClient, RetryPolicy, RuntimeConfig, ServerCtx,
};
use workload::trace::{CallTrace, TraceModel};

/// The interface every chaos server exports. `Get` and `Stat` are
/// declared idempotent, so only they are eligible for retry.
const CHAOS_IDL: &str = r#"
    interface Chaos {
        [astacks = 8] [idempotent = 1] procedure Get(x: int32) -> int32;
        [astacks = 8] procedure Put(x: int32) -> int32;
        [astacks = 8] [idempotent = 1] procedure Stat() -> int32;
    }
"#;

fn chaos_handlers() -> Vec<Handler> {
    vec![
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Int32(x) = args[0] else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(x.wrapping_add(1))))
        }) as Handler,
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Int32(x) = args[0] else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(x.wrapping_mul(2))))
        }) as Handler,
        Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::value(Value::Int32(7)))) as Handler,
    ]
}

fn make_runtime(config: RuntimeConfig) -> (Arc<LrpcRuntime>, Arc<Domain>) {
    let kernel = Kernel::new(Machine::new(2, CostModel::cvax_firefly()));
    let rt = LrpcRuntime::with_config(kernel, config);
    let server = rt.kernel().create_domain("chaos-server");
    rt.export(&server, CHAOS_IDL, chaos_handlers())
        .expect("export");
    (rt, server)
}

fn chaos_config() -> RuntimeConfig {
    RuntimeConfig {
        domain_caching: false,
        astack_policy: AStackPolicy::Fail,
        import_timeout: Duration::from_millis(50),
        ..RuntimeConfig::default()
    }
}

/// Maps one trace event onto the chaos interface.
fn event_call(rank: usize, bytes: u32) -> (&'static str, Vec<Value>) {
    match rank % 3 {
        0 => ("Get", vec![Value::Int32(bytes as i32)]),
        1 => ("Put", vec![Value::Int32(bytes as i32)]),
        _ => ("Stat", vec![]),
    }
}

/// Replays a trace through a resilient client; returns (ok, err) counts.
fn replay(client: &ResilientClient, trace: &CallTrace) -> (u32, u32) {
    let (mut ok, mut err) = (0, 0);
    for ev in &trace.events {
        let (proc, args) = event_call(ev.proc_rank, ev.bytes);
        match client.call(proc, &args) {
            Ok(_) => ok += 1,
            Err(_) => err += 1,
        }
    }
    (ok, err)
}

/// The leak invariants: every A-stack back on its free queue, every
/// linkage record released, no E-stack still marked in-call, no thread
/// still inside an LRPC.
fn assert_no_leaks(rt: &Arc<LrpcRuntime>, server: &Arc<Domain>, binding: &Binding) {
    let astacks = &binding.state().astacks;
    let free: usize = (0..astacks.classes().len())
        .map(|c| astacks.free_count(c))
        .sum();
    assert_eq!(
        free,
        astacks.total_count(),
        "every A-stack must be back on its queue"
    );
    let mut i = 0;
    while let Some(slot) = astacks.linkage(i) {
        assert!(!slot.is_in_use(), "linkage record {i} left claimed");
        i += 1;
    }
    let pool = rt.estack_pool(server);
    assert_eq!(
        pool.busy_count(),
        0,
        "no E-stack may stay associated with an in-progress call"
    );
    // The exported metrics gauge is maintained incrementally on the call
    // path; if it ever disagrees with the pool's own count, the leak
    // detector the dashboard sees is lying.
    assert_eq!(
        pool.busy_gauge().get(),
        pool.busy_count() as i64,
        "the lrpc_estacks_busy gauge must track the pool exactly"
    );
    assert_eq!(pool.busy_gauge().get(), 0, "gauge reports an E-stack leak");
    assert_eq!(
        rt.kernel().snapshot().threads_in_calls,
        0,
        "no thread may remain inside an LRPC"
    );
}

#[test]
fn quiescent_plan_is_observationally_invisible() {
    // An installed plan with all-zero knobs must inject nothing and
    // charge nothing: the virtual clock advances exactly as it does with
    // no plan at all (the bench crate's Null-call decomposition relies on
    // this).
    let run = |plan: Option<Arc<FaultPlan>>| {
        let (rt, _server) = make_runtime(chaos_config());
        rt.set_fault_plan(plan);
        let client = rt.kernel().create_domain("quiet");
        let thread = rt.kernel().spawn_thread(&client);
        let binding = rt.import(&client, "Chaos").unwrap();
        for i in 0..50 {
            binding
                .call(0, &thread, "Get", &[Value::Int32(i)])
                .expect("quiescent call");
        }
        rt.kernel().machine().cpu(0).now()
    };
    let quiet_plan = FaultPlan::new(FaultConfig::with_seed(0xC4A05));
    let with_plan = run(Some(Arc::clone(&quiet_plan)));
    let without = run(None);
    assert_eq!(with_plan, without, "zero knobs must charge zero time");
    assert_eq!(quiet_plan.event_count(), 0, "zero knobs never inject");
}

/// One full seeded chaos run; everything observable is returned so runs
/// can be compared bit-for-bit.
struct RunRecord {
    digest: u64,
    events: Vec<String>,
    errors: Vec<String>,
    ok: u32,
    err: u32,
    vtime: firefly::time::Nanos,
}

fn seeded_run(seed: u64) -> RunRecord {
    let (rt, server) = make_runtime(chaos_config());
    let plan = FaultPlan::new(FaultConfig {
        server_panic_every: 7,
        forge_binding_every: 11,
        dispatch_delay_us: 5,
        ..FaultConfig::with_seed(seed)
    });
    rt.set_fault_plan(Some(Arc::clone(&plan)));
    let app = rt.kernel().create_domain("app");
    let client = ResilientClient::import(
        &rt,
        &app,
        "Chaos",
        RecoveryConfig {
            retry: RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
            breaker: BreakerConfig {
                trip_after: 3,
                cooldown_rejects: 2,
            },
            jitter_seed: seed,
            ..RecoveryConfig::default()
        },
    )
    .unwrap();
    let trace = TraceModel::taos().generate(9, 300);
    let (ok, err) = replay(&client, &trace);
    let events = plan.events().iter().map(|e| e.to_string()).collect();
    assert_no_leaks(&rt, &server, &client.binding());
    RunRecord {
        digest: plan.digest(),
        events,
        errors: client.error_log(),
        ok,
        err,
        vtime: rt.kernel().machine().cpu(0).now(),
    }
}

#[test]
fn same_seed_reproduces_faults_and_errors_bit_for_bit() {
    let a = seeded_run(1234);
    let b = seeded_run(1234);
    assert_eq!(a.events, b.events, "fault event logs must match");
    assert_eq!(a.digest, b.digest, "fault digests must match");
    assert_eq!(
        a.errors, b.errors,
        "client-observed error sequences must match"
    );
    assert_eq!((a.ok, a.err), (b.ok, b.err), "outcome counts must match");
    assert_eq!(
        a.vtime, b.vtime,
        "virtual clocks must agree to the nanosecond"
    );
    assert!(a.err > 0, "the schedule injected visible failures");

    // The every-Nth knobs are counter-based, so the *schedule* is the
    // same under any seed; the seed flows into the retry jitter, which a
    // different seed perturbs down to the virtual clock.
    let c = seeded_run(99);
    assert_eq!(a.events, c.events, "counter-based schedules are seed-free");
    assert_ne!(a.vtime, c.vtime, "a different seed draws different jitter");
}

#[test]
fn panic_faults_surface_as_server_faults_and_leak_nothing() {
    let (rt, server) = make_runtime(chaos_config());
    let plan = FaultPlan::new(FaultConfig {
        server_panic_every: 5,
        ..FaultConfig::with_seed(1)
    });
    rt.set_fault_plan(Some(Arc::clone(&plan)));
    let app = rt.kernel().create_domain("app");
    let thread = rt.kernel().spawn_thread(&app);
    let binding = rt.import(&app, "Chaos").unwrap();
    let (mut ok, mut faults) = (0, 0);
    for i in 0..20 {
        match binding.call(0, &thread, "Put", &[Value::Int32(i)]) {
            Ok(out) => {
                assert_eq!(out.ret, Some(Value::Int32(i * 2)));
                ok += 1;
            }
            Err(CallError::ServerFault(msg)) => {
                assert!(msg.contains("injected fault"), "unexpected fault: {msg}");
                faults += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!((ok, faults), (16, 4), "every 5th dispatch panicked");
    assert_eq!(
        plan.events()
            .iter()
            .filter(|e| e.kind == FaultKind::ServerPanic)
            .count(),
        4
    );
    assert_no_leaks(&rt, &server, &binding);
}

#[test]
fn mid_call_termination_fails_every_client_without_leaks() {
    // The tentpole scenario: the server's domain dies from *inside* its
    // Nth dispatch while other clients are mid-call. Every client must
    // observe a clean failure (never a hang), and afterwards nothing may
    // leak.
    let (rt, server) = make_runtime(chaos_config());
    let plan = FaultPlan::new(FaultConfig {
        terminate_server_after: 40,
        ..FaultConfig::with_seed(3)
    });
    rt.set_fault_plan(Some(Arc::clone(&plan)));

    let clients: Vec<_> = (0..4)
        .map(|i| rt.kernel().create_domain(format!("app-{i}")))
        .collect();
    let bindings: Vec<_> = clients
        .iter()
        .map(|c| Arc::new(rt.import(c, "Chaos").unwrap()))
        .collect();

    std::thread::scope(|s| {
        for (client, binding) in clients.iter().zip(&bindings) {
            let rt = Arc::clone(&rt);
            let binding = Arc::clone(binding);
            s.spawn(move || {
                let thread = rt.kernel().spawn_thread(client);
                let (mut ok, mut failed) = (0u32, 0u32);
                for i in 0..50 {
                    match binding.call_indexed(0, &thread, 0, &[Value::Int32(i)]) {
                        Ok(_) => ok += 1,
                        // Stub faults happen when termination unmaps the
                        // pairwise A-stack region under a stub that
                        // already passed validation — still a clean,
                        // resource-releasing failure.
                        Err(
                            CallError::CallFailed
                            | CallError::CallAborted
                            | CallError::BindingRevoked
                            | CallError::InvalidBinding(_)
                            | CallError::DomainDead
                            | CallError::Stub(_),
                        ) => failed += 1,
                        Err(other) => panic!("unexpected error under termination: {other}"),
                    }
                }
                assert_eq!(ok + failed, 50, "every call completed, none hung");
                assert!(failed > 0, "termination was observed");
                assert_eq!(thread.call_depth(), 0);
            });
        }
    });

    assert_eq!(
        plan.events()
            .iter()
            .filter(|e| e.kind == FaultKind::ServerTerminated)
            .count(),
        1,
        "the domain is terminated exactly once"
    );
    for binding in &bindings {
        assert_no_leaks(&rt, &server, binding);
        // Revocation sticks: no further calls cross the boundary.
        let thread = rt.kernel().spawn_thread(&clients[0]);
        assert!(matches!(
            binding.call_indexed(0, &thread, 0, &[Value::Int32(0)]),
            Err(CallError::BindingRevoked | CallError::InvalidBinding(_))
        ));
    }
}

#[test]
fn hung_server_calls_abort_on_deadline_and_drain_cleanly() {
    let (rt, server) = make_runtime(chaos_config());
    let plan = FaultPlan::new(FaultConfig {
        server_hang_every: 5,
        ..FaultConfig::with_seed(8)
    });
    rt.set_fault_plan(Some(Arc::clone(&plan)));
    let app = rt.kernel().create_domain("app");
    let client = ResilientClient::import(
        &rt,
        &app,
        "Chaos",
        RecoveryConfig {
            deadline: Some(Duration::from_millis(100)),
            retry: RetryPolicy::none(),
            // Hangs abort in bursts; keep the breaker out of the way so
            // the test isolates the watchdog.
            breaker: BreakerConfig {
                trip_after: u32::MAX,
                cooldown_rejects: 0,
            },
            ..RecoveryConfig::default()
        },
    )
    .unwrap();

    let (mut ok, mut aborted) = (0, 0);
    for i in 0..10 {
        match client.call("Put", &[Value::Int32(i)]) {
            Ok(out) => {
                assert_eq!(out.ret, Some(Value::Int32(i * 2)));
                ok += 1;
            }
            Err(CallError::CallAborted) => aborted += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!((ok, aborted), (8, 2), "dispatches 5 and 10 hung");
    assert_eq!(client.aborted_calls(), 2);

    // Release the hung servers; the captured (abandoned) threads are
    // destroyed on release and the stuck workers come home.
    plan.release_hangs();
    assert_eq!(client.drain(), 2, "both abandoned workers joined");
    assert_no_leaks(&rt, &server, &client.binding());

    // The replacement thread keeps working.
    let out = client.call("Put", &[Value::Int32(21)]).unwrap();
    assert_eq!(out.ret, Some(Value::Int32(42)));
}

#[test]
fn forged_binding_objects_are_rejected_by_the_kernel() {
    let (rt, server) = make_runtime(chaos_config());
    let plan = FaultPlan::new(FaultConfig {
        forge_binding_every: 3,
        ..FaultConfig::with_seed(5)
    });
    rt.set_fault_plan(Some(Arc::clone(&plan)));
    let app = rt.kernel().create_domain("app");
    let thread = rt.kernel().spawn_thread(&app);
    let binding = rt.import(&app, "Chaos").unwrap();
    let (mut ok, mut rejected) = (0, 0);
    for i in 1..=9 {
        match binding.call(0, &thread, "Stat", &[]) {
            Ok(_) => ok += 1,
            Err(CallError::InvalidBinding(_)) => {
                assert_eq!(i % 3, 0, "only every 3rd call presents a forgery");
                rejected += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!((ok, rejected), (6, 3));
    assert_eq!(
        plan.events()
            .iter()
            .filter(|e| e.kind == FaultKind::BindingForged)
            .count(),
        3
    );
    // The genuine Binding Object was never corrupted.
    binding.call(0, &thread, "Stat", &[]).unwrap();
    assert_no_leaks(&rt, &server, &binding);
}

#[test]
fn astack_exhaustion_respects_the_configured_policy() {
    // Under Fail, the injected exhaustion surfaces as NoAStacks and the
    // stolen stacks all return to the queue.
    let (rt, server) = make_runtime(chaos_config());
    let plan = FaultPlan::new(FaultConfig {
        astack_exhaust: true,
        ..FaultConfig::with_seed(6)
    });
    rt.set_fault_plan(Some(plan));
    let app = rt.kernel().create_domain("app");
    let thread = rt.kernel().spawn_thread(&app);
    let binding = rt.import(&app, "Chaos").unwrap();
    for _ in 0..5 {
        assert!(matches!(
            binding.call(0, &thread, "Stat", &[]),
            Err(CallError::NoAStacks)
        ));
    }
    assert_no_leaks(&rt, &server, &binding);

    // Under Grow, the same injection drives the overflow-allocation path
    // instead: calls succeed on freshly grown A-stacks.
    let (rt, server) = make_runtime(RuntimeConfig {
        astack_policy: AStackPolicy::Grow,
        ..chaos_config()
    });
    let plan = FaultPlan::new(FaultConfig {
        astack_exhaust: true,
        ..FaultConfig::with_seed(6)
    });
    rt.set_fault_plan(Some(plan));
    let app = rt.kernel().create_domain("app");
    let thread = rt.kernel().spawn_thread(&app);
    let binding = rt.import(&app, "Chaos").unwrap();
    let before = binding.state().astacks.total_count();
    for _ in 0..3 {
        binding.call(0, &thread, "Stat", &[]).expect("grown call");
    }
    assert!(
        binding.state().astacks.total_count() > before,
        "exhaustion under Grow allocates overflow A-stacks"
    );
    assert_no_leaks(&rt, &server, &binding);
}

#[test]
fn bulk_arena_exhaustion_falls_back_to_per_call_segments_without_leaks() {
    // The injected exhaustion makes every large call miss the bind-time
    // bulk arena and take the slow path: map a fresh pairwise OOB
    // segment, pay `OOB_SEGMENT_COST`, and tear it down on return. Calls
    // must *succeed* throughout (degraded, never broken), and the
    // region table must end exactly where it started — a fallback that
    // leaked its per-call segment would grow it monotonically.
    let (rt, _chaos_server) = make_runtime(chaos_config());
    let bulk_server = rt.kernel().create_domain("bulk-chaos-server");
    rt.export(
        &bulk_server,
        "interface BulkChaos {\n\
         procedure BigIn(data: in var bytes[65536] noninterpreted);\n\
         }",
        vec![Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Var(data) = &args[0] else {
                unreachable!("stubs decoded the declared types")
            };
            assert_eq!(data.len(), 8 * 1024, "the payload crossed intact");
            Ok(Reply::none())
        }) as Handler],
    )
    .unwrap();
    let plan = FaultPlan::new(FaultConfig {
        bulk_exhaust: true,
        ..FaultConfig::with_seed(9)
    });
    rt.set_fault_plan(Some(Arc::clone(&plan)));
    let app = rt.kernel().create_domain("app");
    let thread = rt.kernel().spawn_thread(&app);
    let binding = rt.import(&app, "BulkChaos").unwrap();
    let payload = vec![0x5au8; 8 * 1024];

    // Warm up once so lazily pooled resources (the E-stack) exist before
    // the region table is sampled.
    binding
        .call(0, &thread, "BigIn", &[Value::Var(payload.clone())])
        .expect("warmup");

    let regions_before = rt.kernel().machine().mem().region_count();
    for i in 0..12 {
        binding
            .call(0, &thread, "BigIn", &[Value::Var(payload.clone())])
            .unwrap_or_else(|e| panic!("fallback call {i} must still succeed: {e}"));
    }
    let regions_after = rt.kernel().machine().mem().region_count();

    assert_eq!(
        regions_before, regions_after,
        "every per-call OOB segment was unmapped and freed"
    );
    assert_eq!(
        binding.state().stats.bulk_fallbacks(),
        13,
        "every call (warmup included) took the per-call fallback"
    );
    assert_eq!(
        plan.events()
            .iter()
            .filter(|e| e.kind == FaultKind::BulkArenaExhausted)
            .count(),
        13,
        "each fallback traces back to an injected exhaustion event"
    );
    assert_no_leaks(&rt, &bulk_server, &binding);

    // Lifting the fault returns calls to the arena: the fallback counter
    // stops moving.
    rt.set_fault_plan(None);
    binding
        .call(0, &thread, "BigIn", &[Value::Var(payload)])
        .expect("arena call after recovery");
    assert_eq!(binding.state().stats.bulk_fallbacks(), 13);
    assert_no_leaks(&rt, &bulk_server, &binding);
}

#[test]
fn packet_faults_on_the_remote_path_are_deterministic() {
    let run = || {
        let client_machine = {
            let kernel = Kernel::new(Machine::new(2, CostModel::cvax_firefly()));
            LrpcRuntime::with_config(kernel, chaos_config())
        };
        let server_machine = {
            let kernel = Kernel::new(Machine::new(1, CostModel::cvax_firefly()));
            LrpcRuntime::with_config(kernel, chaos_config())
        };
        let net = msgrpc::Internet::new();
        net.attach("a", Arc::clone(&client_machine));
        net.attach("b", Arc::clone(&server_machine));
        let sd = server_machine.kernel().create_domain("svc");
        server_machine
            .export(&sd, CHAOS_IDL, chaos_handlers())
            .unwrap();
        client_machine.set_remote_transport(Arc::clone(&net) as Arc<dyn lrpc::RemoteTransport>);

        let plan = FaultPlan::new(FaultConfig {
            packet_loss: 0.3,
            packet_dup: 0.1,
            packet_delay_prob: 0.2,
            packet_delay_us: 100,
            ..FaultConfig::with_seed(0xBEEF)
        });
        net.set_fault_plan(Some(Arc::clone(&plan)));

        let app = client_machine.kernel().create_domain("app");
        let thread = client_machine.kernel().spawn_thread(&app);
        let binding = client_machine.import_remote(&app, "Chaos").unwrap();
        let mut outcomes = Vec::new();
        for i in 0..100 {
            match binding.call_indexed(0, &thread, 0, &[Value::Int32(i)]) {
                Ok(out) => outcomes.push(format!("ok:{:?}", out.ret)),
                Err(e) => outcomes.push(format!("err:{e}")),
            }
        }
        (plan.digest(), outcomes, plan.events())
    };
    let (d1, o1, e1) = run();
    let (d2, o2, _) = run();
    assert_eq!(d1, d2, "packet schedules must be bit-reproducible");
    assert_eq!(o1, o2, "client-observed outcomes must match");
    assert!(
        o1.iter().any(|o| o.starts_with("err:network failure")),
        "some packets were lost for good"
    );
    assert!(
        o1.iter().any(|o| o.starts_with("ok:")),
        "most packets got through"
    );
    assert!(e1
        .iter()
        .any(|e| matches!(e.kind, FaultKind::PacketRetransmitted { .. })));
    assert!(e1.iter().any(|e| e.kind == FaultKind::PacketLost));
}

#[test]
fn circuit_breaker_trips_and_recovers_through_reimport() {
    let (rt, server) = make_runtime(chaos_config());
    let app = rt.kernel().create_domain("app");
    let client = ResilientClient::import(
        &rt,
        &app,
        "Chaos",
        RecoveryConfig {
            retry: RetryPolicy::none(),
            breaker: BreakerConfig {
                trip_after: 2,
                cooldown_rejects: 2,
            },
            ..RecoveryConfig::default()
        },
    )
    .unwrap();
    client.call("Stat", &[]).expect("healthy call");
    assert_eq!(client.breaker_state(), BreakerState::Closed);

    // The server dies; consecutive revocation failures trip the breaker.
    // (Depending on how far teardown has progressed the kernel reports
    // either a revoked or an already-destroyed Binding Object; both
    // count.)
    rt.terminate_domain(&server);
    for _ in 0..2 {
        assert!(matches!(
            client.call("Stat", &[]),
            Err(CallError::BindingRevoked | CallError::InvalidBinding(_))
        ));
    }
    assert_eq!(client.breaker_state(), BreakerState::Open);
    // While open, calls are rejected without touching the binding.
    for _ in 0..2 {
        assert!(matches!(
            client.call("Stat", &[]),
            Err(CallError::CircuitOpen)
        ));
    }

    // The server restarts under a fresh domain and re-exports; the
    // half-open probe re-imports through the name server and recovers.
    let reborn = rt.kernel().create_domain("chaos-server-2");
    rt.export(&reborn, CHAOS_IDL, chaos_handlers()).unwrap();
    let out = client.call("Stat", &[]).expect("half-open probe");
    assert_eq!(out.ret, Some(Value::Int32(7)));
    assert_eq!(client.breaker_state(), BreakerState::Closed);
    assert_no_leaks(&rt, &reborn, &client.binding());
}

#[test]
fn client_degrades_to_the_remote_transport_when_local_server_dies() {
    let (rt, server) = make_runtime(chaos_config());
    let backup_machine = {
        let kernel = Kernel::new(Machine::new(1, CostModel::cvax_firefly()));
        LrpcRuntime::with_config(kernel, chaos_config())
    };
    let net = msgrpc::Internet::new();
    net.attach("local", Arc::clone(&rt));
    net.attach("backup", Arc::clone(&backup_machine));
    let bd = backup_machine.kernel().create_domain("chaos-backup");
    backup_machine
        .export(&bd, CHAOS_IDL, chaos_handlers())
        .unwrap();
    rt.set_remote_transport(Arc::clone(&net) as Arc<dyn lrpc::RemoteTransport>);

    let app = rt.kernel().create_domain("app");
    let client = ResilientClient::import(
        &rt,
        &app,
        "Chaos",
        RecoveryConfig {
            retry: RetryPolicy::none(),
            fallback_remote: true,
            ..RecoveryConfig::default()
        },
    )
    .unwrap();
    client.call("Get", &[Value::Int32(1)]).expect("local call");
    assert!(!client.is_degraded());

    // Local server dies; the very next call falls through to the
    // conventional-RPC path of Section 5.1 and still succeeds.
    rt.terminate_domain(&server);
    let out = client.call("Get", &[Value::Int32(20)]).expect("degraded");
    assert_eq!(out.ret, Some(Value::Int32(21)));
    assert!(client.is_degraded());
    assert!(
        client
            .error_log()
            .iter()
            .any(|e| e.contains("revoked") || e.contains("invalid binding")),
        "the failure that triggered degradation is logged: {:?}",
        client.error_log()
    );
    // Degraded calls keep flowing.
    let out = client.call("Stat", &[]).expect("degraded follow-up");
    assert_eq!(out.ret, Some(Value::Int32(7)));
    assert_eq!(rt.kernel().snapshot().threads_in_calls, 0);
}

#[test]
fn idempotent_retry_recovers_from_transient_server_faults() {
    let (rt, server) = make_runtime(chaos_config());
    let plan = FaultPlan::new(FaultConfig {
        server_panic_every: 2,
        ..FaultConfig::with_seed(2)
    });
    rt.set_fault_plan(Some(plan));
    let app = rt.kernel().create_domain("app");
    let client = ResilientClient::import(
        &rt,
        &app,
        "Chaos",
        RecoveryConfig {
            retry: RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
            jitter_seed: 77,
            ..RecoveryConfig::default()
        },
    )
    .unwrap();

    // Every 2nd dispatch panics. `Get` is idempotent: each faulted
    // attempt is retried (the retry's dispatch is odd, so it succeeds) —
    // the caller never sees the fault.
    for i in 0..10 {
        let out = client.call("Get", &[Value::Int32(i)]).expect("retried");
        assert_eq!(out.ret, Some(Value::Int32(i + 1)));
    }
    // `Put` is not idempotent: the same fault schedule surfaces.
    let mut faults = 0;
    for i in 0..10 {
        if let Err(e) = client.call("Put", &[Value::Int32(i)]) {
            assert!(matches!(e, CallError::ServerFault(_)), "got {e}");
            faults += 1;
        }
    }
    assert!(faults > 0, "non-idempotent calls must not be retried");
    let log = client.error_log();
    assert!(
        log.iter()
            .all(|l| !l.starts_with("Put:") || l.contains("server fault")),
        "every Put failure is the injected server fault: {log:?}"
    );
    assert!(
        log.iter().any(|l| l.starts_with("Get:")),
        "Get faults were observed (then retried): {log:?}"
    );
    assert_no_leaks(&rt, &server, &client.binding());
}
