//! Umbrella crate for the LRPC reproduction, plus a small assembly
//! facade.
//!
//! The workspace crates are re-exported so downstream users can depend on
//! one crate; [`Simulation`] bundles the usual machine + kernel + runtime
//! boot sequence.

pub use firefly;
pub use idl;
pub use kernel;
pub use lrpc;
pub use msgrpc;
pub use workload;

use std::sync::Arc;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use kernel::kernel::Kernel;
use lrpc::{LrpcRuntime, RuntimeConfig};

/// A booted simulated machine with a kernel and an LRPC runtime.
///
/// # Examples
///
/// ```
/// use idl::wire::Value;
/// use lrpc::{Handler, Reply, ServerCtx};
/// use lrpc_suite::Simulation;
///
/// let sim = Simulation::cvax_firefly();
/// let server = sim.rt.kernel().create_domain("svc");
/// sim.rt
///     .export(
///         &server,
///         "interface Svc { procedure Double(x: int32) -> int32; }",
///         vec![Box::new(|_: &ServerCtx, args: &[Value]| {
///             let Value::Int32(x) = args[0] else { unreachable!() };
///             Ok(Reply::value(Value::Int32(2 * x)))
///         }) as Handler],
///     )
///     .unwrap();
/// let client = sim.rt.kernel().create_domain("app");
/// let thread = sim.rt.kernel().spawn_thread(&client);
/// let binding = sim.rt.import(&client, "Svc").unwrap();
/// let out = binding.call(0, &thread, "Double", &[Value::Int32(21)]).unwrap();
/// assert_eq!(out.ret, Some(Value::Int32(42)));
/// ```
pub struct Simulation {
    /// The simulated machine.
    pub machine: Arc<Machine>,
    /// The kernel booted on it.
    pub kernel: Arc<Kernel>,
    /// The LRPC runtime.
    pub rt: Arc<LrpcRuntime>,
}

impl Simulation {
    /// Boots a machine with the given CPU count, cost model and runtime
    /// configuration.
    pub fn new(n_cpus: usize, cost: CostModel, config: RuntimeConfig) -> Simulation {
        let machine = Machine::new(n_cpus, cost);
        let kernel = Kernel::new(Arc::clone(&machine));
        let rt = LrpcRuntime::with_config(Arc::clone(&kernel), config);
        Simulation {
            machine,
            kernel,
            rt,
        }
    }

    /// The paper's four-CPU C-VAX Firefly with default configuration.
    pub fn cvax_firefly() -> Simulation {
        Simulation::new(4, CostModel::cvax_firefly(), RuntimeConfig::default())
    }

    /// A single-CPU C-VAX with domain caching off — the configuration
    /// behind the paper's serial measurements.
    pub fn cvax_serial() -> Simulation {
        Simulation::new(
            1,
            CostModel::cvax_firefly(),
            RuntimeConfig {
                domain_caching: false,
                ..RuntimeConfig::default()
            },
        )
    }

    /// The five-CPU MicroVAX II Firefly.
    pub fn microvax_ii_firefly() -> Simulation {
        Simulation::new(
            5,
            CostModel::microvax_ii_firefly(),
            RuntimeConfig::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_boots_consistent_components() {
        let sim = Simulation::cvax_firefly();
        assert_eq!(sim.machine.num_cpus(), 4);
        assert!(Arc::ptr_eq(sim.rt.kernel(), &sim.kernel));
        assert!(Arc::ptr_eq(sim.kernel.machine(), &sim.machine));
        assert!(sim.rt.config().domain_caching);
    }

    #[test]
    fn serial_preset_disables_caching() {
        let sim = Simulation::cvax_serial();
        assert_eq!(sim.machine.num_cpus(), 1);
        assert!(!sim.rt.config().domain_caching);
    }

    #[test]
    fn microvax_preset_has_five_cpus() {
        let sim = Simulation::microvax_ii_firefly();
        assert_eq!(sim.machine.num_cpus(), 5);
        assert_eq!(sim.machine.cost().name, "MicroVAX II Firefly");
    }
}
