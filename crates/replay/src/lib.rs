//! Whole-run deterministic record/replay.
//!
//! The simulator is deterministic by construction *given* the outcomes of
//! a small set of decision points: fault-plan draws, scheduler picks and
//! idle-CPU claims, lock-free A-stack/E-stack and bulk-arena allocation
//! results, and virtual-clock advances. This crate captures those
//! outcomes, in per-site order, into a compact append-only binary log
//! ([`RecordLog`]), and replays a workload with every decision point
//! answered from the log instead of computed live — asserting divergence
//! at the first mismatch ([`ReplayDivergence`]: site, sequence number,
//! expected vs actual).
//!
//! The design follows rr ("Lightweight User-Space Record And Replay"):
//! record only what is nondeterministic, re-execute everything else. Three
//! modes thread through the runtime ([`Mode`]):
//!
//! * **Live** — no session attached; every instrumentation point is a
//!   no-op behind an empty `OnceLock`, so the steady call path pays
//!   nothing (the lock-free tally tests keep this honest).
//! * **Record** — each decision appends one [`Event`] to its site's
//!   stream.
//! * **Replay** — each decision pops the next event from its site's
//!   stream; *resolved* decisions (fault draws) return the logged
//!   outcome, *checked* decisions (clock advances, allocation results)
//!   compare the recomputed outcome against the log. The first mismatch
//!   latches a [`ReplayDivergence`]; after that the run falls back to
//!   live decisions so it can complete and report, rather than cascade.
//!
//! Ordering is per-stream (per decision site), not global: a total order
//! over all sites cannot be replayed faithfully once real threads race,
//! but each site's own sequence is exactly reproducible — and that is
//! what the byte-equality oracle needs.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Event kinds. The kind tags what a payload means; streams may carry
/// mixed kinds (the fault stream interleaves decision types in call
/// order).
pub mod kind {
    /// One server-dispatch fault decision (packed [`super::Event`]
    /// payload: `delay_us << 3 | terminate << 2 | hang << 1 | panic`).
    pub const FAULT_DISPATCH: u16 = 1;
    /// One packet-transmission fate (packed payload:
    /// `delay_us << 8 | dup << 7 | lost << 6 | retransmissions`).
    pub const FAULT_PACKET: u16 = 2;
    /// Forged-binding decision (payload: 0 or 1).
    pub const FAULT_FORGE: u16 = 3;
    /// A-stack exhaustion injection decision (payload: 0 or 1).
    pub const FAULT_EXHAUST_ASTACKS: u16 = 4;
    /// Bulk-arena exhaustion injection decision (payload: 0 or 1).
    pub const FAULT_EXHAUST_BULK: u16 = 5;
    /// Virtual-clock charge on one CPU (payload: nanoseconds added).
    pub const CLOCK_CHARGE: u16 = 6;
    /// Virtual-clock floor advance on one CPU (payload: target ns).
    pub const CLOCK_ADVANCE: u16 = 7;
    /// Idle-CPU claim outcome (payload: claimed CPU index + 1, or 0).
    pub const IDLE_CLAIM: u16 = 8;
    /// Scheduler idle-processor assignment (payload:
    /// `domain_id << 16 | cpu_index`).
    pub const SCHED_ASSIGN: u16 = 9;
    /// A-stack acquire outcome (payload: `(index + 1) << 1 | overflow`
    /// on success, 0 on failure).
    pub const ASTACK_ACQUIRE: u16 = 10;
    /// Bulk-arena chunk acquire outcome (payload: chunk index + 1, or 0
    /// for the out-of-band fallback).
    pub const BULK_ACQUIRE: u16 = 11;
    /// E-stack lazy-association outcome (payload:
    /// `astack_key << 1 | fresh_allocation`).
    pub const ESTACK_GET: u16 = 12;
    /// Call-ring descriptor enqueue (payload: `slot << 32 | proc_index`).
    pub const RING_ENQUEUE: u16 = 13;
    /// Doorbell ring outcome (payload: 0 = coalesced into a pending
    /// doorbell, 1 = rung, 2 = lost and re-rung).
    pub const RING_DOORBELL: u16 = 14;
    /// Call-ring descriptor drain on the server side (payload:
    /// `slot << 32 | proc_index`).
    pub const RING_DRAIN: u16 = 15;
    /// Ring-full fault injection decision (payload: 0 or 1).
    pub const FAULT_RING_FULL: u16 = 16;
    /// Doorbell-lost fault injection decision (payload: 0 or 1).
    pub const FAULT_DOORBELL_LOST: u16 = 17;
    /// Adaptive A-stack sizing decision applied to one interface (payload:
    /// `astacks << 32 | ring_slots`).
    pub const ADAPT: u16 = 18;

    /// Human name for a kind code (for divergence reports).
    pub fn name(kind: u16) -> &'static str {
        match kind {
            FAULT_DISPATCH => "fault-dispatch",
            FAULT_PACKET => "fault-packet",
            FAULT_FORGE => "fault-forge",
            FAULT_EXHAUST_ASTACKS => "fault-exhaust-astacks",
            FAULT_EXHAUST_BULK => "fault-exhaust-bulk",
            CLOCK_CHARGE => "clock-charge",
            CLOCK_ADVANCE => "clock-advance",
            IDLE_CLAIM => "idle-claim",
            SCHED_ASSIGN => "sched-assign",
            ASTACK_ACQUIRE => "astack-acquire",
            BULK_ACQUIRE => "bulk-acquire",
            ESTACK_GET => "estack-get",
            RING_ENQUEUE => "ring-enqueue",
            RING_DOORBELL => "ring-doorbell",
            RING_DRAIN => "ring-drain",
            FAULT_RING_FULL => "fault-ring-full",
            FAULT_DOORBELL_LOST => "fault-doorbell-lost",
            ADAPT => "adapt",
            _ => "unknown",
        }
    }
}

/// Record/replay mode, threaded through runtime construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// No recording, no replaying; instrumentation points are no-ops.
    Live,
    /// Every nondeterministic decision appends an event to its stream.
    Record,
    /// Every decision point is answered from (or checked against) the
    /// log; the first mismatch latches a [`ReplayDivergence`].
    Replay,
}

/// One recorded decision: a kind tag plus a packed payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// What kind of decision this is (see [`kind`]).
    pub kind: u16,
    /// Decision outcome, packed per-kind.
    pub payload: u64,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", kind::name(self.kind), self.payload)
    }
}

/// The first point where a replayed run stopped matching its log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// Decision site (stream name), e.g. `clock:cpu0` or `fault:dispatch`.
    pub site: String,
    /// 0-based sequence number within that site's stream.
    pub seq: u64,
    /// What the log said should happen here; `None` means the stream was
    /// exhausted (the replayed run made more decisions than the recorded
    /// one).
    pub expected: Option<Event>,
    /// What the replayed run actually decided or requested.
    pub got: Event,
}

impl fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.expected {
            Some(e) => write!(
                f,
                "replay diverged at {}#{}: expected {}, got {}",
                self.site, self.seq, e, self.got
            ),
            None => write!(
                f,
                "replay diverged at {}#{}: log exhausted, got {}",
                self.site, self.seq, self.got
            ),
        }
    }
}

impl std::error::Error for ReplayDivergence {}

/// One decision site's event sequence.
struct Stream {
    name: String,
    /// Events appended in record mode.
    recorded: Mutex<Vec<Event>>,
    /// Events to answer from in replay mode.
    script: Vec<Event>,
    /// Next script position to consume in replay mode.
    cursor: AtomicUsize,
}

/// Pre-sized append buffer so the first few thousand recorded events
/// never reallocate mid-run (the recording-overhead gate counts every
/// nanosecond on the hot path).
const RECORD_RESERVE: usize = 4096;

/// A record or replay session, shared by `Arc` across every instrumented
/// layer. Streams are created on first use and addressed by site name.
pub struct Session {
    mode: Mode,
    streams: Mutex<BTreeMap<String, Arc<Stream>>>,
    meta: Mutex<BTreeMap<String, String>>,
    diverged: AtomicBool,
    divergence: Mutex<Option<ReplayDivergence>>,
}

impl Session {
    fn with_mode(mode: Mode) -> Arc<Session> {
        Arc::new(Session {
            mode,
            streams: Mutex::new(BTreeMap::new()),
            meta: Mutex::new(BTreeMap::new()),
            diverged: AtomicBool::new(false),
            divergence: Mutex::new(None),
        })
    }

    /// A session in [`Mode::Live`]: attaching it anywhere is a no-op.
    pub fn live() -> Arc<Session> {
        Session::with_mode(Mode::Live)
    }

    /// A fresh recording session.
    pub fn recorder() -> Arc<Session> {
        Session::with_mode(Mode::Record)
    }

    /// A replay session answering decisions from `log`.
    pub fn replayer(log: &RecordLog) -> Arc<Session> {
        let session = Session::with_mode(Mode::Replay);
        {
            let mut streams = session.streams.lock();
            for (name, events) in &log.streams {
                streams.insert(
                    name.clone(),
                    Arc::new(Stream {
                        name: name.clone(),
                        recorded: Mutex::new(Vec::new()),
                        script: events.clone(),
                        cursor: AtomicUsize::new(0),
                    }),
                );
            }
        }
        *session.meta.lock() = log.meta.clone();
        session
    }

    /// This session's mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// True for [`Mode::Live`] sessions (instrumentation should skip
    /// attaching handles entirely).
    pub fn is_live(&self) -> bool {
        self.mode == Mode::Live
    }

    /// A handle on the named decision stream, creating it if new. Cache
    /// the handle — this takes the session's stream-map lock.
    pub fn stream(self: &Arc<Session>, name: &str) -> Handle {
        let stream = {
            let mut streams = self.streams.lock();
            match streams.get(name) {
                Some(s) => Arc::clone(s),
                None => {
                    let s = Arc::new(Stream {
                        name: name.to_string(),
                        recorded: Mutex::new(match self.mode {
                            Mode::Record => Vec::with_capacity(RECORD_RESERVE),
                            _ => Vec::new(),
                        }),
                        script: Vec::new(),
                        cursor: AtomicUsize::new(0),
                    });
                    streams.insert(name.to_string(), Arc::clone(&s));
                    s
                }
            }
        };
        Handle {
            mode: self.mode,
            session: Arc::clone(self),
            stream,
        }
    }

    /// Sets a metadata key (scenario parameters, artifact digests).
    pub fn set_meta(&self, key: &str, value: &str) {
        self.meta.lock().insert(key.to_string(), value.to_string());
    }

    /// Reads a metadata key.
    pub fn meta(&self, key: &str) -> Option<String> {
        self.meta.lock().get(key).cloned()
    }

    /// Latches the first divergence; later reports are dropped.
    fn latch(&self, d: ReplayDivergence) {
        if self
            .diverged
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            *self.divergence.lock() = Some(d);
        }
    }

    /// True once any decision point has mismatched the log.
    pub fn has_diverged(&self) -> bool {
        self.diverged.load(Ordering::Acquire)
    }

    /// The first divergence, if any.
    pub fn divergence(&self) -> Option<ReplayDivergence> {
        self.divergence.lock().clone()
    }

    /// Total events recorded (record mode) or consumed (replay mode).
    pub fn event_count(&self) -> usize {
        let streams = self.streams.lock();
        match self.mode {
            Mode::Replay => streams
                .values()
                .map(|s| s.cursor.load(Ordering::Relaxed).min(s.script.len()))
                .sum(),
            _ => streams.values().map(|s| s.recorded.lock().len()).sum(),
        }
    }

    /// Replay mode: events left unconsumed across all streams (a replayed
    /// run that made *fewer* decisions than the recording shows up here,
    /// not as a divergence).
    pub fn unconsumed(&self) -> usize {
        self.streams
            .lock()
            .values()
            .map(|s| {
                s.script
                    .len()
                    .saturating_sub(s.cursor.load(Ordering::Relaxed))
            })
            .sum()
    }

    /// Record mode: packages everything recorded so far into a log.
    pub fn finish(&self) -> RecordLog {
        let streams = self
            .streams
            .lock()
            .iter()
            .map(|(name, s)| (name.clone(), s.recorded.lock().clone()))
            .collect();
        RecordLog {
            version: FORMAT_VERSION,
            meta: self.meta.lock().clone(),
            streams,
        }
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("mode", &self.mode)
            .field("streams", &self.streams.lock().len())
            .field("events", &self.event_count())
            .field("diverged", &self.has_diverged())
            .finish()
    }
}

/// A cheap, cloneable handle on one decision stream. Instrumented
/// components cache one per site (typically in a `OnceLock` that stays
/// empty in live mode).
#[derive(Clone)]
pub struct Handle {
    /// Copy of the session's mode, so the per-event dispatch below never
    /// dereferences the session on the hot path.
    mode: Mode,
    session: Arc<Session>,
    stream: Arc<Stream>,
}

impl Handle {
    /// The owning session's mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The owning session.
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// A *checked* decision: in record mode the outcome is appended; in
    /// replay mode it is compared against the log and a mismatch latches
    /// the session's divergence. Live mode: no-op.
    #[inline]
    pub fn emit(&self, kind: u16, payload: u64) {
        match self.mode {
            Mode::Live => {}
            Mode::Record => self.stream.recorded.lock().push(Event { kind, payload }),
            Mode::Replay => {
                if self.session.has_diverged() {
                    return;
                }
                let got = Event { kind, payload };
                let i = self.stream.cursor.fetch_add(1, Ordering::AcqRel);
                match self.stream.script.get(i) {
                    Some(e) if *e == got => {}
                    other => self.session.latch(ReplayDivergence {
                        site: self.stream.name.clone(),
                        seq: i as u64,
                        expected: other.copied(),
                        got,
                    }),
                }
            }
        }
    }

    /// A *resolved* decision: in live mode computes `live()`; in record
    /// mode computes `live()` and appends the outcome; in replay mode
    /// returns the logged payload instead of computing (falling back to
    /// `live()` only after a kind mismatch, which latches divergence).
    #[inline]
    pub fn resolve(&self, kind: u16, live: impl FnOnce() -> u64) -> u64 {
        match self.mode {
            Mode::Live => live(),
            Mode::Record => {
                let payload = live();
                self.stream.recorded.lock().push(Event { kind, payload });
                payload
            }
            Mode::Replay => match self.expect(kind) {
                Some(payload) => payload,
                None => live(),
            },
        }
    }

    /// Replay mode: consumes the next event, which must have this kind;
    /// returns its payload, or `None` after latching a divergence (kind
    /// mismatch or exhausted stream). Returns `None` in every other mode
    /// and after a prior divergence.
    pub fn expect(&self, kind: u16) -> Option<u64> {
        if self.mode != Mode::Replay || self.session.has_diverged() {
            return None;
        }
        let i = self.stream.cursor.fetch_add(1, Ordering::AcqRel);
        match self.stream.script.get(i) {
            Some(e) if e.kind == kind => Some(e.payload),
            other => {
                self.session.latch(ReplayDivergence {
                    site: self.stream.name.clone(),
                    seq: i as u64,
                    expected: other.copied(),
                    got: Event { kind, payload: 0 },
                });
                None
            }
        }
    }
}

impl fmt::Debug for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Handle")
            .field("stream", &self.stream.name)
            .field("mode", &self.session.mode)
            .finish()
    }
}

/// Current log format version, written into every header.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"RLOG";

/// A structured log-parsing failure (decode never panics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogError {
    /// The file does not start with the `RLOG` magic.
    BadMagic,
    /// The header version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The log ended mid-field at the given byte offset.
    Truncated(usize),
    /// A field held an impossible value (e.g. a non-UTF-8 name).
    Malformed(&'static str),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::BadMagic => write!(f, "not a replay log (bad magic)"),
            LogError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported log version {v} (this build reads <= {FORMAT_VERSION})"
                )
            }
            LogError::Truncated(at) => write!(f, "log truncated at byte {at}"),
            LogError::Malformed(what) => write!(f, "malformed log field: {what}"),
        }
    }
}

impl std::error::Error for LogError {}

/// A compact append-only binary log of every recorded decision stream,
/// with a versioned header and a key-value metadata block.
///
/// Layout (all integers LEB128 varints unless noted):
///
/// ```text
/// "RLOG"  magic, 4 bytes
/// u32 LE  format version
/// varint  meta entry count, then per entry: key, value (varint len + bytes)
/// varint  stream count, then per stream:
///         name (varint len + bytes), varint event count,
///         then per event: varint kind, varint payload
/// ```
///
/// There is deliberately no whole-file checksum: a corrupted payload byte
/// decodes fine and then surfaces at replay as a [`ReplayDivergence`]
/// naming the exact site and sequence number — which is more useful than
/// "checksum mismatch".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordLog {
    /// Format version this log was written with.
    pub version: u32,
    /// Scenario parameters and artifact digests, for the replay driver.
    pub meta: BTreeMap<String, String>,
    /// Per-site decision sequences, keyed by stream name.
    pub streams: BTreeMap<String, Vec<Event>>,
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LogError> {
        if self.pos + n > self.bytes.len() {
            return Err(LogError::Truncated(self.bytes.len()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, LogError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or(LogError::Truncated(self.bytes.len()))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(LogError::Malformed("varint longer than 64 bits"));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn string(&mut self) -> Result<String, LogError> {
        let len = self.varint()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| LogError::Malformed("non-UTF-8 string"))
    }
}

impl RecordLog {
    /// Encodes the log into its binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        put_varint(&mut out, self.meta.len() as u64);
        for (k, v) in &self.meta {
            put_bytes(&mut out, k.as_bytes());
            put_bytes(&mut out, v.as_bytes());
        }
        put_varint(&mut out, self.streams.len() as u64);
        for (name, events) in &self.streams {
            put_bytes(&mut out, name.as_bytes());
            put_varint(&mut out, events.len() as u64);
            for e in events {
                put_varint(&mut out, u64::from(e.kind));
                put_varint(&mut out, e.payload);
            }
        }
        out
    }

    /// Decodes a binary log; returns a structured [`LogError`] (never
    /// panics) on anything the format forbids.
    pub fn decode(bytes: &[u8]) -> Result<RecordLog, LogError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(LogError::BadMagic);
        }
        let version = u32::from_le_bytes(
            r.take(4)?
                .try_into()
                .expect("take(4) returned exactly 4 bytes"),
        );
        if version == 0 || version > FORMAT_VERSION {
            return Err(LogError::UnsupportedVersion(version));
        }
        let mut meta = BTreeMap::new();
        let n_meta = r.varint()?;
        for _ in 0..n_meta {
            let k = r.string()?;
            let v = r.string()?;
            meta.insert(k, v);
        }
        let mut streams = BTreeMap::new();
        let n_streams = r.varint()?;
        for _ in 0..n_streams {
            let name = r.string()?;
            let n_events = r.varint()?;
            let mut events = Vec::with_capacity(n_events.min(1 << 20) as usize);
            for _ in 0..n_events {
                let kind = r.varint()?;
                if kind > u64::from(u16::MAX) {
                    return Err(LogError::Malformed("event kind exceeds u16"));
                }
                let payload = r.varint()?;
                events.push(Event {
                    kind: kind as u16,
                    payload,
                });
            }
            streams.insert(name, events);
        }
        Ok(RecordLog {
            version,
            meta,
            streams,
        })
    }

    /// Total events across all streams.
    pub fn total_events(&self) -> usize {
        self.streams.values().map(Vec::len).sum()
    }

    /// Writes the encoded log to a file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Reads and decodes a log file.
    pub fn read_from(path: &std::path::Path) -> std::io::Result<Result<RecordLog, LogError>> {
        Ok(RecordLog::decode(&std::fs::read(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> RecordLog {
        let session = Session::recorder();
        session.set_meta("scenario", "unit");
        session.set_meta("seed", "42");
        let clock = session.stream("clock:cpu0");
        let fault = session.stream("fault:dispatch");
        clock.emit(kind::CLOCK_CHARGE, 125);
        clock.emit(kind::CLOCK_CHARGE, 250);
        clock.emit(kind::CLOCK_ADVANCE, 9000);
        assert_eq!(fault.resolve(kind::FAULT_DISPATCH, || 7), 7);
        session.finish()
    }

    #[test]
    fn encode_decode_round_trips() {
        let log = sample_log();
        let decoded = RecordLog::decode(&log.encode()).expect("decodes");
        assert_eq!(decoded, log);
        assert_eq!(decoded.version, FORMAT_VERSION);
        assert_eq!(decoded.meta["seed"], "42");
        assert_eq!(decoded.total_events(), 4);
    }

    #[test]
    fn live_session_records_nothing() {
        let session = Session::live();
        let h = session.stream("clock:cpu0");
        h.emit(kind::CLOCK_CHARGE, 1);
        assert_eq!(h.resolve(kind::FAULT_DISPATCH, || 3), 3);
        assert_eq!(session.finish().total_events(), 0);
    }

    #[test]
    fn replay_answers_resolved_decisions_from_log() {
        let log = sample_log();
        let session = Session::replayer(&log);
        let fault = session.stream("fault:dispatch");
        // The live closure must not run: the log answers.
        assert_eq!(
            fault.resolve(kind::FAULT_DISPATCH, || panic!("live ran")),
            7
        );
        assert!(session.divergence().is_none());
        assert_eq!(session.meta("scenario").as_deref(), Some("unit"));
    }

    #[test]
    fn replay_checks_emitted_decisions() {
        let log = sample_log();
        let session = Session::replayer(&log);
        let clock = session.stream("clock:cpu0");
        clock.emit(kind::CLOCK_CHARGE, 125);
        clock.emit(kind::CLOCK_CHARGE, 999); // recorded 250
        clock.emit(kind::CLOCK_ADVANCE, 9000); // after divergence: ignored
        let d = session.divergence().expect("diverged");
        assert_eq!(d.site, "clock:cpu0");
        assert_eq!(d.seq, 1);
        assert_eq!(
            d.expected,
            Some(Event {
                kind: kind::CLOCK_CHARGE,
                payload: 250
            })
        );
        assert_eq!(d.got.payload, 999);
        assert!(d.to_string().contains("clock:cpu0#1"));
    }

    #[test]
    fn replay_diverges_on_exhausted_stream() {
        let log = sample_log();
        let session = Session::replayer(&log);
        let fault = session.stream("fault:dispatch");
        assert_eq!(fault.expect(kind::FAULT_DISPATCH), Some(7));
        assert_eq!(fault.expect(kind::FAULT_DISPATCH), None);
        let d = session.divergence().expect("exhausted stream diverges");
        assert_eq!(d.seq, 1);
        assert!(d.expected.is_none());
        assert!(d.to_string().contains("log exhausted"));
    }

    #[test]
    fn replay_diverges_on_kind_mismatch_then_falls_back_live() {
        let log = sample_log();
        let session = Session::replayer(&log);
        let fault = session.stream("fault:dispatch");
        assert_eq!(fault.resolve(kind::FAULT_FORGE, || 1), 1, "live fallback");
        let d = session.divergence().expect("kind mismatch diverges");
        assert_eq!(d.site, "fault:dispatch");
        assert_eq!(d.got.kind, kind::FAULT_FORGE);
    }

    #[test]
    fn unconsumed_counts_leftovers() {
        let log = sample_log();
        let session = Session::replayer(&log);
        let clock = session.stream("clock:cpu0");
        clock.emit(kind::CLOCK_CHARGE, 125);
        assert_eq!(session.unconsumed(), 3);
        assert!(session.divergence().is_none());
    }

    #[test]
    fn decode_rejects_garbage_with_structured_errors() {
        assert_eq!(RecordLog::decode(b"np"), Err(LogError::Truncated(2)));
        assert_eq!(RecordLog::decode(b"nope"), Err(LogError::BadMagic));
        assert_eq!(
            RecordLog::decode(b"XLOG\x01\x00\x00\x00\x00\x00"),
            Err(LogError::BadMagic)
        );
        assert_eq!(
            RecordLog::decode(b"RLOG\xff\x00\x00\x00\x00\x00"),
            Err(LogError::UnsupportedVersion(255))
        );
        let mut truncated = sample_log().encode();
        truncated.truncate(truncated.len() - 1);
        assert!(matches!(
            RecordLog::decode(&truncated),
            Err(LogError::Truncated(_))
        ));
    }

    #[test]
    fn varints_round_trip_large_payloads() {
        let mut log = sample_log();
        log.streams.insert(
            "big".to_string(),
            vec![Event {
                kind: kind::CLOCK_ADVANCE,
                payload: u64::MAX,
            }],
        );
        let decoded = RecordLog::decode(&log.encode()).expect("decodes");
        assert_eq!(decoded.streams["big"][0].payload, u64::MAX);
    }
}
