//! In-tree stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the `criterion` API its benches use. There is no
//! statistics engine: each benchmark is warmed up briefly, timed over a
//! fixed batch, and the mean per-iteration time is printed. The point is
//! that `cargo bench` compiles and runs and reports usable numbers, not
//! that confidence intervals match upstream.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Times one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Brief warm-up so first-touch costs don't dominate.
        for _ in 0..self.iters.min(3) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (criterion's sample count is
    /// reused as the batch size here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.samples,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.samples,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        let mut line = format!(
            "{}/{}: {:>12.1} ns/iter ({} iters)",
            self.name, id.id, per_iter, b.iters
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if count > 0 && per_iter > 0.0 {
                let rate = count as f64 / (per_iter / 1e9);
                line.push_str(&format!(", {rate:>14.0} {unit}/s"));
            }
        }
        println!("{line}");
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored, so
    /// `cargo bench -- <filter>` does not error).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(1));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn group_runs_every_benchmark() {
        let mut c = Criterion::default().configure_from_args();
        sample_bench(&mut c);
    }
}
