//! In-tree stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `rand` it uses: a seedable deterministic generator
//! plus the `Bernoulli` and `WeightedIndex` distributions. The generator
//! is xoshiro256** seeded through SplitMix64 — the same construction the
//! real `rand_xoshiro` uses — so streams are well distributed and stable
//! across platforms. Sequences are NOT bit-compatible with upstream
//! `rand::StdRng` (which is ChaCha-based); everything in this workspace
//! seeds explicitly and asserts aggregate properties, not exact streams.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Numeric types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of one multiply is irrelevant for the spans
                // used here, and determinism is what matters.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*}
}
sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! inclusive_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if hi < <$t>::MAX {
                    <$t>::sample_half_open(rng, lo, hi + 1)
                } else if lo > <$t>::MIN {
                    <$t>::sample_half_open(rng, lo - 1, hi).saturating_add(1)
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*}
}
inclusive_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions over a generator.
pub mod distributions {
    use super::{Rng, RngCore};

    /// A distribution samplable with any generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error from building a distribution with invalid parameters.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct DistError(&'static str);

    impl core::fmt::Display for DistError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "invalid distribution: {}", self.0)
        }
    }

    impl std::error::Error for DistError {}

    /// Bernoulli distribution: `true` with probability `p`.
    #[derive(Clone, Copy, Debug)]
    pub struct Bernoulli {
        p: f64,
    }

    impl Bernoulli {
        /// A Bernoulli distribution with success probability `p`.
        pub fn new(p: f64) -> Result<Bernoulli, DistError> {
            if (0.0..=1.0).contains(&p) {
                Ok(Bernoulli { p })
            } else {
                Err(DistError("Bernoulli p must be in [0, 1]"))
            }
        }
    }

    impl Distribution<bool> for Bernoulli {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.gen_bool(self.p)
        }
    }

    /// Samples indices proportionally to a weight table.
    #[derive(Clone, Debug)]
    pub struct WeightedIndex {
        /// Cumulative weights; the final entry is the total.
        cumulative: Vec<f64>,
    }

    impl WeightedIndex {
        /// Builds the distribution from positive weights.
        pub fn new<I>(weights: I) -> Result<WeightedIndex, DistError>
        where
            I: IntoIterator,
            I::Item: core::borrow::Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *core::borrow::Borrow::borrow(&w);
                if !(w.is_finite() && w >= 0.0) {
                    return Err(DistError("weights must be finite and non-negative"));
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(DistError("total weight must be positive"));
            }
            Ok(WeightedIndex { cumulative })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let total = *self.cumulative.last().expect("non-empty");
            let x = <f64 as super::Standard>::draw(rng) * total;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
            {
                Ok(i) => i + 1,
                Err(i) => i,
            }
            .min(self.cumulative.len() - 1)
        }
    }
}

pub use rngs::StdRng as _StdRngReexportGuard;

#[cfg(test)]
mod tests {
    use super::distributions::{Bernoulli, Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_land_in_range_and_average_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn bernoulli_converges() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Bernoulli::new(0.053).unwrap();
        let hits = (0..200_000).filter(|_| d.sample(&mut rng)).count();
        let rate = hits as f64 / 200_000.0;
        assert!((0.050..0.056).contains(&rate), "rate {rate}");
        assert!(Bernoulli::new(1.5).is_err());
    }

    #[test]
    fn weighted_index_matches_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = WeightedIndex::new(&[0.5, 0.25, 0.25]).unwrap();
        let mut counts = [0u32; 3];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        let p0 = counts[0] as f64 / 100_000.0;
        assert!((0.49..0.51).contains(&p0), "p0 {p0}");
        assert!(counts[1] > 0 && counts[2] > 0);
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
    }
}
