//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the `proptest` API its tests use: the `proptest!`
//! macro, a [`Strategy`](strategy::Strategy) trait with the map / flat-map
//! / recursive / one-of combinators, collection and option strategies, and
//! a tiny regex-pattern string generator. Differences from upstream are
//! deliberate: cases are generated from a seed derived from the test name
//! (fully deterministic run to run), and failing cases are reported but
//! NOT shrunk — the failing case index and seed are printed instead.

pub mod strategy {
    use std::marker::PhantomData;
    use std::sync::Arc;

    use rand::{Rng, RngCore};

    /// The generator driving all strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<W, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> W,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from a strategy derived
        /// from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        /// Erases the strategy type. The result is cheaply clonable.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds a recursive strategy: `self` generates the leaves and
        /// `recurse` wraps an inner strategy one level deeper. Recursion
        /// depth is bounded by `depth`; the size hints are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut current = self.boxed();
            for _ in 0..depth {
                let branch = recurse(current.clone()).boxed();
                current = Union::new(vec![current, branch]).boxed();
            }
            current
        }
    }

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V: 'static> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, W, F: Fn(S::Value) -> W> Strategy for Map<S, F> {
        type Value = W;

        fn generate(&self, rng: &mut TestRng) -> W {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniformly picks one of several strategies per generated value
    /// (backs the `prop_oneof!` macro).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given arms (at least one).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<V: 'static> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    /// Backs [`any`].
    pub struct Any<A>(PhantomData<fn() -> A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A> Copy for Any<A> {}

    impl<A: rand::Standard> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::draw(rng)
        }
    }

    /// Uniform values of a primitive type.
    pub fn any<A: rand::Standard>() -> Any<A> {
        Any(PhantomData)
    }

    impl<T> Strategy for core::ops::Range<T>
    where
        T: Copy,
        core::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for core::ops::RangeInclusive<T>
    where
        T: Copy,
        core::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// A `Vec` of strategies generates element-wise.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(S0.0);
    tuple_strategy!(S0.0, S1.1);
    tuple_strategy!(S0.0, S1.1, S2.2);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

    /// A `&str` is interpreted as a regex-like pattern generating
    /// matching strings. Supported syntax: literal characters, `[...]`
    /// classes with ranges, and the `{n}`, `{m,n}`, `?`, `*`, `+`
    /// quantifiers (unbounded quantifiers are capped at 8 repeats).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let choices: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars.next().expect("pattern: unterminated character class");
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let hi = chars.next().expect("pattern: bad range");
                                let lo = prev.take().expect("range start");
                                set.pop();
                                for v in lo..=hi {
                                    set.push(v);
                                }
                            }
                            c => {
                                set.push(c);
                                prev = Some(c);
                            }
                        }
                    }
                    set
                }
                '\\' => vec![chars.next().expect("pattern: dangling escape")],
                c => vec![c],
            };
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.parse().expect("pattern: bad repeat count"),
                            n.parse().expect("pattern: bad repeat count"),
                        ),
                        None => {
                            let n: usize = spec.parse().expect("pattern: bad repeat count");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            let count = rng.gen_range(lo..=hi);
            for _ in 0..count {
                let idx = rng.gen_range(0..choices.len());
                out.push(choices[idx]);
            }
        }
        out
    }

    /// Silences the unused warning for `RngCore` (needed by the blanket
    /// `Rng` impl used above).
    const _: fn(&mut TestRng) -> u64 = <TestRng as RngCore>::next_u64;
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// A collection size: an exact count or an inclusive range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`hash_set`].
    #[derive(Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `HashSet` with a size drawn from `size` (best effort: duplicate
    /// draws are retried a bounded number of times).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = std::collections::HashSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 16 + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod option {
    //! Strategies for `Option`.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` (three times out of four) of the inner strategy, or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner behind the `proptest!` macro.

    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    struct CaseReporter<'a> {
        name: &'a str,
        seed: u64,
        case: u32,
    }

    impl Drop for CaseReporter<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest shim: test `{}` failed at case {} (base seed {:#x})",
                    self.name, self.case, self.seed
                );
            }
        }
    }

    /// Explicit test-case failure, for bodies that bail with `?`.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError(message.into())
        }

        /// An explicit rejection (treated as failure by this shim, which
        /// does not resample).
        pub fn reject(message: impl Into<String>) -> TestCaseError {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Result alias for property-test bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runs `case` for each generated input. The per-test seed is derived
    /// from the test name, so runs are deterministic; on failure the case
    /// index and seed are printed (no shrinking).
    pub fn run_cases<F: FnMut(&mut TestRng)>(config: &ProptestConfig, name: &str, mut case: F) {
        let seed = fnv1a(name.as_bytes());
        for i in 0..config.cases {
            let reporter = CaseReporter {
                name,
                seed,
                case: i,
            };
            let mut rng =
                TestRng::seed_from_u64(seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9)));
            case(&mut rng);
            std::mem::forget(reporter);
        }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use super::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = <$crate::test_runner::ProptestConfig as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!("test case failed: {e}");
                }
            });
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    (config = $config:expr;) => {};
}

/// Uniformly picks one of several strategies for each generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(1)
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (1usize..10).generate(&mut r);
            assert!((1..10).contains(&v));
            let s = (1usize..10).prop_map(|v| v * 2).generate(&mut r);
            assert!(s % 2 == 0 && (2..20).contains(&s));
            let o = crate::option::of(0u32..4).generate(&mut r);
            assert!(o.is_none() || o.unwrap() < 4);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut r = rng();
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u8>(), 2..5).generate(&mut r);
            assert!((2..5).contains(&v.len()));
            let exact = crate::collection::vec(any::<bool>(), 3).generate(&mut r);
            assert_eq!(exact.len(), 3);
            let s = crate::collection::hash_set(0u64..100, 1..8).generate(&mut r);
            assert!(!s.is_empty() && s.len() < 8);
        }
    }

    #[test]
    fn pattern_strings_match_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[A-Za-z][A-Za-z0-9_]{0,8}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic(), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = Just(Tree::Leaf).boxed().prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
                .boxed()
        });
        let mut r = rng();
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut r);
            assert!(depth(&t) <= 4);
            saw_node |= t != Tree::Leaf;
        }
        assert!(saw_node, "recursion should sometimes branch");
    }

    #[test]
    fn vec_of_strategies_is_elementwise() {
        let strategies: Vec<_> = (0..4).map(|i| Just(i)).collect();
        let mut r = rng();
        assert_eq!(strategies.generate(&mut r), vec![0, 1, 2, 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: destructuring patterns, multiple bindings,
        /// oneof, and the assert forms.
        fn macro_roundtrip((a, b) in (0u32..10, 0u32..10), flag in any::<bool>(),
                           pick in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_ne!(pick, 0);
            prop_assert_eq!(flag as u8 * 0, 0);
        }
    }
}
