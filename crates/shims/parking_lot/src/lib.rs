//! In-tree stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of the `parking_lot` API it actually uses,
//! implemented over `std::sync`. Semantics match `parking_lot` where they
//! differ from `std`: locks are not poisoned — a panic while holding a
//! guard simply releases it.

use std::sync::TryLockError;
use std::time::{Duration, Instant};

/// A mutex that does not poison on panic.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> Mutex<T> {
    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + core::fmt::Debug> core::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock that does not poison on panic.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with the parking_lot calling convention (the
/// guard is re-acquired in place through an `&mut` borrow).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    fn requeue<'a, T, F>(guard: &mut MutexGuard<'a, T>, wait: F)
    where
        F: FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
    {
        // Temporarily move the guard out so std's by-value wait API can be
        // used behind parking_lot's by-reference one. Safe only because
        // `wait` hands back a live guard for the same mutex AND cannot
        // unwind: if it did, `guard` would still alias the moved-out
        // guard and both would unlock on drop — undefined behavior. The
        // closures passed below convert poisoning (std wait's only error)
        // into a normal guard, so the remaining unwind sources are
        // hypothetical; the bomb turns any such escape into an abort
        // instead of UB.
        struct AbortOnUnwind;
        impl Drop for AbortOnUnwind {
            fn drop(&mut self) {
                eprintln!("parking_lot shim: condvar wait unwound; aborting to avoid a duplicated mutex guard");
                std::process::abort();
            }
        }
        unsafe {
            let taken = core::ptr::read(guard);
            let bomb = AbortOnUnwind;
            let back = wait(taken);
            core::mem::forget(bomb);
            core::ptr::write(guard, back);
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        Self::requeue(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        Self::requeue(guard, |g| {
            let (g, result) = match self.inner.wait_timeout(g, timeout) {
                Ok((g, r)) => (g, r),
                Err(poisoned) => {
                    let (g, r) = poisoned.into_inner();
                    (g, r)
                }
            };
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Blocks until notified or the deadline `until` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        until: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if until <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, until - now)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_is_not_poisoned_by_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panic");
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    /// Hammer test for missed wakeups: a bounded semaphore built from
    /// `Mutex` + `Condvar`, with producers and consumers racing on the same
    /// condition variable. A single lost notify deadlocks the test (the
    /// suite's timeout catches it); a spurious wakeup mishandled as a grant
    /// would break the permit accounting assertion.
    #[test]
    fn condvar_semaphore_hammer() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const ITEMS_PER_PRODUCER: usize = 500;

        let sem = Arc::new((Mutex::new(0usize), Condvar::new()));
        let consumed = Arc::new(Mutex::new(0usize));

        let mut handles = Vec::new();
        for _ in 0..PRODUCERS {
            let sem = Arc::clone(&sem);
            handles.push(std::thread::spawn(move || {
                let (permits, cv) = &*sem;
                for _ in 0..ITEMS_PER_PRODUCER {
                    *permits.lock() += 1;
                    // notify_one is the risky variant: with multiple
                    // waiters a shim that dropped the notify between
                    // unlock and sleep would strand a consumer forever.
                    cv.notify_one();
                }
            }));
        }
        for _ in 0..CONSUMERS {
            let sem = Arc::clone(&sem);
            let consumed = Arc::clone(&consumed);
            handles.push(std::thread::spawn(move || {
                let per_consumer = PRODUCERS * ITEMS_PER_PRODUCER / CONSUMERS;
                let (permits, cv) = &*sem;
                for _ in 0..per_consumer {
                    let mut p = permits.lock();
                    while *p == 0 {
                        cv.wait(&mut p);
                    }
                    *p -= 1;
                    drop(p);
                    *consumed.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*consumed.lock(), PRODUCERS * ITEMS_PER_PRODUCER);
        assert_eq!(*sem.0.lock(), 0, "every permit produced was consumed");
    }

    /// Ping-pong between two threads through one condvar: each side waits
    /// for the turn flag to flip to it, flips it back, and notifies. Any
    /// missed wakeup stalls the exchange; any guard-duplication bug in
    /// `requeue` would corrupt the turn counter.
    #[test]
    fn condvar_ping_pong_hammer() {
        const ROUNDS: u64 = 2_000;
        let state = Arc::new((Mutex::new(0u64), Condvar::new()));

        let mut handles = Vec::new();
        for side in 0..2u64 {
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let (turn, cv) = &*state;
                loop {
                    let mut t = turn.lock();
                    while *t < ROUNDS && *t % 2 != side {
                        cv.wait(&mut t);
                    }
                    if *t >= ROUNDS {
                        return;
                    }
                    *t += 1;
                    cv.notify_all();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*state.0.lock(), ROUNDS);
    }

    /// Timed waits under contention must never report success without the
    /// predicate holding, and must not lose real notifies delivered just
    /// before the deadline.
    #[test]
    fn condvar_timed_wait_hammer() {
        let state = Arc::new((Mutex::new(0usize), Condvar::new()));
        let state2 = Arc::clone(&state);
        let producer = std::thread::spawn(move || {
            let (count, cv) = &*state2;
            for _ in 0..200 {
                *count.lock() += 1;
                cv.notify_all();
            }
        });
        let (count, cv) = &*state;
        let mut seen = 0usize;
        while seen < 200 {
            let mut c = count.lock();
            while *c == seen {
                // Short timeout so the loop exercises both the notified
                // and timed-out paths repeatedly.
                let _ = cv.wait_for(&mut c, Duration::from_millis(1));
            }
            assert!(*c > seen, "wait returned without progress or timeout");
            seen = *c;
        }
        producer.join().unwrap();
        assert_eq!(*state.0.lock(), 200);
    }

    #[test]
    fn condvar_timeouts() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)).timed_out());
        assert!(cv
            .wait_until(&mut g, Instant::now() - Duration::from_millis(1))
            .timed_out());
    }
}
