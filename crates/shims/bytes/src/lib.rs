//! In-tree stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the `bytes` API it actually uses: an immutable,
//! cheaply clonable byte buffer ([`Bytes`], an `Arc<[u8]>` underneath)
//! and a growable builder ([`BytesMut`]) that freezes into one.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl core::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for c in core::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_builder() {
        let mut buf = BytesMut::with_capacity(8);
        buf.extend_from_slice(&[1, 2, 3]);
        buf.put_u8(4);
        let frozen = buf.freeze();
        assert_eq!(&*frozen, &[1, 2, 3, 4]);
        assert_eq!(frozen.len(), 4);
        assert!(!frozen.is_empty());
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a: Bytes = vec![5, 6, 7].into();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, *vec![5u8, 6, 7].as_slice());
        assert_ne!(a, Bytes::new());
    }

    #[test]
    fn debug_escapes_bytes() {
        let a: Bytes = vec![b'h', b'i', 0].into();
        assert_eq!(format!("{a:?}"), "b\"hi\\x00\"");
    }
}
