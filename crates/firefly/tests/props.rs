//! Property tests for the hardware substrate.

use firefly::contention::{simulate_throughput, CallProfile, ResourceId, Seg};
use firefly::cost::CostModel;
use firefly::cpu::Machine;
use firefly::mem::{PageId, RegionId, PAGE_SIZE};
use firefly::meter::Meter;
use firefly::time::Nanos;
use firefly::tlb::{Tlb, TlbMode};
use firefly::vm::ContextId;
use proptest::prelude::*;

proptest! {
    // ------------------------------------------------------------------
    // Nanos arithmetic laws.
    // ------------------------------------------------------------------

    #[test]
    fn nanos_addition_is_commutative_and_associative(a in 0u64..1u64<<40,
                                                     b in 0u64..1u64<<40,
                                                     c in 0u64..1u64<<40) {
        let (a, b, c) = (Nanos::from_nanos(a), Nanos::from_nanos(b), Nanos::from_nanos(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn nanos_subtraction_saturates_and_roundtrips(a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
        let (na, nb) = (Nanos::from_nanos(a), Nanos::from_nanos(b));
        if a >= b {
            prop_assert_eq!((na - nb) + nb, na);
        } else {
            prop_assert_eq!(na - nb, Nanos::ZERO);
        }
    }

    #[test]
    fn micros_conversion_roundtrips(us in 0u64..1u64<<30) {
        prop_assert_eq!(Nanos::from_micros(us).as_nanos(), us * 1000);
        let back = Nanos::from_micros_f64(Nanos::from_micros(us).as_micros_f64());
        prop_assert_eq!(back, Nanos::from_micros(us));
    }

    // ------------------------------------------------------------------
    // Page identity.
    // ------------------------------------------------------------------

    #[test]
    fn page_ids_are_injective_within_bounds(r1 in 1u64..1000, r2 in 1u64..1000,
                                            o1 in 0usize..512*1024, o2 in 0usize..512*1024) {
        let p1 = PageId::of(RegionId(r1), o1);
        let p2 = PageId::of(RegionId(r2), o2);
        let same = r1 == r2 && o1 / PAGE_SIZE == o2 / PAGE_SIZE;
        prop_assert_eq!(p1 == p2, same);
    }

    // ------------------------------------------------------------------
    // TLB invariants.
    // ------------------------------------------------------------------

    #[test]
    fn tlb_hits_plus_misses_equals_touches(pages in proptest::collection::vec(0u64..64, 1..200),
                                           capacity in 1usize..64) {
        let mut tlb = Tlb::new(TlbMode::InvalidateOnSwitch, capacity);
        let ctx = ContextId(1);
        for &p in &pages {
            tlb.touch(ctx, PageId::of(RegionId(1), p as usize * PAGE_SIZE));
        }
        prop_assert_eq!(tlb.hits() + tlb.misses(), pages.len() as u64);
        prop_assert!(tlb.resident_count() <= capacity);
    }

    #[test]
    fn tlb_second_touch_hits_if_capacity_allows(pages in proptest::collection::vec(0u64..16, 1..16)) {
        // Working set fits: re-touching the same sequence produces no new
        // misses.
        let mut tlb = Tlb::new(TlbMode::InvalidateOnSwitch, 64);
        let ctx = ContextId(1);
        for &p in &pages {
            tlb.touch(ctx, PageId::of(RegionId(1), p as usize * PAGE_SIZE));
        }
        let misses_before = tlb.misses();
        for &p in &pages {
            tlb.touch(ctx, PageId::of(RegionId(1), p as usize * PAGE_SIZE));
        }
        prop_assert_eq!(tlb.misses(), misses_before, "warm touches must all hit");
    }

    #[test]
    fn invalidation_forces_full_remiss(pages in proptest::collection::hash_set(0u64..32, 1..32)) {
        let mut tlb = Tlb::new(TlbMode::InvalidateOnSwitch, 64);
        let ctx = ContextId(1);
        for &p in &pages {
            tlb.touch(ctx, PageId::of(RegionId(1), p as usize * PAGE_SIZE));
        }
        tlb.on_context_switch();
        let before = tlb.misses();
        for &p in &pages {
            tlb.touch(ctx, PageId::of(RegionId(1), p as usize * PAGE_SIZE));
        }
        prop_assert_eq!(tlb.misses() - before, pages.len() as u64);
    }

    // ------------------------------------------------------------------
    // Contention conservation.
    // ------------------------------------------------------------------

    #[test]
    fn per_cpu_calls_are_within_one_of_each_other_for_identical_profiles(
        compute_us in 50u64..400,
        cpus in 2usize..5,
    ) {
        // Identical pure-compute profiles must finish in lockstep.
        let profile = CallProfile::new(vec![Seg::Compute(Nanos::from_micros(compute_us))]);
        let report = simulate_throughput(&vec![profile; cpus], 0, Nanos::from_millis(100));
        let min = report.per_cpu_calls.iter().min().copied().unwrap_or(0);
        let max = report.per_cpu_calls.iter().max().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "{:?}", report.per_cpu_calls);
    }

    #[test]
    fn fair_fifo_resource_sharing(hold_us in 5u64..100, cpus in 2usize..5) {
        // A pure-contention profile shares the resource round-robin; no
        // CPU can starve under virtual-time FIFO.
        let profile = CallProfile::new(vec![Seg::Use {
            res: ResourceId(0),
            hold: Nanos::from_micros(hold_us),
        }]);
        let report = simulate_throughput(&vec![profile; cpus], 1, Nanos::from_millis(50));
        let min = report.per_cpu_calls.iter().min().copied().unwrap_or(0);
        let max = report.per_cpu_calls.iter().max().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "{:?}", report.per_cpu_calls);
    }
}

// ----------------------------------------------------------------------
// Non-proptest integration checks of the machine.
// ----------------------------------------------------------------------

#[test]
fn charged_time_equals_metered_time_on_a_scripted_sequence() {
    let machine = Machine::new(1, CostModel::cvax_firefly());
    let cpu = machine.cpu(0);
    let mut meter = Meter::enabled();
    let cost = machine.cost();
    kernel_path(cpu, cost, &mut meter);
    assert_eq!(Nanos::from_nanos(cpu.now().as_nanos()), meter.total());

    fn kernel_path(cpu: &firefly::cpu::Cpu, cost: &CostModel, meter: &mut Meter) {
        use firefly::meter::Phase;
        for (phase, amount) in [
            (Phase::ProcedureCall, cost.hw.procedure_call),
            (Phase::Trap, cost.hw.kernel_trap),
            (Phase::KernelTransfer, cost.kernel_transfer_call),
            (Phase::Trap, cost.hw.kernel_trap),
        ] {
            cpu.charge(amount);
            meter.record(phase, amount);
        }
    }
}

#[test]
fn context_ids_are_never_reused() {
    let machine = Machine::new(1, CostModel::cvax_firefly());
    let mut seen = std::collections::HashSet::new();
    for _ in 0..100 {
        let ctx = machine.create_context();
        assert!(seen.insert(ctx.id()), "context id reuse");
        machine.destroy_context(ctx.id());
    }
}

#[test]
fn kernel_context_survives_destruction_attempts() {
    let machine = Machine::new(1, CostModel::cvax_firefly());
    machine.destroy_context(ContextId::KERNEL);
    assert!(machine.context(ContextId::KERNEL).is_some());
}

#[test]
fn concurrent_idle_claims_hand_out_each_cpu_once() {
    // The idle-processor probe must be atomic: when many callers race for
    // the CPUs idling in a context, each CPU is claimed exactly once.
    let machine = Machine::new(8, CostModel::cvax_firefly());
    let ctx = machine.create_context();
    for i in 2..8 {
        machine.cpu(i).set_idle_in(Some(ctx.id()));
    }
    let claimed = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                while let Some(id) = machine.claim_idle_cpu_in(ctx.id()) {
                    claimed.lock().unwrap().push(id);
                }
            });
        }
    });
    let mut got = claimed.into_inner().unwrap();
    got.sort_unstable();
    assert_eq!(
        got,
        vec![2, 3, 4, 5, 6, 7],
        "each idle CPU claimed exactly once"
    );
    assert_eq!(machine.claim_idle_cpu_in(ctx.id()), None);
}
