//! Cost models for the simulated machines.
//!
//! The reproduction does not run on a C-VAX Firefly, so latencies are
//! produced by charging calibrated per-phase costs to the executing
//! simulated CPU as the (real, functional) code runs. The constants below
//! are calibrated from the paper:
//!
//! * Table 5 gives the serial Null LRPC decomposition on a C-VAX:
//!   Modula2+ procedure call 7 µs, two kernel traps 36 µs, two context
//!   switches 66 µs (minimum = 109 µs), stubs 21 µs (18 client + 3 server)
//!   and kernel transfer 27 µs (LRPC overhead = 48 µs), total 157 µs.
//! * A TLB miss costs about 0.9 µs and ≈ 43 of them occur per Null call.
//! * Table 4 fixes the data-dependent costs: `Add` (+3 argument ops,
//!   12 bytes) costs 164 µs, `BigIn` (+1 op, 200 bytes) 192 µs and
//!   `BigInOut` (+2 ops, 400 bytes) 227 µs, giving ≈ 1.8 µs per stub
//!   argument operation and ≈ 0.165 µs per byte copied.
//! * The idle-processor optimization (Table 4, "LRPC/MP") turns a 33 µs
//!   context switch into a ≈ 17 µs processor exchange, but pays a small
//!   cross-processor penalty on A-stack bytes written by the other CPU.
//! * Table 2 gives the theoretical minimum cross-domain call for the other
//!   machines, from which the per-processor primitive costs are derived.

use crate::time::Nanos;

/// Hardware primitive timings for one processor type.
///
/// These are the constituents of the "theoretical minimum" cross-domain
/// call of the paper's Table 2: one procedure call, two kernel traps and
/// two virtual-memory context switches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessorTimings {
    /// Human-readable processor name as printed in Table 2.
    pub name: &'static str,
    /// One local (Modula2+-convention) procedure call and return.
    pub procedure_call: Nanos,
    /// One kernel trap (entry or exit).
    pub kernel_trap: Nanos,
    /// One virtual-memory context switch, including TLB invalidation and
    /// mapping-register reload.
    pub context_switch: Nanos,
    /// One TLB refill after a miss.
    pub tlb_miss: Nanos,
}

impl ProcessorTimings {
    /// The C-VAX as used by the Firefly (Taos, LRPC rows of Table 2).
    pub const fn cvax() -> Self {
        ProcessorTimings {
            name: "C-VAX",
            procedure_call: Nanos::from_micros(7),
            kernel_trap: Nanos::from_micros(18),
            context_switch: Nanos::from_micros(33),
            tlb_miss: Nanos::from_nanos(900),
        }
    }

    /// The C-VAX as exercised by Mach's trap and switch paths (Table 2
    /// reports a 90 µs minimum for Mach on the same processor).
    pub const fn cvax_mach() -> Self {
        ProcessorTimings {
            name: "C-VAX",
            procedure_call: Nanos::from_micros(6),
            kernel_trap: Nanos::from_micros(15),
            context_switch: Nanos::from_micros(27),
            tlb_miss: Nanos::from_nanos(900),
        }
    }

    /// The PERQ workstation (Accent row of Table 2, 444 µs minimum).
    pub const fn perq() -> Self {
        ProcessorTimings {
            name: "PERQ",
            procedure_call: Nanos::from_micros(30),
            kernel_trap: Nanos::from_micros(77),
            context_switch: Nanos::from_micros(130),
            tlb_miss: Nanos::from_nanos(2_500),
        }
    }

    /// The Motorola 68020 (V, Amoeba and DASH rows of Table 2, 170 µs
    /// minimum).
    pub const fn m68020() -> Self {
        ProcessorTimings {
            name: "68020",
            procedure_call: Nanos::from_micros(10),
            kernel_trap: Nanos::from_micros(25),
            context_switch: Nanos::from_micros(55),
            tlb_miss: Nanos::from_nanos(1_200),
        }
    }

    /// The MicroVAX II (five-processor Firefly of Section 4; roughly 1.8×
    /// slower than a C-VAX with a comparable memory system).
    pub const fn microvax_ii() -> Self {
        ProcessorTimings {
            name: "MicroVAX II",
            procedure_call: Nanos::from_micros(13),
            kernel_trap: Nanos::from_micros(32),
            context_switch: Nanos::from_micros(59),
            tlb_miss: Nanos::from_nanos(1_600),
        }
    }

    /// The theoretical minimum safe cross-domain call on this processor:
    /// one procedure call, two traps and two context switches (Table 2,
    /// "Null (Theoretical Minimum)").
    pub fn theoretical_minimum(&self) -> Nanos {
        self.procedure_call + self.kernel_trap * 2 + self.context_switch * 2
    }
}

/// Full cost model for running LRPC on a simulated machine.
///
/// The `client_stub_*`, `server_stub_*` and `kernel_transfer_*` fields are
/// the paper's measured LRPC overhead split across the call and return
/// halves of the transfer ("approximately 18 microseconds are spent in the
/// client stub and 3 in the server's. The remaining 27 microseconds of
/// overhead are spent in the kernel ... Most of this takes place during the
/// call, as the return path is simpler").
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Descriptive name, e.g. `"C-VAX Firefly"`.
    pub name: &'static str,
    /// Hardware primitive timings.
    pub hw: ProcessorTimings,

    /// Client stub work on the call path (A-stack dequeue, register setup,
    /// trap issue).
    pub client_stub_call: Nanos,
    /// Client stub work on the return path (result placement, A-stack
    /// requeue).
    pub client_stub_return: Nanos,
    /// Server entry stub work (branch into the procedure).
    pub server_stub_entry: Nanos,
    /// Server stub work initiating the return transfer.
    pub server_stub_return: Nanos,
    /// Kernel transfer work on the call path (binding and A-stack
    /// validation, linkage management, E-stack lookup).
    pub kernel_transfer_call: Nanos,
    /// Kernel transfer work on the return path (linkage pop; no
    /// revalidation is needed).
    pub kernel_transfer_return: Nanos,

    /// One stub data-movement operation (push one argument or fetch one
    /// result; includes any folded type check).
    pub per_arg_op: Nanos,
    /// Copying one byte between simulated memory regions.
    pub per_byte_copy: Nanos,

    /// Exchanging the processors of a calling thread and a thread idling in
    /// the target domain's context (replaces a context switch when the
    /// idle-processor optimization hits).
    pub processor_exchange: Nanos,
    /// Extra cost per A-stack byte the callee reads when the call migrated
    /// to a different physical processor (the bytes were written into the
    /// other CPU's cache).
    pub remote_access_per_byte: Nanos,

    /// One A-stack free-queue operation (acquire or release under the
    /// per-queue lock). The paper reports queueing at under 2 % of call
    /// time.
    pub astack_queue_op: Nanos,
    /// One submission/completion-ring descriptor operation (enqueue a call
    /// descriptor, drain it on the server side, or reap its completion).
    /// Modeled on the A-stack queue-op cost: a handful of shared-memory
    /// writes, no kernel involvement.
    pub ring_descriptor_op: Nanos,
    /// Memory-bus occupancy of one Null call (TLB refills and kernel data
    /// traffic); this is the serialized hardware resource that bounds
    /// multiprocessor call throughput in Figure 2.
    pub bus_time_null_call: Nanos,
    /// Additional memory-bus occupancy per argument/result byte moved.
    pub bus_time_per_byte: Nanos,
}

impl CostModel {
    /// The four-processor C-VAX Firefly used for every headline number in
    /// the paper.
    pub const fn cvax_firefly() -> Self {
        CostModel {
            name: "C-VAX Firefly",
            hw: ProcessorTimings::cvax(),
            // The paper's 18 µs client-stub figure includes the two A-stack
            // queue operations (charged separately as `astack_queue_op`):
            // 10.6 + 4.6 + 2 × 1.4 = 18.
            client_stub_call: Nanos::from_nanos(10_600),
            client_stub_return: Nanos::from_nanos(4_600),
            server_stub_entry: Nanos::from_micros(2),
            server_stub_return: Nanos::from_micros(1),
            kernel_transfer_call: Nanos::from_micros(17),
            kernel_transfer_return: Nanos::from_micros(10),
            per_arg_op: Nanos::from_nanos(1_800),
            per_byte_copy: Nanos::from_nanos(165),
            processor_exchange: Nanos::from_micros(17),
            remote_access_per_byte: Nanos::from_nanos(63),
            astack_queue_op: Nanos::from_nanos(1_400),
            ring_descriptor_op: Nanos::from_nanos(1_400),
            bus_time_null_call: Nanos::from_micros(43),
            bus_time_per_byte: Nanos::from_nanos(80),
        }
    }

    /// The five-processor MicroVAX II Firefly (Section 4 reports a 4.3×
    /// speedup with 5 processors on this machine).
    pub const fn microvax_ii_firefly() -> Self {
        CostModel {
            name: "MicroVAX II Firefly",
            hw: ProcessorTimings::microvax_ii(),
            client_stub_call: Nanos::from_nanos(18_500),
            client_stub_return: Nanos::from_nanos(8_500),
            server_stub_entry: Nanos::from_micros(4),
            server_stub_return: Nanos::from_micros(2),
            kernel_transfer_call: Nanos::from_micros(30),
            kernel_transfer_return: Nanos::from_micros(18),
            per_arg_op: Nanos::from_nanos(3_200),
            per_byte_copy: Nanos::from_nanos(300),
            processor_exchange: Nanos::from_micros(30),
            remote_access_per_byte: Nanos::from_nanos(70),
            astack_queue_op: Nanos::from_nanos(2_500),
            ring_descriptor_op: Nanos::from_nanos(2_500),
            // The MicroVAX II's slower memory system makes the shared bus
            // the binding constraint at five processors: 281 µs / 65 µs
            // ≈ 4.3, the speedup Section 4 reports.
            bus_time_null_call: Nanos::from_micros(65),
            bus_time_per_byte: Nanos::from_nanos(90),
        }
    }

    /// A cost model for an arbitrary processor, used when simulating the
    /// message-RPC systems of Table 2 on their own machines (the PERQ, the
    /// 68020). The LRPC-specific software constants keep the C-VAX values;
    /// only the hardware primitives matter to those baselines.
    pub fn with_hw(hw: ProcessorTimings) -> CostModel {
        CostModel {
            name: hw.name,
            hw,
            ..CostModel::cvax_firefly()
        }
    }

    /// Total LRPC stub overhead for a Null call (Table 5 "Stubs" row).
    ///
    /// Includes the two A-stack queue operations performed by the client
    /// stub (one acquire on call, one release on return).
    pub fn stub_overhead(&self) -> Nanos {
        self.client_stub_call
            + self.client_stub_return
            + self.server_stub_entry
            + self.server_stub_return
            + self.astack_queue_op * 2
    }

    /// Total LRPC kernel-transfer overhead for a Null call (Table 5
    /// "Kernel transfer" row).
    pub fn kernel_transfer_overhead(&self) -> Nanos {
        self.kernel_transfer_call + self.kernel_transfer_return
    }

    /// The expected serial (single-processor) Null LRPC latency: the
    /// theoretical minimum plus the LRPC overhead.
    pub fn lrpc_null_serial(&self) -> Nanos {
        self.hw.theoretical_minimum() + self.stub_overhead() + self.kernel_transfer_overhead()
    }

    /// The expected Null LRPC latency when both domain transfers hit the
    /// idle-processor optimization (context switches become processor
    /// exchanges).
    pub fn lrpc_null_exchanged(&self) -> Nanos {
        self.lrpc_null_serial() - self.hw.context_switch * 2 + self.processor_exchange * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cvax_minimum_matches_table_5() {
        // Table 5: 7 + 36 + 66 = 109 µs minimum.
        let hw = ProcessorTimings::cvax();
        assert_eq!(hw.theoretical_minimum(), Nanos::from_micros(109));
    }

    #[test]
    fn cvax_null_lrpc_matches_table_4() {
        let m = CostModel::cvax_firefly();
        assert_eq!(m.stub_overhead(), Nanos::from_micros(21));
        assert_eq!(m.kernel_transfer_overhead(), Nanos::from_micros(27));
        assert_eq!(m.lrpc_null_serial(), Nanos::from_micros(157));
    }

    #[test]
    fn cvax_null_mp_matches_table_4() {
        let m = CostModel::cvax_firefly();
        assert_eq!(m.lrpc_null_exchanged(), Nanos::from_micros(125));
    }

    #[test]
    fn table_2_minimums() {
        assert_eq!(
            ProcessorTimings::perq().theoretical_minimum(),
            Nanos::from_micros(444)
        );
        assert_eq!(
            ProcessorTimings::cvax_mach().theoretical_minimum(),
            Nanos::from_micros(90)
        );
        assert_eq!(
            ProcessorTimings::m68020().theoretical_minimum(),
            Nanos::from_micros(170)
        );
    }

    #[test]
    fn data_dependent_costs_match_table_4_deltas() {
        let m = CostModel::cvax_firefly();
        let null = m.lrpc_null_serial().as_micros_f64();
        // Add: two 4-byte arguments in, one 4-byte result out.
        let add =
            null + 3.0 * m.per_arg_op.as_micros_f64() + 12.0 * m.per_byte_copy.as_micros_f64();
        assert_eq!(add.round() as u64, 164);
        // BigIn: one 200-byte argument.
        let big_in = null + m.per_arg_op.as_micros_f64() + 200.0 * m.per_byte_copy.as_micros_f64();
        assert_eq!(big_in.round() as u64, 192);
        // BigInOut: 200 bytes in, 200 bytes out.
        let big_in_out =
            null + 2.0 * m.per_arg_op.as_micros_f64() + 400.0 * m.per_byte_copy.as_micros_f64();
        assert_eq!(big_in_out.round() as u64, 227);
    }

    #[test]
    fn queue_ops_are_under_two_percent_of_call_time() {
        // Section 3.4: "queuing operations take less than 2% of the total
        // call time".
        let m = CostModel::cvax_firefly();
        let two_ops = m.astack_queue_op * 2;
        assert!(two_ops.as_nanos() * 50 < m.lrpc_null_serial().as_nanos());
    }
}
