//! Per-processor translation lookaside buffer model.
//!
//! The C-VAX requires a full TLB invalidation on every context switch; each
//! subsequent miss adds about 0.9 µs to a memory reference, and the paper
//! estimates 43 misses during a Null LRPC — roughly 25 % of its 157 µs.
//!
//! The model tracks which pages are resident per CPU so the miss count
//! *emerges* from the pages the call path actually touches. Miss counts are
//! reported through the [`crate::meter::Meter`]; the charged per-phase cost
//! constants in [`crate::cost::CostModel`] are calibrated *inclusive* of
//! miss time (that is how the paper measured them), so misses are not
//! double-charged. The tagged-TLB ablation (Section 3.4: "The high cost of
//! frequent domain crossing can also be reduced by using a TLB that
//! includes a process tag") uses the difference in emergent miss counts to
//! credit back the avoided refill time.

use std::collections::HashSet;
use std::collections::VecDeque;

use crate::mem::PageId;
use crate::vm::ContextId;

/// Replacement/invalidation behaviour of the TLB.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TlbMode {
    /// Untagged entries; a context switch invalidates everything (C-VAX).
    InvalidateOnSwitch,
    /// Entries carry a context tag and survive switches (the ablation of
    /// Section 3.4).
    Tagged,
}

/// One CPU's TLB.
#[derive(Debug)]
pub struct Tlb {
    mode: TlbMode,
    capacity: usize,
    /// Resident (context, page) pairs; in untagged mode the context is the
    /// currently loaded one for every entry.
    resident: HashSet<(ContextId, PageId)>,
    /// FIFO of resident entries for eviction order.
    order: VecDeque<(ContextId, PageId)>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl Tlb {
    /// Creates a TLB with the given entry capacity.
    ///
    /// The C-VAX translation buffer holds a few hundred entries; 256 is
    /// used as the default via [`Tlb::cvax`].
    pub fn new(mode: TlbMode, capacity: usize) -> Tlb {
        Tlb {
            mode,
            capacity: capacity.max(1),
            resident: HashSet::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// A C-VAX-like TLB: 256 untagged entries, invalidated on switch.
    pub fn cvax() -> Tlb {
        Tlb::new(TlbMode::InvalidateOnSwitch, 256)
    }

    /// The TLB's mode.
    pub fn mode(&self) -> TlbMode {
        self.mode
    }

    /// References one page in `ctx`; returns `true` on a miss (and installs
    /// the entry).
    pub fn touch(&mut self, ctx: ContextId, page: PageId) -> bool {
        let key = (ctx, page);
        if self.resident.contains(&key) {
            self.hits += 1;
            return false;
        }
        self.misses += 1;
        if self.resident.len() >= self.capacity {
            if let Some(victim) = self.order.pop_front() {
                self.resident.remove(&victim);
            }
        }
        self.resident.insert(key);
        self.order.push_back(key);
        true
    }

    /// Notifies the TLB of a context switch. In untagged mode this
    /// invalidates every entry; in tagged mode it is free.
    pub fn on_context_switch(&mut self) {
        if self.mode == TlbMode::InvalidateOnSwitch {
            self.resident.clear();
            self.order.clear();
            self.invalidations += 1;
        }
    }

    /// Unconditionally flushes the TLB (e.g. after an unmap).
    pub fn flush(&mut self) {
        self.resident.clear();
        self.order.clear();
        self.invalidations += 1;
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total invalidations so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Resets the hit/miss/invalidation counters (residency is preserved so
    /// steady-state measurements can follow a warm-up).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.invalidations = 0;
    }

    /// Number of currently resident entries.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::RegionId;

    fn page(n: u64) -> PageId {
        PageId::of(RegionId(1), n as usize * crate::mem::PAGE_SIZE)
    }

    const CTX: ContextId = ContextId(5);
    const OTHER: ContextId = ContextId(6);

    #[test]
    fn first_touch_misses_second_hits() {
        let mut tlb = Tlb::cvax();
        assert!(tlb.touch(CTX, page(0)));
        assert!(!tlb.touch(CTX, page(0)));
        assert_eq!(tlb.misses(), 1);
        assert_eq!(tlb.hits(), 1);
    }

    #[test]
    fn context_switch_invalidates_untagged() {
        let mut tlb = Tlb::cvax();
        tlb.touch(CTX, page(0));
        tlb.on_context_switch();
        assert_eq!(tlb.resident_count(), 0);
        assert!(
            tlb.touch(CTX, page(0)),
            "entry must be gone after invalidation"
        );
        assert_eq!(tlb.invalidations(), 1);
    }

    #[test]
    fn tagged_entries_survive_switches() {
        let mut tlb = Tlb::new(TlbMode::Tagged, 64);
        tlb.touch(CTX, page(0));
        tlb.on_context_switch();
        assert!(
            !tlb.touch(CTX, page(0)),
            "tagged entry must survive the switch"
        );
        // A different context still misses on the same page.
        assert!(tlb.touch(OTHER, page(0)));
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut tlb = Tlb::new(TlbMode::InvalidateOnSwitch, 2);
        tlb.touch(CTX, page(0));
        tlb.touch(CTX, page(1));
        tlb.touch(CTX, page(2)); // Evicts page 0.
        assert!(tlb.touch(CTX, page(0)), "page 0 must have been evicted");
        assert!(!tlb.touch(CTX, page(2)));
    }

    #[test]
    fn reset_stats_preserves_residency() {
        let mut tlb = Tlb::cvax();
        tlb.touch(CTX, page(0));
        tlb.reset_stats();
        assert_eq!(tlb.misses(), 0);
        assert!(!tlb.touch(CTX, page(0)), "residency survives a stats reset");
    }
}
