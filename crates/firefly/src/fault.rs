//! Deterministic fault injection.
//!
//! The LRPC paper's robustness story (Section 5.3) is exercised here by a
//! seeded, fully deterministic *fault plan*: a set of knobs — all zero by
//! default — that the layers above consult at well-known injection sites.
//! A [`FaultPlan`] owns one [`SplitMix64`]-derived pseudo-random stream
//! *per site* (keyed by the site's name), so the fate decided at one site
//! never depends on how many decisions another site has made. Every
//! decision that actually injects a fault is appended to a globally
//! sequenced event log; replaying the same workload under the same seed
//! reproduces the log bit-for-bit, which the chaos tests assert.
//!
//! The plan decides *what* goes wrong; it never touches the machinery
//! itself. Injection sites feed the decision into the **real** failure
//! paths — an injected server panic unwinds through the clerk's
//! `catch_unwind`, an injected termination runs the real Section 5.3
//! collector, a hung server really captures the client's thread until the
//! watchdog abandons it.

use core::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once, OnceLock};

use parking_lot::{Condvar, Mutex};

use crate::time::Nanos;

/// How many times a lost packet is retransmitted before the sender gives
/// up and reports a network failure.
pub const MAX_RETRANSMISSIONS: u32 = 4;

/// The fault-injection knobs. `FaultConfig::default()` is all-zero: a plan
/// built from it never injects anything and charges no extra virtual time,
/// so a disabled plan is observationally identical to no plan at all.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed for every per-site pseudo-random stream.
    pub seed: u64,
    /// Probability that any one packet transmission is lost (each loss
    /// costs one retransmission; [`MAX_RETRANSMISSIONS`] consecutive
    /// losses lose the packet for good).
    pub packet_loss: f64,
    /// Probability that a packet is duplicated in flight (the receiver
    /// pays one extra processing charge).
    pub packet_dup: f64,
    /// Probability that a packet is delayed in flight.
    pub packet_delay_prob: f64,
    /// Delay applied to a delayed packet, in microseconds.
    pub packet_delay_us: u64,
    /// Every Nth server dispatch panics inside the procedure (0 = never).
    pub server_panic_every: u64,
    /// Every Nth server dispatch hangs, capturing the client's thread
    /// until [`FaultPlan::release_hangs`] (0 = never).
    pub server_hang_every: u64,
    /// Extra scheduling delay charged to every dispatch, in microseconds.
    pub dispatch_delay_us: u64,
    /// Drain the procedure's A-stack free list just before each acquire,
    /// forcing the exhaustion path.
    pub astack_exhaust: bool,
    /// Present the binding's bulk arena as exhausted before each large
    /// call, forcing the per-call out-of-band fallback segment.
    pub bulk_exhaust: bool,
    /// Every Nth call presents a forged Binding Object (wrong nonce) to
    /// the kernel (0 = never).
    pub forge_binding_every: u64,
    /// Terminate the server domain from inside its Nth dispatch — once
    /// (0 = never).
    pub terminate_server_after: u64,
    /// Every Nth call-ring enqueue finds the submission ring full,
    /// forcing the caller to degrade that call to a single-call trap
    /// (0 = never).
    pub ring_full_every: u64,
    /// Every Nth doorbell is lost in the kernel and must be re-rung,
    /// costing the batch an extra trap (0 = never).
    pub doorbell_lost_every: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            packet_loss: 0.0,
            packet_dup: 0.0,
            packet_delay_prob: 0.0,
            packet_delay_us: 0,
            server_panic_every: 0,
            server_hang_every: 0,
            dispatch_delay_us: 0,
            astack_exhaust: false,
            bulk_exhaust: false,
            forge_binding_every: 0,
            terminate_server_after: 0,
            ring_full_every: 0,
            doorbell_lost_every: 0,
        }
    }
}

impl FaultConfig {
    /// An all-zero config with the given seed.
    pub fn with_seed(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            ..FaultConfig::default()
        }
    }

    /// True if no knob is set; such a config can never inject.
    pub fn is_quiescent(&self) -> bool {
        self.packet_loss == 0.0
            && self.packet_dup == 0.0
            && self.packet_delay_prob == 0.0
            && self.server_panic_every == 0
            && self.server_hang_every == 0
            && self.dispatch_delay_us == 0
            && !self.astack_exhaust
            && !self.bulk_exhaust
            && self.forge_binding_every == 0
            && self.terminate_server_after == 0
            && self.ring_full_every == 0
            && self.doorbell_lost_every == 0
    }
}

/// One injected fault, as recorded in the plan's log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Global sequence number (0-based, over all sites).
    pub seq: u64,
    /// Name of the injection site that recorded the event.
    pub site: String,
    /// What was injected.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {} {:?}", self.seq, self.site, self.kind)
    }
}

/// The kinds of fault the plan can inject.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A packet was lost `retransmissions` times before getting through.
    PacketRetransmitted {
        /// Number of retransmissions that were needed.
        retransmissions: u32,
    },
    /// A packet was lost [`MAX_RETRANSMISSIONS`] times in a row.
    PacketLost,
    /// A packet was duplicated in flight.
    PacketDuplicated,
    /// A packet was delayed in flight.
    PacketDelayed {
        /// Extra in-flight time, microseconds.
        us: u64,
    },
    /// A server dispatch was delayed before running.
    DispatchDelayed {
        /// Extra scheduling time, microseconds.
        us: u64,
    },
    /// A server procedure panicked.
    ServerPanic,
    /// A server procedure hung, capturing the client's thread.
    ServerHang,
    /// The server domain was terminated from inside a dispatch.
    ServerTerminated,
    /// A class's A-stack free list was drained before an acquire.
    AStacksExhausted,
    /// The bulk arena was presented as exhausted before a large call.
    BulkArenaExhausted,
    /// A forged Binding Object was presented to the kernel.
    BindingForged,
    /// The submission ring was presented as full; the call degraded to
    /// a single-call trap.
    RingFull,
    /// A doorbell was lost in the kernel and re-rung (one extra trap).
    DoorbellLost,
}

/// What the plan decided for one server dispatch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchFault {
    /// Extra scheduling delay to charge before running, microseconds.
    pub delay_us: u64,
    /// Terminate the server's domain from inside this dispatch.
    pub terminate_server: bool,
    /// Hang on the plan's gate (captures the calling thread).
    pub hang: bool,
    /// Panic inside the server procedure.
    pub panic: bool,
}

impl DispatchFault {
    /// Packs the decision into one replay-log payload word.
    fn pack(&self) -> u64 {
        (self.delay_us << 3)
            | (u64::from(self.terminate_server) << 2)
            | (u64::from(self.hang) << 1)
            | u64::from(self.panic)
    }

    /// Inverse of [`DispatchFault::pack`].
    fn unpack(payload: u64) -> DispatchFault {
        DispatchFault {
            delay_us: payload >> 3,
            terminate_server: payload & 0b100 != 0,
            hang: payload & 0b010 != 0,
            panic: payload & 0b001 != 0,
        }
    }
}

/// What the plan decided for one packet transmission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PacketFate {
    /// Times the packet had to be retransmitted (each costs a full send).
    pub retransmissions: u32,
    /// The packet never arrived, even after [`MAX_RETRANSMISSIONS`].
    pub lost_forever: bool,
    /// The packet was duplicated (receiver pays extra processing).
    pub duplicated: bool,
    /// Extra in-flight delay, microseconds.
    pub delay_us: u64,
}

impl PacketFate {
    /// Packs the decision into one replay-log payload word
    /// (retransmissions fit in 6 bits: they are capped at
    /// [`MAX_RETRANSMISSIONS`]).
    fn pack(&self) -> u64 {
        u64::from(self.retransmissions & 0x3F)
            | (u64::from(self.lost_forever) << 6)
            | (u64::from(self.duplicated) << 7)
            | (self.delay_us << 8)
    }

    /// Inverse of [`PacketFate::pack`].
    fn unpack(payload: u64) -> PacketFate {
        PacketFate {
            retransmissions: (payload & 0x3F) as u32,
            lost_forever: payload & 0x40 != 0,
            duplicated: payload & 0x80 != 0,
            delay_us: payload >> 8,
        }
    }
}

/// SplitMix64 — the tiny, well-distributed generator used for every
/// per-site stream (no dependency on the `rand` crate from this layer).
/// Public so recovery policies can derive their jitter from the same
/// deterministic source.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a site name — folds the name into the seed so each site
/// gets an independent stream.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

struct HangGate {
    released: Mutex<bool>,
    cond: Condvar,
}

/// A seeded, deterministic fault plan.
///
/// Thread-safe and shared by `Arc`; the layers that consult it hold one
/// optional `Arc<FaultPlan>` each. All counters are plan-global, so "every
/// Nth dispatch" counts dispatches across all servers sharing the plan.
pub struct FaultPlan {
    config: FaultConfig,
    sites: Mutex<std::collections::HashMap<String, u64>>,
    log: Mutex<Vec<FaultEvent>>,
    dispatches: AtomicU64,
    calls: AtomicU64,
    ring_enqueues: AtomicU64,
    doorbells: AtomicU64,
    terminated: AtomicBool,
    gate: HangGate,
    /// Record/replay session: when set (non-live), every decision this
    /// plan makes flows through a per-site `fault:{site}` stream —
    /// recorded outcomes in record mode, log-answered outcomes in replay
    /// mode (the plan's own RNG and counters are not consulted at all).
    rr: OnceLock<Arc<replay::Session>>,
    /// Cached stream handles, keyed by site name.
    rr_handles: Mutex<std::collections::HashMap<String, replay::Handle>>,
}

impl FaultPlan {
    /// Builds a plan from a config.
    pub fn new(config: FaultConfig) -> Arc<FaultPlan> {
        if !config.is_quiescent() {
            note_active_config(&config);
        }
        Arc::new(FaultPlan {
            config,
            sites: Mutex::new(std::collections::HashMap::new()),
            log: Mutex::new(Vec::new()),
            dispatches: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            ring_enqueues: AtomicU64::new(0),
            doorbells: AtomicU64::new(0),
            terminated: AtomicBool::new(false),
            gate: HangGate {
                released: Mutex::new(false),
                cond: Condvar::new(),
            },
            rr: OnceLock::new(),
            rr_handles: Mutex::new(std::collections::HashMap::new()),
        })
    }

    /// Attaches a record/replay session. Live sessions are ignored (the
    /// plan keeps deciding from its own seeded streams with zero
    /// overhead); a second attach is ignored.
    pub fn attach_replay(&self, session: &Arc<replay::Session>) {
        if session.is_live() {
            return;
        }
        let _ = self.rr.set(Arc::clone(session));
    }

    /// The cached `fault:{site}` stream handle, if a session is attached.
    fn rr_handle(&self, site: &str) -> Option<replay::Handle> {
        let session = self.rr.get()?;
        let mut handles = self.rr_handles.lock();
        Some(match handles.get(site) {
            Some(h) => h.clone(),
            None => {
                let h = session.stream(&format!("fault:{site}"));
                handles.insert(site.to_string(), h.clone());
                h
            }
        })
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Next pseudo-random draw from `site`'s stream.
    fn draw(&self, site: &str) -> u64 {
        let mut sites = self.sites.lock();
        let state = sites
            .entry(site.to_string())
            .or_insert_with(|| self.config.seed ^ fnv1a(site));
        splitmix64(state)
    }

    fn roll(&self, site: &str, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        unit_f64(self.draw(site)) < p
    }

    /// Appends an event to the globally sequenced log.
    fn record(&self, site: &str, kind: FaultKind) {
        let mut log = self.log.lock();
        let seq = log.len() as u64;
        log.push(FaultEvent {
            seq,
            site: site.to_string(),
            kind,
        });
    }

    /// Decides the fate of one server dispatch at `site` and records any
    /// injected faults. Counters advance even when nothing fires, so the
    /// Nth dispatch is the Nth dispatch regardless of other knobs.
    pub fn dispatch_fault(&self, site: &str) -> DispatchFault {
        if let Some(h) = self.rr_handle(site) {
            if let Some(payload) = h.expect(replay::kind::FAULT_DISPATCH) {
                let fault = DispatchFault::unpack(payload);
                self.record_dispatch(site, &fault);
                return fault;
            }
            let fault = self.dispatch_fault_live(site);
            h.emit(replay::kind::FAULT_DISPATCH, fault.pack());
            return fault;
        }
        if self.config.is_quiescent() {
            return DispatchFault::default();
        }
        self.dispatch_fault_live(site)
    }

    /// Appends the event-log entries a replayed dispatch decision implies,
    /// in the same order the live path records them.
    fn record_dispatch(&self, site: &str, fault: &DispatchFault) {
        if fault.delay_us > 0 {
            self.record(site, FaultKind::DispatchDelayed { us: fault.delay_us });
        }
        if fault.terminate_server {
            self.terminated.store(true, Ordering::Release);
            self.record(site, FaultKind::ServerTerminated);
        }
        if fault.hang {
            self.record(site, FaultKind::ServerHang);
        }
        if fault.panic {
            self.record(site, FaultKind::ServerPanic);
        }
    }

    fn dispatch_fault_live(&self, site: &str) -> DispatchFault {
        let n = self.dispatches.fetch_add(1, Ordering::Relaxed) + 1;
        let mut fault = DispatchFault {
            delay_us: self.config.dispatch_delay_us,
            ..DispatchFault::default()
        };
        if fault.delay_us > 0 {
            self.record(site, FaultKind::DispatchDelayed { us: fault.delay_us });
        }
        if self.config.terminate_server_after != 0
            && n >= self.config.terminate_server_after
            && self
                .terminated
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            fault.terminate_server = true;
            self.record(site, FaultKind::ServerTerminated);
        }
        if self.config.server_hang_every != 0 && n.is_multiple_of(self.config.server_hang_every) {
            fault.hang = true;
            self.record(site, FaultKind::ServerHang);
        }
        if self.config.server_panic_every != 0 && n.is_multiple_of(self.config.server_panic_every) {
            fault.panic = true;
            self.record(site, FaultKind::ServerPanic);
        }
        fault
    }

    /// Decides the fate of one packet transmission at `site` and records
    /// any injected faults.
    pub fn packet_fate(&self, site: &str) -> PacketFate {
        if let Some(h) = self.rr_handle(site) {
            if let Some(payload) = h.expect(replay::kind::FAULT_PACKET) {
                let fate = PacketFate::unpack(payload);
                self.record_packet(site, &fate);
                return fate;
            }
            let fate = self.packet_fate_live(site);
            h.emit(replay::kind::FAULT_PACKET, fate.pack());
            return fate;
        }
        if self.config.packet_loss == 0.0
            && self.config.packet_dup == 0.0
            && self.config.packet_delay_prob == 0.0
        {
            return PacketFate::default();
        }
        self.packet_fate_live(site)
    }

    /// Appends the event-log entries a replayed packet decision implies,
    /// in the same order the live path records them.
    fn record_packet(&self, site: &str, fate: &PacketFate) {
        if fate.lost_forever {
            self.record(site, FaultKind::PacketLost);
            return;
        }
        if fate.retransmissions > 0 {
            self.record(
                site,
                FaultKind::PacketRetransmitted {
                    retransmissions: fate.retransmissions,
                },
            );
        }
        if fate.duplicated {
            self.record(site, FaultKind::PacketDuplicated);
        }
        if fate.delay_us > 0 {
            self.record(site, FaultKind::PacketDelayed { us: fate.delay_us });
        }
    }

    fn packet_fate_live(&self, site: &str) -> PacketFate {
        let mut fate = PacketFate::default();
        while self.roll(site, self.config.packet_loss) {
            fate.retransmissions += 1;
            if fate.retransmissions >= MAX_RETRANSMISSIONS {
                fate.lost_forever = true;
                self.record(site, FaultKind::PacketLost);
                return fate;
            }
        }
        if fate.retransmissions > 0 {
            self.record(
                site,
                FaultKind::PacketRetransmitted {
                    retransmissions: fate.retransmissions,
                },
            );
        }
        if self.roll(site, self.config.packet_dup) {
            fate.duplicated = true;
            self.record(site, FaultKind::PacketDuplicated);
        }
        if self.config.packet_delay_us > 0 && self.roll(site, self.config.packet_delay_prob) {
            fate.delay_us = self.config.packet_delay_us;
            self.record(site, FaultKind::PacketDelayed { us: fate.delay_us });
        }
        fate
    }

    /// True if this call (plan-global counter) should present a forged
    /// Binding Object. Records the event when it fires.
    pub fn forge_binding(&self, site: &str) -> bool {
        if let Some(h) = self.rr_handle(site) {
            if let Some(payload) = h.expect(replay::kind::FAULT_FORGE) {
                if payload != 0 {
                    self.record(site, FaultKind::BindingForged);
                }
                return payload != 0;
            }
            let fire = self.forge_binding_live(site);
            h.emit(replay::kind::FAULT_FORGE, u64::from(fire));
            return fire;
        }
        if self.config.forge_binding_every == 0 {
            return false;
        }
        self.forge_binding_live(site)
    }

    fn forge_binding_live(&self, site: &str) -> bool {
        if self.config.forge_binding_every == 0 {
            return false;
        }
        let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = n.is_multiple_of(self.config.forge_binding_every);
        if fire {
            self.record(site, FaultKind::BindingForged);
        }
        fire
    }

    /// True if the A-stack free list should be drained before this
    /// acquire. Records the event when it fires.
    pub fn exhaust_astacks(&self, site: &str) -> bool {
        if let Some(h) = self.rr_handle(site) {
            if let Some(payload) = h.expect(replay::kind::FAULT_EXHAUST_ASTACKS) {
                if payload != 0 {
                    self.record(site, FaultKind::AStacksExhausted);
                }
                return payload != 0;
            }
            let fire = self.config.astack_exhaust;
            if fire {
                self.record(site, FaultKind::AStacksExhausted);
            }
            h.emit(replay::kind::FAULT_EXHAUST_ASTACKS, u64::from(fire));
            return fire;
        }
        if self.config.astack_exhaust {
            self.record(site, FaultKind::AStacksExhausted);
        }
        self.config.astack_exhaust
    }

    /// True if the bulk arena should be presented as exhausted for this
    /// large call, forcing the per-call out-of-band fallback segment.
    /// Records the event when it fires.
    pub fn exhaust_bulk(&self, site: &str) -> bool {
        if let Some(h) = self.rr_handle(site) {
            if let Some(payload) = h.expect(replay::kind::FAULT_EXHAUST_BULK) {
                if payload != 0 {
                    self.record(site, FaultKind::BulkArenaExhausted);
                }
                return payload != 0;
            }
            let fire = self.config.bulk_exhaust;
            if fire {
                self.record(site, FaultKind::BulkArenaExhausted);
            }
            h.emit(replay::kind::FAULT_EXHAUST_BULK, u64::from(fire));
            return fire;
        }
        if self.config.bulk_exhaust {
            self.record(site, FaultKind::BulkArenaExhausted);
        }
        self.config.bulk_exhaust
    }

    /// True if this call-ring enqueue (plan-global counter) should find
    /// the submission ring full, degrading the call to a single-call
    /// trap. Records the event when it fires.
    pub fn ring_full(&self, site: &str) -> bool {
        if let Some(h) = self.rr_handle(site) {
            if let Some(payload) = h.expect(replay::kind::FAULT_RING_FULL) {
                if payload != 0 {
                    self.record(site, FaultKind::RingFull);
                }
                return payload != 0;
            }
            let fire = self.ring_full_live(site);
            h.emit(replay::kind::FAULT_RING_FULL, u64::from(fire));
            return fire;
        }
        if self.config.ring_full_every == 0 {
            return false;
        }
        self.ring_full_live(site)
    }

    fn ring_full_live(&self, site: &str) -> bool {
        if self.config.ring_full_every == 0 {
            return false;
        }
        let n = self.ring_enqueues.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = n.is_multiple_of(self.config.ring_full_every);
        if fire {
            self.record(site, FaultKind::RingFull);
        }
        fire
    }

    /// True if this doorbell (plan-global counter) should be lost in the
    /// kernel and re-rung at the cost of one extra trap. Records the
    /// event when it fires.
    pub fn lose_doorbell(&self, site: &str) -> bool {
        if let Some(h) = self.rr_handle(site) {
            if let Some(payload) = h.expect(replay::kind::FAULT_DOORBELL_LOST) {
                if payload != 0 {
                    self.record(site, FaultKind::DoorbellLost);
                }
                return payload != 0;
            }
            let fire = self.lose_doorbell_live(site);
            h.emit(replay::kind::FAULT_DOORBELL_LOST, u64::from(fire));
            return fire;
        }
        if self.config.doorbell_lost_every == 0 {
            return false;
        }
        self.lose_doorbell_live(site)
    }

    fn lose_doorbell_live(&self, site: &str) -> bool {
        if self.config.doorbell_lost_every == 0 {
            return false;
        }
        let n = self.doorbells.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = n.is_multiple_of(self.config.doorbell_lost_every);
        if fire {
            self.record(site, FaultKind::DoorbellLost);
        }
        fire
    }

    /// Blocks the calling (captured) thread on the plan's hang gate until
    /// [`FaultPlan::release_hangs`] is called. The release flag is sticky:
    /// hangs decided after release return immediately.
    pub fn wait_while_hung(&self) {
        let mut released = self.gate.released.lock();
        while !*released {
            self.gate.cond.wait(&mut released);
        }
    }

    /// Releases every thread hung on the gate, now and in the future.
    pub fn release_hangs(&self) {
        let mut released = self.gate.released.lock();
        *released = true;
        self.gate.cond.notify_all();
    }

    /// Extra virtual time a [`PacketFate`] charges the wire, given the
    /// cost of one full (re)transmission.
    pub fn retransmission_cost(fate: &PacketFate, per_send: Nanos) -> Nanos {
        per_send * u64::from(fate.retransmissions) + Nanos::from_micros(fate.delay_us)
    }

    /// A copy of the event log so far, in global sequence order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.log.lock().clone()
    }

    /// Number of events injected so far.
    pub fn event_count(&self) -> usize {
        self.log.lock().len()
    }

    /// An order-sensitive digest of the event log (FNV-1a over the debug
    /// rendering) — two runs injected the same faults in the same order
    /// iff their digests match.
    pub fn digest(&self) -> u64 {
        let log = self.log.lock();
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for e in log.iter() {
            for b in format!("{}|{}|{:?};", e.seq, e.site, e.kind).bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

/// The most recently constructed non-quiescent fault config, kept so a
/// panic anywhere in the process can name the seed that provoked it.
static ACTIVE_CONFIG: Mutex<Option<FaultConfig>> = Mutex::new(None);
static PANIC_HOOK: Once = Once::new();

/// Remembers `config` as the active fault plan and makes sure the
/// diagnostics panic hook is installed. Called from [`FaultPlan::new`]
/// for every non-quiescent config, so any chaos/proptest failure prints
/// the seed and knobs needed to reproduce it — no log archaeology.
fn note_active_config(config: &FaultConfig) {
    *ACTIVE_CONFIG.lock() = Some(config.clone());
    PANIC_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            if let Some(line) = active_fault_diagnostics() {
                eprintln!("{line}");
            }
        }));
    });
}

/// One reproduction line describing the active fault plan, if any
/// non-quiescent plan has been constructed in this process. This is what
/// the panic hook prints; tests can call it directly.
pub fn active_fault_diagnostics() -> Option<String> {
    // try_lock: a panic hook must never block, even if the panic fired
    // while the config lock was held.
    let config = ACTIVE_CONFIG.try_lock()?.clone()?;
    Some(config.diagnostics_line())
}

impl FaultConfig {
    /// The reproduction line the panic hook prints for this config.
    pub fn diagnostics_line(&self) -> String {
        format!(
            "fault-plan active: seed={} {:?} — rebuild this FaultConfig to reproduce",
            self.seed, self
        )
    }
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("config", &self.config)
            .field("events", &self.event_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_plan_never_injects() {
        let plan = FaultPlan::new(FaultConfig::with_seed(42));
        for _ in 0..100 {
            assert_eq!(plan.dispatch_fault("dispatch"), DispatchFault::default());
            assert_eq!(plan.packet_fate("net"), PacketFate::default());
            assert!(!plan.forge_binding("call"));
            assert!(!plan.exhaust_astacks("call"));
            assert!(!plan.exhaust_bulk("call"));
            assert!(!plan.ring_full("ring"));
            assert!(!plan.lose_doorbell("ring"));
        }
        assert_eq!(plan.event_count(), 0);
        assert!(plan.config().is_quiescent());
    }

    #[test]
    fn same_seed_same_fates_and_digest() {
        let config = FaultConfig {
            seed: 7,
            packet_loss: 0.3,
            packet_dup: 0.2,
            packet_delay_prob: 0.1,
            packet_delay_us: 50,
            server_panic_every: 3,
            ..FaultConfig::default()
        };
        let run = |cfg: FaultConfig| {
            let plan = FaultPlan::new(cfg);
            let fates: Vec<PacketFate> = (0..200).map(|_| plan.packet_fate("net:req")).collect();
            let dispatches: Vec<DispatchFault> =
                (0..20).map(|_| plan.dispatch_fault("dispatch")).collect();
            (fates, dispatches, plan.digest(), plan.events())
        };
        let a = run(config.clone());
        let b = run(config.clone());
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        assert_eq!(a.3, b.3);
        let c = run(FaultConfig { seed: 8, ..config });
        assert_ne!(a.2, c.2, "different seed must change the fault sequence");
    }

    #[test]
    fn sites_have_independent_streams() {
        let config = FaultConfig {
            seed: 7,
            packet_loss: 0.5,
            ..FaultConfig::default()
        };
        // Drawing heavily from one site must not change another's stream.
        let plan_a = FaultPlan::new(config.clone());
        for _ in 0..1000 {
            plan_a.packet_fate("noisy");
        }
        let a: Vec<PacketFate> = (0..50).map(|_| plan_a.packet_fate("quiet")).collect();
        let plan_b = FaultPlan::new(config);
        let b: Vec<PacketFate> = (0..50).map(|_| plan_b.packet_fate("quiet")).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn every_nth_dispatch_fires() {
        let plan = FaultPlan::new(FaultConfig {
            server_panic_every: 4,
            server_hang_every: 6,
            ..FaultConfig::default()
        });
        let fired: Vec<(bool, bool)> = (0..12)
            .map(|_| {
                let f = plan.dispatch_fault("d");
                (f.panic, f.hang)
            })
            .collect();
        let panics: Vec<usize> = fired
            .iter()
            .enumerate()
            .filter(|(_, f)| f.0)
            .map(|(i, _)| i + 1)
            .collect();
        let hangs: Vec<usize> = fired
            .iter()
            .enumerate()
            .filter(|(_, f)| f.1)
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(panics, vec![4, 8, 12]);
        assert_eq!(hangs, vec![6, 12]);
    }

    #[test]
    fn every_nth_ring_decision_fires_and_replays() {
        let plan = FaultPlan::new(FaultConfig {
            ring_full_every: 3,
            doorbell_lost_every: 2,
            ..FaultConfig::default()
        });
        let fulls: Vec<bool> = (0..9).map(|_| plan.ring_full("ring")).collect();
        let losses: Vec<bool> = (0..6).map(|_| plan.lose_doorbell("ring")).collect();
        assert_eq!(
            fulls,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(losses, vec![false, true, false, true, false, true]);
        assert_eq!(plan.event_count(), 6);

        // Recorded decisions replay identically under an all-zero config.
        let session = replay::Session::recorder();
        let rec = FaultPlan::new(FaultConfig {
            ring_full_every: 3,
            doorbell_lost_every: 2,
            ..FaultConfig::default()
        });
        rec.attach_replay(&session);
        let rec_fulls: Vec<bool> = (0..9).map(|_| rec.ring_full("ring")).collect();
        let rec_losses: Vec<bool> = (0..6).map(|_| rec.lose_doorbell("ring")).collect();
        let log = session.finish();
        let replayer = replay::Session::replayer(&log);
        let replan = FaultPlan::new(FaultConfig::default());
        replan.attach_replay(&replayer);
        let re_fulls: Vec<bool> = (0..9).map(|_| replan.ring_full("ring")).collect();
        let re_losses: Vec<bool> = (0..6).map(|_| replan.lose_doorbell("ring")).collect();
        assert_eq!(rec_fulls, re_fulls);
        assert_eq!(rec_losses, re_losses);
        assert_eq!(rec.events(), replan.events());
        assert!(replayer.divergence().is_none());
        assert_eq!(replayer.unconsumed(), 0);
    }

    #[test]
    fn termination_fires_exactly_once() {
        let plan = FaultPlan::new(FaultConfig {
            terminate_server_after: 3,
            ..FaultConfig::default()
        });
        let terms: Vec<bool> = (0..10)
            .map(|_| plan.dispatch_fault("d").terminate_server)
            .collect();
        assert_eq!(terms.iter().filter(|&&t| t).count(), 1);
        assert!(terms[2], "fires on the 3rd dispatch");
    }

    #[test]
    fn certain_loss_gives_up_after_max_retransmissions() {
        let plan = FaultPlan::new(FaultConfig {
            packet_loss: 1.0,
            ..FaultConfig::default()
        });
        let fate = plan.packet_fate("net");
        assert!(fate.lost_forever);
        assert_eq!(fate.retransmissions, MAX_RETRANSMISSIONS);
        assert_eq!(
            plan.events()[0].kind,
            FaultKind::PacketLost,
            "loss is logged"
        );
    }

    #[test]
    fn hang_gate_release_is_sticky() {
        let plan = FaultPlan::new(FaultConfig {
            server_hang_every: 1,
            ..FaultConfig::default()
        });
        let p = Arc::clone(&plan);
        let t = std::thread::spawn(move || p.wait_while_hung());
        std::thread::sleep(std::time::Duration::from_millis(10));
        plan.release_hangs();
        t.join().unwrap();
        // Sticky: later waits return immediately.
        plan.wait_while_hung();
    }

    #[test]
    fn retransmission_cost_accumulates() {
        let fate = PacketFate {
            retransmissions: 2,
            delay_us: 100,
            ..PacketFate::default()
        };
        assert_eq!(
            FaultPlan::retransmission_cost(&fate, Nanos::from_micros(1250)),
            Nanos::from_micros(2600)
        );
    }

    #[test]
    fn pack_unpack_round_trip() {
        let d = DispatchFault {
            delay_us: 12345,
            terminate_server: true,
            hang: false,
            panic: true,
        };
        assert_eq!(DispatchFault::unpack(d.pack()), d);
        let p = PacketFate {
            retransmissions: 3,
            lost_forever: false,
            duplicated: true,
            delay_us: 777,
        };
        assert_eq!(PacketFate::unpack(p.pack()), p);
    }

    #[test]
    fn recorded_decisions_replay_identically_under_a_different_config() {
        let config = FaultConfig {
            seed: 11,
            packet_loss: 0.4,
            packet_dup: 0.2,
            packet_delay_prob: 0.2,
            packet_delay_us: 30,
            server_panic_every: 3,
            forge_binding_every: 4,
            dispatch_delay_us: 2,
            ..FaultConfig::default()
        };
        let session = replay::Session::recorder();
        let plan = FaultPlan::new(config);
        plan.attach_replay(&session);
        let fates: Vec<PacketFate> = (0..40).map(|_| plan.packet_fate("net")).collect();
        let dispatches: Vec<DispatchFault> =
            (0..12).map(|_| plan.dispatch_fault("dispatch")).collect();
        let forges: Vec<bool> = (0..12).map(|_| plan.forge_binding("call")).collect();
        let log = session.finish();

        // Replay answers every decision from the log: a default (all-zero)
        // config reproduces the exact fates, events and digest.
        let replayer = replay::Session::replayer(&log);
        let replan = FaultPlan::new(FaultConfig::default());
        replan.attach_replay(&replayer);
        let refates: Vec<PacketFate> = (0..40).map(|_| replan.packet_fate("net")).collect();
        let redispatches: Vec<DispatchFault> =
            (0..12).map(|_| replan.dispatch_fault("dispatch")).collect();
        let reforges: Vec<bool> = (0..12).map(|_| replan.forge_binding("call")).collect();
        assert_eq!(fates, refates);
        assert_eq!(dispatches, redispatches);
        assert_eq!(forges, reforges);
        assert_eq!(plan.events(), replan.events());
        assert_eq!(plan.digest(), replan.digest());
        assert!(replayer.divergence().is_none());
        assert_eq!(replayer.unconsumed(), 0);
    }

    #[test]
    fn replay_detects_an_extra_decision() {
        let session = replay::Session::recorder();
        let plan = FaultPlan::new(FaultConfig {
            seed: 5,
            server_panic_every: 2,
            ..FaultConfig::default()
        });
        plan.attach_replay(&session);
        plan.dispatch_fault("dispatch");
        plan.dispatch_fault("dispatch");
        let log = session.finish();

        let replayer = replay::Session::replayer(&log);
        let replan = FaultPlan::new(FaultConfig::default());
        replan.attach_replay(&replayer);
        replan.dispatch_fault("dispatch");
        replan.dispatch_fault("dispatch");
        replan.dispatch_fault("dispatch"); // one more than recorded
        let d = replayer.divergence().expect("extra decision diverges");
        assert_eq!(d.site, "fault:dispatch");
        assert_eq!(d.seq, 2);
        assert!(d.expected.is_none(), "stream exhausted");
    }

    #[test]
    fn quiescent_recording_still_logs_default_decisions() {
        // A quiescent config short-circuits live, but under a recorder it
        // must still emit one event per decision so the replay cursor
        // stays aligned with the recorded stream.
        let session = replay::Session::recorder();
        let plan = FaultPlan::new(FaultConfig::default());
        plan.attach_replay(&session);
        assert_eq!(plan.dispatch_fault("d"), DispatchFault::default());
        assert_eq!(plan.packet_fate("n"), PacketFate::default());
        assert!(!plan.forge_binding("c"));
        let log = session.finish();
        assert_eq!(log.total_events(), 3);
        assert_eq!(plan.event_count(), 0, "no faults were injected");
    }

    #[test]
    fn active_diagnostics_name_the_seed() {
        let config = FaultConfig {
            seed: 424_242,
            server_panic_every: 9,
            ..FaultConfig::default()
        };
        let line = config.diagnostics_line();
        assert!(line.contains("seed=424242"), "got: {line}");
        assert!(line.contains("server_panic_every: 9"), "got: {line}");
        // Constructing the plan registers it globally for the panic hook.
        // (Parallel tests race on the one global slot, so only presence
        // and shape are asserted here, not the exact seed.)
        let _plan = FaultPlan::new(config);
        let active = active_fault_diagnostics().expect("non-quiescent plan registered");
        assert!(
            active.starts_with("fault-plan active: seed="),
            "got: {active}"
        );
    }

    #[test]
    fn events_are_globally_sequenced() {
        let plan = FaultPlan::new(FaultConfig {
            server_panic_every: 1,
            packet_loss: 1.0,
            ..FaultConfig::default()
        });
        plan.dispatch_fault("d");
        plan.packet_fate("n");
        plan.dispatch_fault("d");
        let events = plan.events();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(plan.event_count(), 3);
        assert!(events[0].to_string().starts_with("#0 d"));
    }
}
