//! Execution metering.
//!
//! A [`Meter`] records where simulated time goes during a call: one
//! [`Segment`] per charged phase, optionally attributed to a named lock
//! when the time was spent inside a critical section. The meter is what
//! regenerates the paper's Table 5 (time breakdown of the Null LRPC) and
//! the Section 3.4 claim that A-stack queue operations are under 2 % of
//! call time.

use std::cell::Cell;
use std::collections::BTreeMap;

use crate::time::Nanos;

// ---------------------------------------------------------------------
// Lock-acquisition accounting.
// ---------------------------------------------------------------------
//
// Section 3.4's "design for concurrency" claim is structural: the only
// things an LRPC may serialize on are per-binding A-stack queues and the
// memory bus — never a process-global lock (that is the SRC RPC
// anti-pattern that flattens Figure 2 at ~4,000 calls/s). The counters
// below let tests *prove* the property on the real host-thread call path
// instead of asserting it in prose.
//
// Taxonomy (who calls what):
//
// * `note_global_lock` — acquisitions of process-global locks: tables
//   keyed by the whole machine/kernel/runtime (kernel domain and thread
//   tables, the physical-memory region list, the name server, the
//   runtime's E-stack map and fault/remote cells).
// * `note_sharded_lock` — acquisitions of per-shard / per-queue / per-pool
//   primitives that partition a logically global structure (handle-table
//   shards, A-stack wait queues, per-server E-stack pools). These are the
//   primitives the paper permits on the critical path.
// * Per-object locks (one thread's TCB, one region's bytes, one domain's
//   mapping table, one CPU's TLB) are not counted: they shard perfectly by
//   construction and cannot globally serialize independent calls.
//
// Counters are thread-local on purpose: a call executes on one host
// thread, so the fast-path assertion ("this Null call acquired zero
// global locks") must not observe locks taken by unrelated concurrently
// running tests or threads.

thread_local! {
    static GLOBAL_LOCK_ACQS: Cell<u64> = const { Cell::new(0) };
    static SHARDED_LOCK_ACQS: Cell<u64> = const { Cell::new(0) };
}

/// Records that the current thread acquired a process-global lock.
#[inline]
pub fn note_global_lock() {
    GLOBAL_LOCK_ACQS.with(|c| c.set(c.get() + 1));
}

/// Records that the current thread acquired a per-shard / per-queue
/// primitive partitioning a logically global structure.
#[inline]
pub fn note_sharded_lock() {
    SHARDED_LOCK_ACQS.with(|c| c.set(c.get() + 1));
}

/// Process-global lock acquisitions performed by the current thread.
pub fn global_locks_on_thread() -> u64 {
    GLOBAL_LOCK_ACQS.with(Cell::get)
}

/// Sharded lock acquisitions performed by the current thread.
pub fn sharded_locks_on_thread() -> u64 {
    SHARDED_LOCK_ACQS.with(Cell::get)
}

/// A scoped tally of lock acquisitions on the current thread.
///
/// ```
/// use firefly::meter::LockTally;
/// let tally = LockTally::begin();
/// // ... run the code under scrutiny on this thread ...
/// assert_eq!(tally.global_delta(), 0, "fast path must stay lock-free");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LockTally {
    global_start: u64,
    sharded_start: u64,
}

impl LockTally {
    /// Starts a tally at the current thread's counters.
    pub fn begin() -> LockTally {
        LockTally {
            global_start: global_locks_on_thread(),
            sharded_start: sharded_locks_on_thread(),
        }
    }

    /// Process-global lock acquisitions since `begin` on this thread.
    pub fn global_delta(&self) -> u64 {
        global_locks_on_thread() - self.global_start
    }

    /// Sharded lock acquisitions since `begin` on this thread.
    pub fn sharded_delta(&self) -> u64 {
        sharded_locks_on_thread() - self.sharded_start
    }
}

/// The phase of a call a charged cost belongs to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Phase {
    /// The formal procedure call into the client stub (and its returns).
    ProcedureCall,
    /// Client stub execution (both call and return halves).
    ClientStub,
    /// Kernel trap entry or exit.
    Trap,
    /// Kernel transfer path: validation and linkage management.
    KernelTransfer,
    /// Virtual-memory context switch (including TLB invalidation).
    ContextSwitch,
    /// Idle-processor exchange in place of a context switch.
    ProcessorExchange,
    /// Server stub execution (entry and return halves).
    ServerStub,
    /// The body of the server procedure itself.
    ServerProcedure,
    /// Argument/result byte copying and per-argument stub operations.
    ArgCopy,
    /// A-stack free-queue operations.
    QueueOp,
    /// Marshaling of complex values (the Modula2+ fallback path, and all
    /// of conventional RPC's stub work).
    Marshal,
    /// Message buffer allocation, management and flow control.
    BufferManagement,
    /// Enqueue/dequeue and copying of messages between domains.
    MessageTransfer,
    /// Receiver-side message interpretation and thread dispatch.
    Dispatch,
    /// Blocking the client's concrete thread and selecting a server thread.
    Scheduling,
    /// Access validation of the message sender.
    Validation,
    /// Simulated network transmission (cross-machine calls only).
    Network,
    /// Time spent waiting for a contended resource.
    Wait,
    /// Anything else.
    Other,
}

impl Phase {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::ProcedureCall => "procedure call",
            Phase::ClientStub => "client stub",
            Phase::Trap => "kernel trap",
            Phase::KernelTransfer => "kernel transfer",
            Phase::ContextSwitch => "context switch",
            Phase::ProcessorExchange => "processor exchange",
            Phase::ServerStub => "server stub",
            Phase::ServerProcedure => "server procedure",
            Phase::ArgCopy => "argument copy",
            Phase::QueueOp => "A-stack queue op",
            Phase::Marshal => "marshaling",
            Phase::BufferManagement => "buffer management",
            Phase::MessageTransfer => "message transfer",
            Phase::Dispatch => "dispatch",
            Phase::Scheduling => "scheduling",
            Phase::Validation => "access validation",
            Phase::Network => "network",
            Phase::Wait => "wait",
            Phase::Other => "other",
        }
    }
}

/// One contiguous charged span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// What the time was spent on.
    pub phase: Phase,
    /// How long.
    pub dur: Nanos,
    /// Name of the lock held while this time was spent, if any.
    pub lock: Option<&'static str>,
}

/// A recorder of charged time.
///
/// A disabled meter (the default for throughput loops) skips all recording;
/// charging the CPU clock is independent of the meter.
#[derive(Debug, Default)]
pub struct Meter {
    enabled: bool,
    segments: Vec<Segment>,
    tlb_misses: u64,
}

impl Meter {
    /// A recording meter.
    pub fn enabled() -> Meter {
        Meter {
            enabled: true,
            segments: Vec::new(),
            tlb_misses: 0,
        }
    }

    /// A non-recording meter (all record calls are no-ops).
    pub fn disabled() -> Meter {
        Meter::default()
    }

    /// True if this meter records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a charged span.
    pub fn record(&mut self, phase: Phase, dur: Nanos) {
        self.record_locked(phase, dur, None);
    }

    /// Records a charged span spent holding the named lock.
    pub fn record_locked(&mut self, phase: Phase, dur: Nanos, lock: Option<&'static str>) {
        if self.enabled && !dur.is_zero() {
            self.segments.push(Segment { phase, dur, lock });
        }
    }

    /// Adds TLB misses observed while this meter was active.
    pub fn add_tlb_misses(&mut self, n: u64) {
        if self.enabled {
            self.tlb_misses += n;
        }
    }

    /// TLB misses observed.
    pub fn tlb_misses(&self) -> u64 {
        self.tlb_misses
    }

    /// All recorded segments, in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total recorded time.
    pub fn total(&self) -> Nanos {
        self.segments.iter().map(|s| s.dur).sum()
    }

    /// Total recorded time in one phase.
    pub fn total_for(&self, phase: Phase) -> Nanos {
        self.segments
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.dur)
            .sum()
    }

    /// Total time spent holding the named lock.
    pub fn total_locked(&self, lock: &str) -> Nanos {
        self.segments
            .iter()
            .filter(|s| s.lock == Some(lock))
            .map(|s| s.dur)
            .sum()
    }

    /// Per-phase totals, sorted by phase.
    pub fn breakdown(&self) -> BTreeMap<Phase, Nanos> {
        let mut out = BTreeMap::new();
        for s in &self.segments {
            *out.entry(s.phase).or_insert(Nanos::ZERO) += s.dur;
        }
        out
    }

    /// Clears all recorded data, keeping the enabled state.
    pub fn reset(&mut self) {
        self.segments.clear();
        self.tlb_misses = 0;
    }

    /// Merges another meter's segments into this one.
    pub fn absorb(&mut self, other: &Meter) {
        if self.enabled {
            self.segments.extend_from_slice(&other.segments);
            self.tlb_misses += other.tlb_misses;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_breakdown() {
        let mut m = Meter::enabled();
        m.record(Phase::Trap, Nanos::from_micros(18));
        m.record(Phase::Trap, Nanos::from_micros(18));
        m.record(Phase::ContextSwitch, Nanos::from_micros(33));
        assert_eq!(m.total(), Nanos::from_micros(69));
        assert_eq!(m.total_for(Phase::Trap), Nanos::from_micros(36));
        assert_eq!(m.breakdown()[&Phase::ContextSwitch], Nanos::from_micros(33));
    }

    #[test]
    fn disabled_meter_records_nothing() {
        let mut m = Meter::disabled();
        m.record(Phase::Trap, Nanos::from_micros(18));
        m.add_tlb_misses(10);
        assert_eq!(m.total(), Nanos::ZERO);
        assert_eq!(m.tlb_misses(), 0);
        assert!(m.segments().is_empty());
    }

    #[test]
    fn lock_attribution() {
        let mut m = Meter::enabled();
        m.record_locked(
            Phase::QueueOp,
            Nanos::from_nanos(1_400),
            Some("astack-queue"),
        );
        m.record_locked(
            Phase::QueueOp,
            Nanos::from_nanos(1_400),
            Some("astack-queue"),
        );
        m.record(Phase::KernelTransfer, Nanos::from_micros(17));
        assert_eq!(m.total_locked("astack-queue"), Nanos::from_nanos(2_800));
        assert_eq!(m.total_locked("global"), Nanos::ZERO);
    }

    #[test]
    fn zero_duration_segments_are_dropped() {
        let mut m = Meter::enabled();
        m.record(Phase::Other, Nanos::ZERO);
        assert!(m.segments().is_empty());
    }

    #[test]
    fn absorb_merges() {
        let mut a = Meter::enabled();
        let mut b = Meter::enabled();
        b.record(Phase::Trap, Nanos::from_micros(18));
        b.add_tlb_misses(3);
        a.absorb(&b);
        assert_eq!(a.total(), Nanos::from_micros(18));
        assert_eq!(a.tlb_misses(), 3);
    }
}
