//! Execution metering.
//!
//! A [`Meter`] records where simulated time goes during a call: one
//! [`Segment`] per charged phase, optionally attributed to a named lock
//! when the time was spent inside a critical section. The meter is what
//! regenerates the paper's Table 5 (time breakdown of the Null LRPC) and
//! the Section 3.4 claim that A-stack queue operations are under 2 % of
//! call time.

use std::collections::BTreeMap;

use crate::time::Nanos;

// Lock-acquisition accounting lives in the `obs` crate (it is shared by
// layers below and above the simulator); re-export it here so existing
// `firefly::meter::note_global_lock()` call sites keep working. See
// `obs::tally` for the global/sharded taxonomy.
pub use obs::tally::{
    global_locks_on_thread, note_global_lock, note_sharded_lock, sharded_locks_on_thread,
};
pub use obs::{LockScope, LockTally, TraceId};

/// The phase of a call a charged cost belongs to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Phase {
    /// The formal procedure call into the client stub (and its returns).
    ProcedureCall,
    /// Client stub execution (both call and return halves).
    ClientStub,
    /// Kernel trap entry or exit.
    Trap,
    /// Kernel transfer path: validation and linkage management.
    KernelTransfer,
    /// Virtual-memory context switch (including TLB invalidation).
    ContextSwitch,
    /// Idle-processor exchange in place of a context switch.
    ProcessorExchange,
    /// Server stub execution (entry and return halves).
    ServerStub,
    /// The body of the server procedure itself.
    ServerProcedure,
    /// Argument/result byte copying and per-argument stub operations.
    ArgCopy,
    /// A-stack free-queue operations.
    QueueOp,
    /// Marshaling of complex values (the Modula2+ fallback path, and all
    /// of conventional RPC's stub work).
    Marshal,
    /// Message buffer allocation, management and flow control.
    BufferManagement,
    /// Enqueue/dequeue and copying of messages between domains.
    MessageTransfer,
    /// Receiver-side message interpretation and thread dispatch.
    Dispatch,
    /// Blocking the client's concrete thread and selecting a server thread.
    Scheduling,
    /// Access validation of the message sender.
    Validation,
    /// Simulated network transmission (cross-machine calls only).
    Network,
    /// Time spent waiting for a contended resource.
    Wait,
    /// Anything else.
    Other,
    /// Per-call out-of-band segment management: mapping, copying into and
    /// unmapping the fallback segment for oversized arguments. (Appended
    /// after `Other` so persisted span codes stay stable.)
    OobSegment,
}

impl Phase {
    /// Every phase, in stable declaration order (code order).
    pub const ALL: [Phase; 20] = [
        Phase::ProcedureCall,
        Phase::ClientStub,
        Phase::Trap,
        Phase::KernelTransfer,
        Phase::ContextSwitch,
        Phase::ProcessorExchange,
        Phase::ServerStub,
        Phase::ServerProcedure,
        Phase::ArgCopy,
        Phase::QueueOp,
        Phase::Marshal,
        Phase::BufferManagement,
        Phase::MessageTransfer,
        Phase::Dispatch,
        Phase::Scheduling,
        Phase::Validation,
        Phase::Network,
        Phase::Wait,
        Phase::Other,
        Phase::OobSegment,
    ];

    /// Stable numeric code used in flight-recorder spans (the `obs` crate
    /// stores phases as raw `u16`s; this is the mapping).
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Inverse of [`Phase::code`]. Unknown codes decode as [`Phase::Other`]
    /// so a flight recorded by a newer build still renders.
    pub fn from_code(code: u16) -> Phase {
        Phase::ALL
            .get(code as usize)
            .copied()
            .unwrap_or(Phase::Other)
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::ProcedureCall => "procedure call",
            Phase::ClientStub => "client stub",
            Phase::Trap => "kernel trap",
            Phase::KernelTransfer => "kernel transfer",
            Phase::ContextSwitch => "context switch",
            Phase::ProcessorExchange => "processor exchange",
            Phase::ServerStub => "server stub",
            Phase::ServerProcedure => "server procedure",
            Phase::ArgCopy => "argument copy",
            Phase::QueueOp => "A-stack queue op",
            Phase::Marshal => "marshaling",
            Phase::BufferManagement => "buffer management",
            Phase::MessageTransfer => "message transfer",
            Phase::Dispatch => "dispatch",
            Phase::Scheduling => "scheduling",
            Phase::Validation => "access validation",
            Phase::Network => "network",
            Phase::Wait => "wait",
            Phase::Other => "other",
            Phase::OobSegment => "oob segment",
        }
    }
}

/// One contiguous charged span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// What the time was spent on.
    pub phase: Phase,
    /// How long.
    pub dur: Nanos,
    /// Name of the lock held while this time was spent, if any.
    pub lock: Option<&'static str>,
}

/// A recorder of charged time.
///
/// A disabled meter (the default for throughput loops) skips all segment
/// recording; charging the CPU clock is independent of the meter.
///
/// Orthogonally to the segment list, a meter stamped with a [`TraceId`]
/// mirrors every `record_*span` call into the process flight recorder
/// ([`obs::flight`]) when that recorder is enabled — including on
/// *disabled* meters, so throughput loops can be flight-recorded without
/// paying for per-call segment vectors. When the recorder is off the
/// extra cost is one atomic load per record.
#[derive(Debug, Default)]
pub struct Meter {
    enabled: bool,
    segments: Vec<Segment>,
    tlb_misses: u64,
    trace: TraceId,
}

impl Meter {
    /// A recording meter.
    pub fn enabled() -> Meter {
        Meter {
            enabled: true,
            ..Meter::default()
        }
    }

    /// A non-recording meter (all record calls are no-ops).
    pub fn disabled() -> Meter {
        Meter::default()
    }

    /// True if this meter records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Stamps the call identity under which spans are emitted to the
    /// flight recorder. A meter with the default [`TraceId::NONE`] never
    /// emits flight spans.
    pub fn set_trace(&mut self, trace: TraceId) {
        self.trace = trace;
    }

    /// The call identity this meter is stamped with.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// Records a charged span.
    pub fn record(&mut self, phase: Phase, dur: Nanos) {
        self.record_locked(phase, dur, None);
    }

    /// Records a charged span spent holding the named lock.
    pub fn record_locked(&mut self, phase: Phase, dur: Nanos, lock: Option<&'static str>) {
        if self.enabled && !dur.is_zero() {
            self.segments.push(Segment { phase, dur, lock });
        }
    }

    /// Records a charged span and mirrors it into the flight recorder.
    ///
    /// `now` is the virtual time *after* the charge (i.e. the span's end
    /// instant, typically `cpu.now()` right after `cpu.charge(dur)`); the
    /// span's start is reconstructed as `now - dur`. Recording charges no
    /// virtual time itself.
    pub fn record_span(&mut self, phase: Phase, dur: Nanos, now: Nanos) {
        self.record_locked_span(phase, dur, None, now);
    }

    /// [`Meter::record_span`] with lock attribution.
    pub fn record_locked_span(
        &mut self,
        phase: Phase,
        dur: Nanos,
        lock: Option<&'static str>,
        now: Nanos,
    ) {
        self.record_locked(phase, dur, lock);
        if self.trace.is_some() && !dur.is_zero() && obs::flight::is_enabled() {
            let start = now.saturating_sub(dur);
            obs::flight::record(self.trace, phase.code(), start.as_nanos(), dur.as_nanos());
        }
    }

    /// Adds TLB misses observed while this meter was active.
    pub fn add_tlb_misses(&mut self, n: u64) {
        if self.enabled {
            self.tlb_misses += n;
        }
    }

    /// TLB misses observed.
    pub fn tlb_misses(&self) -> u64 {
        self.tlb_misses
    }

    /// All recorded segments, in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total recorded time.
    pub fn total(&self) -> Nanos {
        self.segments.iter().map(|s| s.dur).sum()
    }

    /// Total recorded time in one phase.
    pub fn total_for(&self, phase: Phase) -> Nanos {
        self.segments
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.dur)
            .sum()
    }

    /// Total time spent holding the named lock.
    pub fn total_locked(&self, lock: &str) -> Nanos {
        self.segments
            .iter()
            .filter(|s| s.lock == Some(lock))
            .map(|s| s.dur)
            .sum()
    }

    /// Per-phase totals, sorted by phase.
    pub fn breakdown(&self) -> BTreeMap<Phase, Nanos> {
        let mut out = BTreeMap::new();
        for s in &self.segments {
            *out.entry(s.phase).or_insert(Nanos::ZERO) += s.dur;
        }
        out
    }

    /// Clears all recorded data, keeping the enabled state.
    pub fn reset(&mut self) {
        self.segments.clear();
        self.tlb_misses = 0;
    }

    /// Merges another meter's segments into this one.
    pub fn absorb(&mut self, other: &Meter) {
        if self.enabled {
            self.segments.extend_from_slice(&other.segments);
            self.tlb_misses += other.tlb_misses;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_breakdown() {
        let mut m = Meter::enabled();
        m.record(Phase::Trap, Nanos::from_micros(18));
        m.record(Phase::Trap, Nanos::from_micros(18));
        m.record(Phase::ContextSwitch, Nanos::from_micros(33));
        assert_eq!(m.total(), Nanos::from_micros(69));
        assert_eq!(m.total_for(Phase::Trap), Nanos::from_micros(36));
        assert_eq!(m.breakdown()[&Phase::ContextSwitch], Nanos::from_micros(33));
    }

    #[test]
    fn disabled_meter_records_nothing() {
        let mut m = Meter::disabled();
        m.record(Phase::Trap, Nanos::from_micros(18));
        m.add_tlb_misses(10);
        assert_eq!(m.total(), Nanos::ZERO);
        assert_eq!(m.tlb_misses(), 0);
        assert!(m.segments().is_empty());
    }

    #[test]
    fn lock_attribution() {
        let mut m = Meter::enabled();
        m.record_locked(
            Phase::QueueOp,
            Nanos::from_nanos(1_400),
            Some("astack-queue"),
        );
        m.record_locked(
            Phase::QueueOp,
            Nanos::from_nanos(1_400),
            Some("astack-queue"),
        );
        m.record(Phase::KernelTransfer, Nanos::from_micros(17));
        assert_eq!(m.total_locked("astack-queue"), Nanos::from_nanos(2_800));
        assert_eq!(m.total_locked("global"), Nanos::ZERO);
    }

    #[test]
    fn zero_duration_segments_are_dropped() {
        let mut m = Meter::enabled();
        m.record(Phase::Other, Nanos::ZERO);
        assert!(m.segments().is_empty());
    }

    #[test]
    fn phase_codes_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_code(p.code()), p);
        }
        assert_eq!(Phase::from_code(999), Phase::Other);
    }

    /// Serializes tests that toggle the process-wide flight recorder so a
    /// concurrent `disable()` can't swallow another test's spans.
    static FLIGHT_TOGGLE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn traced_meter_mirrors_spans_into_flight_recorder() {
        let _serial = FLIGHT_TOGGLE.lock().unwrap();
        // Private thread: the thread-local ring belongs to this test alone.
        std::thread::spawn(|| {
            obs::flight::enable();
            let trace = TraceId::next();
            let mut m = Meter::disabled();
            m.set_trace(trace);
            m.record_span(Phase::Trap, Nanos::from_micros(18), Nanos::from_micros(20));
            obs::flight::disable();
            assert!(m.segments().is_empty(), "disabled meter keeps no segments");
            let spans = obs::flight::spans_for(trace);
            assert_eq!(spans.len(), 1, "flight capture is independent of enable");
            assert_eq!(spans[0].phase, Phase::Trap.code());
            assert_eq!(spans[0].start_ns, 2_000, "start = now - dur");
            assert_eq!(spans[0].dur_ns, 18_000);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn untraced_meter_stays_out_of_flight_recorder() {
        let _serial = FLIGHT_TOGGLE.lock().unwrap();
        std::thread::spawn(|| {
            obs::flight::enable();
            let mut m = Meter::enabled();
            m.record_span(Phase::Trap, Nanos::from_micros(18), Nanos::from_micros(18));
            obs::flight::disable();
            assert_eq!(m.total_for(Phase::Trap), Nanos::from_micros(18));
            assert!(obs::flight::spans_for(TraceId::NONE).is_empty());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn absorb_merges() {
        let mut a = Meter::enabled();
        let mut b = Meter::enabled();
        b.record(Phase::Trap, Nanos::from_micros(18));
        b.add_tlb_misses(3);
        a.absorb(&b);
        assert_eq!(a.total(), Nanos::from_micros(18));
        assert_eq!(a.tlb_misses(), 3);
    }
}
