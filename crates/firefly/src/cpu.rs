//! Simulated processors and the machine that hosts them.
//!
//! Each [`Cpu`] carries a virtual clock (nanoseconds since power-on), a TLB
//! and the id of the virtual-memory context currently loaded in its mapping
//! registers. A CPU may also be *idling in a domain's context* — the state
//! the idle-processor optimization of Section 3.4 looks for: "When a call
//! is made, the kernel checks for a processor idling in the context of the
//! server domain."
//!
//! The [`Machine`] owns the CPUs, the physical memory, the VM contexts and
//! the cost model, and provides the protection-checked, TLB-touching memory
//! access path used by all higher layers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::cost::CostModel;
use crate::error::MemFault;
use crate::mem::{PhysMem, Region};
use crate::meter::{Meter, Phase};
use crate::time::Nanos;
use crate::tlb::{Tlb, TlbMode};
use crate::vm::{ContextId, VmContext};

/// One simulated processor.
pub struct Cpu {
    id: usize,
    vclock: AtomicU64,
    tlb: Mutex<Tlb>,
    current_ctx: AtomicU64,
    /// Context id the CPU spins idle in (waiting to be claimed by a call
    /// into that domain), or [`NO_IDLE_CTX`] when not idling. Kept as a
    /// bare atomic so the idle-processor probe on the call fast path is a
    /// single compare-exchange, never a lock.
    idle_in: AtomicU64,
    /// Record/replay stream for this CPU's virtual-clock advances
    /// (`clock:cpu{id}`). Empty in live mode, so the steady path pays one
    /// `OnceLock::get` (a plain load) and nothing else.
    rr: OnceLock<replay::Handle>,
}

/// Sentinel for "not idling". Context ids are allocated from a counter
/// starting at 0, so `u64::MAX` can never collide with a real context.
const NO_IDLE_CTX: u64 = u64::MAX;

impl Cpu {
    fn new(id: usize, tlb_mode: TlbMode) -> Cpu {
        Cpu {
            id,
            vclock: AtomicU64::new(0),
            tlb: Mutex::new(Tlb::new(tlb_mode, 256)),
            current_ctx: AtomicU64::new(ContextId::KERNEL.0),
            idle_in: AtomicU64::new(NO_IDLE_CTX),
            rr: OnceLock::new(),
        }
    }

    /// The CPU's index within the machine.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current virtual time on this CPU.
    pub fn now(&self) -> Nanos {
        Nanos::from_nanos(self.vclock.load(Ordering::Acquire))
    }

    /// Advances the virtual clock by `dur`.
    pub fn charge(&self, dur: Nanos) {
        self.vclock.fetch_add(dur.as_nanos(), Ordering::AcqRel);
        if let Some(h) = self.rr.get() {
            h.emit(replay::kind::CLOCK_CHARGE, dur.as_nanos());
        }
    }

    /// Advances the virtual clock to at least `t` (used when a thread
    /// migrates to this CPU or waits for a resource freed at `t`).
    pub fn advance_to(&self, t: Nanos) {
        self.vclock.fetch_max(t.as_nanos(), Ordering::AcqRel);
        if let Some(h) = self.rr.get() {
            h.emit(replay::kind::CLOCK_ADVANCE, t.as_nanos());
        }
    }

    /// Resets the clock to zero (between experiments).
    pub fn reset_clock(&self) {
        self.vclock.store(0, Ordering::Release);
    }

    /// The context currently loaded in the mapping registers.
    pub fn current_context(&self) -> ContextId {
        ContextId(self.current_ctx.load(Ordering::Acquire))
    }

    /// Loads `ctx` into the mapping registers, charging one context-switch
    /// cost and invalidating the TLB (unless tagged).
    ///
    /// A switch to the already-loaded context is free — the kernel checks
    /// before reloading.
    pub fn switch_context(&self, ctx: ContextId, cost: &CostModel, meter: &mut Meter) {
        if self.current_context() == ctx {
            return;
        }
        self.charge(cost.hw.context_switch);
        meter.record_span(Phase::ContextSwitch, cost.hw.context_switch, self.now());
        self.tlb.lock().on_context_switch();
        self.current_ctx.store(ctx.0, Ordering::Release);
    }

    /// Loads `ctx` without charging (processor-exchange path: the context
    /// is already loaded on the CPU being claimed; this is used to restore
    /// bookkeeping, not to model a hardware reload).
    pub fn set_context_free(&self, ctx: ContextId) {
        self.current_ctx.store(ctx.0, Ordering::Release);
    }

    /// Touches pages through the TLB in the current context; returns the
    /// number of misses and reports them to the meter.
    pub fn touch_pages(
        &self,
        pages: impl IntoIterator<Item = crate::mem::PageId>,
        meter: &mut Meter,
    ) -> u64 {
        let ctx = self.current_context();
        let mut tlb = self.tlb.lock();
        let mut misses = 0;
        for p in pages {
            if tlb.touch(ctx, p) {
                misses += 1;
            }
        }
        drop(tlb);
        meter.add_tlb_misses(misses);
        misses
    }

    /// Marks the CPU as idling in `ctx` (or not idling, with `None`).
    pub fn set_idle_in(&self, ctx: Option<ContextId>) {
        match ctx {
            Some(c) => {
                self.idle_in.store(c.0, Ordering::SeqCst);
                self.current_ctx.store(c.0, Ordering::Release);
            }
            None => self.idle_in.store(NO_IDLE_CTX, Ordering::SeqCst),
        }
    }

    /// The context the CPU is idling in, if any.
    pub fn idle_in(&self) -> Option<ContextId> {
        match self.idle_in.load(Ordering::SeqCst) {
            NO_IDLE_CTX => None,
            ctx => Some(ContextId(ctx)),
        }
    }

    /// Atomically claims this CPU if it is idling in `ctx`; on success the
    /// CPU stops idling and `true` is returned. Lock-free: a single
    /// compare-exchange, so concurrent callers race for the claim and
    /// exactly one wins.
    pub fn try_claim_idle(&self, ctx: ContextId) -> bool {
        self.idle_in
            .compare_exchange(ctx.0, NO_IDLE_CTX, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
    }

    /// Lifetime TLB miss count for this CPU.
    pub fn tlb_misses(&self) -> u64 {
        self.tlb.lock().misses()
    }

    /// Lifetime TLB hit count for this CPU.
    pub fn tlb_hits(&self) -> u64 {
        self.tlb.lock().hits()
    }

    /// Resets the CPU's TLB statistics.
    pub fn reset_tlb_stats(&self) {
        self.tlb.lock().reset_stats();
    }
}

impl core::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Cpu")
            .field("id", &self.id)
            .field("now", &self.now())
            .field("ctx", &self.current_context())
            .finish()
    }
}

/// The simulated multiprocessor.
pub struct Machine {
    cost: CostModel,
    tlb_mode: TlbMode,
    cpus: Vec<Cpu>,
    mem: PhysMem,
    next_ctx: AtomicU64,
    contexts: Mutex<HashMap<ContextId, Arc<VmContext>>>,
    /// Record/replay session attached to this machine (never set in live
    /// mode; see [`Machine::attach_replay`]).
    rr_session: OnceLock<Arc<replay::Session>>,
    /// Stream for idle-CPU claim outcomes (`sched:idle-claim`).
    rr_claim: OnceLock<replay::Handle>,
}

impl Machine {
    /// Builds a machine with `n_cpus` processors, an untagged
    /// (invalidate-on-switch) TLB and the given cost model.
    pub fn new(n_cpus: usize, cost: CostModel) -> Arc<Machine> {
        Machine::with_tlb_mode(n_cpus, cost, TlbMode::InvalidateOnSwitch)
    }

    /// Builds a machine with an explicit TLB mode (the tagged mode is used
    /// by the Section 3.4 ablation).
    pub fn with_tlb_mode(n_cpus: usize, cost: CostModel, tlb_mode: TlbMode) -> Arc<Machine> {
        let n = n_cpus.max(1);
        let kernel_ctx = Arc::new(VmContext::new(ContextId::KERNEL));
        let mut contexts = HashMap::new();
        contexts.insert(ContextId::KERNEL, kernel_ctx);
        Arc::new(Machine {
            cost,
            tlb_mode,
            cpus: (0..n).map(|i| Cpu::new(i, tlb_mode)).collect(),
            mem: PhysMem::new(),
            next_ctx: AtomicU64::new(1),
            contexts: Mutex::new(contexts),
            rr_session: OnceLock::new(),
            rr_claim: OnceLock::new(),
        })
    }

    /// Attaches a record/replay session: every CPU's clock advances and
    /// every idle-claim outcome flow through the session's streams from
    /// now on. A live session is not attached at all (the `OnceLock`s
    /// stay empty and the hot path stays untouched); a second attach is
    /// ignored.
    pub fn attach_replay(&self, session: &Arc<replay::Session>) {
        if session.is_live() || self.rr_session.get().is_some() {
            return;
        }
        let _ = self.rr_session.set(Arc::clone(session));
        for cpu in &self.cpus {
            let _ = cpu.rr.set(session.stream(&format!("clock:cpu{}", cpu.id)));
        }
        let _ = self.rr_claim.set(session.stream("sched:idle-claim"));
    }

    /// The attached record/replay session, if any.
    pub fn replay_session(&self) -> Option<&Arc<replay::Session>> {
        self.rr_session.get()
    }

    /// A convenient single-CPU C-VAX Firefly.
    pub fn cvax_uniprocessor() -> Arc<Machine> {
        Machine::new(1, CostModel::cvax_firefly())
    }

    /// The four-CPU C-VAX Firefly used throughout the paper's Section 4.
    pub fn cvax_firefly() -> Arc<Machine> {
        Machine::new(4, CostModel::cvax_firefly())
    }

    /// The machine's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The TLB mode the machine was built with.
    pub fn tlb_mode(&self) -> TlbMode {
        self.tlb_mode
    }

    /// Number of processors.
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// One processor by index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_cpus()`; CPU indices come from the machine
    /// itself, so an out-of-range index is a caller bug.
    pub fn cpu(&self, i: usize) -> &Cpu {
        &self.cpus[i]
    }

    /// All processors.
    pub fn cpus(&self) -> &[Cpu] {
        &self.cpus
    }

    /// The physical memory.
    pub fn mem(&self) -> &PhysMem {
        &self.mem
    }

    /// Creates a fresh, empty VM context (one per protection domain).
    pub fn create_context(&self) -> Arc<VmContext> {
        let id = ContextId(self.next_ctx.fetch_add(1, Ordering::Relaxed));
        let ctx = Arc::new(VmContext::new(id));
        crate::meter::note_global_lock();
        self.contexts.lock().insert(id, Arc::clone(&ctx));
        ctx
    }

    /// Looks up a context by id.
    pub fn context(&self, id: ContextId) -> Option<Arc<VmContext>> {
        crate::meter::note_global_lock();
        self.contexts.lock().get(&id).cloned()
    }

    /// Destroys a context (domain termination).
    pub fn destroy_context(&self, id: ContextId) {
        if id != ContextId::KERNEL {
            crate::meter::note_global_lock();
            self.contexts.lock().remove(&id);
        }
    }

    /// Protection-checked write of `data` into `region` at `offset` by code
    /// running on `cpu` in `ctx`.
    ///
    /// Touches the covered pages through the CPU's TLB. Byte-copy *time* is
    /// charged by the caller's copy engine, not here, so that transports
    /// can attribute it to the right phase.
    #[expect(clippy::too_many_arguments)]
    pub fn write_mem(
        &self,
        cpu: &Cpu,
        ctx: &VmContext,
        region: &Region,
        offset: usize,
        data: &[u8],
        kernel_mode: bool,
        meter: &mut Meter,
    ) -> Result<(), MemFault> {
        ctx.check(region.id(), true, kernel_mode)?;
        cpu.touch_pages(region.pages_for(offset, data.len()), meter);
        region.write_raw(offset, data)
    }

    /// Protection-checked read; see [`Machine::write_mem`].
    #[expect(clippy::too_many_arguments)]
    pub fn read_mem(
        &self,
        cpu: &Cpu,
        ctx: &VmContext,
        region: &Region,
        offset: usize,
        buf: &mut [u8],
        kernel_mode: bool,
        meter: &mut Meter,
    ) -> Result<(), MemFault> {
        ctx.check(region.id(), false, kernel_mode)?;
        cpu.touch_pages(region.pages_for(offset, buf.len()), meter);
        region.read_raw(offset, buf)
    }

    /// Finds and claims a CPU idling in `ctx`, if any (the idle-processor
    /// optimization's probe). Returns the claimed CPU's index.
    ///
    /// Candidates are tried most-recently-idled first (a LIFO idle queue):
    /// the processor that went idle last has the warmest cache/TLB in
    /// `ctx`, and claiming it forfeits the least idle headroom — the
    /// longer-idle processors stay available for fresh dispatches.
    pub fn claim_idle_cpu_in(&self, ctx: ContextId) -> Option<usize> {
        // The probe sits on the steady-state call path, which promises
        // zero heap allocations — so no candidate Vec. Scan for the
        // warmest still-idle candidate (ties toward the lowest CPU id,
        // matching the stable sort this replaces) and retry on a lost
        // race; the loop is bounded because every lost claim means some
        // other caller consumed that processor.
        let mut claimed = None;
        for _ in 0..self.cpus.len() {
            let Some(best) = self
                .cpus
                .iter()
                .filter(|c| c.idle_in() == Some(ctx))
                .max_by_key(|c| (c.now(), std::cmp::Reverse(c.id())))
            else {
                break;
            };
            if best.try_claim_idle(ctx) {
                claimed = Some(best.id());
                break;
            }
        }
        if let Some(h) = self.rr_claim.get() {
            h.emit(
                replay::kind::IDLE_CLAIM,
                claimed.map_or(0, |i| i as u64 + 1),
            );
        }
        claimed
    }

    /// The latest virtual time across all CPUs — the wall-clock span of a
    /// multiprocessor run (each CPU's clock only ever moves forward).
    pub fn max_now(&self) -> Nanos {
        self.cpus
            .iter()
            .map(Cpu::now)
            .max()
            .unwrap_or(Nanos::from_nanos(0))
    }

    /// Resets all CPU clocks and TLB statistics (between experiments).
    pub fn reset_clocks(&self) {
        for c in &self.cpus {
            c.reset_clock();
            c.reset_tlb_stats();
        }
    }
}

impl core::fmt::Debug for Machine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Machine")
            .field("cost", &self.cost.name)
            .field("cpus", &self.cpus.len())
            .field("regions", &self.mem.region_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::Protection;

    #[test]
    fn clock_charges_accumulate() {
        let m = Machine::cvax_uniprocessor();
        let cpu = m.cpu(0);
        cpu.charge(Nanos::from_micros(18));
        cpu.charge(Nanos::from_micros(33));
        assert_eq!(cpu.now(), Nanos::from_micros(51));
        cpu.advance_to(Nanos::from_micros(40));
        assert_eq!(
            cpu.now(),
            Nanos::from_micros(51),
            "advance_to never goes backwards"
        );
        cpu.advance_to(Nanos::from_micros(60));
        assert_eq!(cpu.now(), Nanos::from_micros(60));
    }

    #[test]
    fn context_switch_charges_and_invalidates() {
        let m = Machine::cvax_uniprocessor();
        let cpu = m.cpu(0);
        let ctx = m.create_context();
        let mut meter = Meter::enabled();
        cpu.switch_context(ctx.id(), m.cost(), &mut meter);
        assert_eq!(cpu.now(), m.cost().hw.context_switch);
        assert_eq!(
            meter.total_for(Phase::ContextSwitch),
            m.cost().hw.context_switch
        );
        // Switching to the same context is free.
        cpu.switch_context(ctx.id(), m.cost(), &mut meter);
        assert_eq!(cpu.now(), m.cost().hw.context_switch);
    }

    #[test]
    fn checked_memory_access_respects_protection() {
        let m = Machine::cvax_uniprocessor();
        let cpu = m.cpu(0);
        let client = m.create_context();
        let third_party = m.create_context();
        let region = m.mem().alloc("astack", 256);
        client.map(region.id(), Protection::ReadWrite);

        let mut meter = Meter::disabled();
        m.write_mem(cpu, &client, &region, 0, &[1, 2, 3], false, &mut meter)
            .expect("client may write its A-stack");
        let mut buf = [0u8; 3];
        let err = m
            .read_mem(cpu, &third_party, &region, 0, &mut buf, false, &mut meter)
            .unwrap_err();
        assert!(matches!(err, MemFault::NotMapped { .. }));
        // The kernel may access anything.
        m.read_mem(cpu, &third_party, &region, 0, &mut buf, true, &mut meter)
            .expect("kernel mode bypasses protection");
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn memory_access_counts_tlb_misses() {
        let m = Machine::cvax_uniprocessor();
        let cpu = m.cpu(0);
        let ctx = m.create_context();
        let region = m.mem().alloc("buf", crate::mem::PAGE_SIZE * 4);
        ctx.map(region.id(), Protection::ReadWrite);
        let mut meter = Meter::enabled();
        let data = vec![0u8; crate::mem::PAGE_SIZE * 2];
        m.write_mem(cpu, &ctx, &region, 0, &data, false, &mut meter)
            .unwrap();
        assert_eq!(meter.tlb_misses(), 2);
        // A second access to the same pages hits.
        m.write_mem(cpu, &ctx, &region, 0, &data, false, &mut meter)
            .unwrap();
        assert_eq!(meter.tlb_misses(), 2);
    }

    #[test]
    fn idle_claim_is_atomic_and_single_shot() {
        let m = Machine::cvax_firefly();
        let ctx = m.create_context();
        m.cpu(2).set_idle_in(Some(ctx.id()));
        assert_eq!(m.claim_idle_cpu_in(ctx.id()), Some(2));
        assert_eq!(
            m.claim_idle_cpu_in(ctx.id()),
            None,
            "a claimed CPU is no longer idle"
        );
    }

    #[test]
    fn concurrent_idle_claims_find_one_winner_each() {
        let m = Machine::cvax_firefly();
        let ctx = m.create_context();
        m.cpu(1).set_idle_in(Some(ctx.id()));
        m.cpu(3).set_idle_in(Some(ctx.id()));
        let claims: Vec<Option<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| m.claim_idle_cpu_in(ctx.id())))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut won: Vec<usize> = claims.into_iter().flatten().collect();
        won.sort_unstable();
        assert_eq!(won, vec![1, 3], "each idle CPU is claimed exactly once");
        assert_eq!(m.cpu(1).idle_in(), None);
        assert_eq!(m.cpu(3).idle_in(), None);
    }

    #[test]
    fn concurrent_charges_do_not_lose_time() {
        let m = Machine::cvax_firefly();
        let cpu = m.cpu(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        cpu.charge(Nanos::from_nanos(7));
                    }
                });
            }
        });
        assert_eq!(cpu.now(), Nanos::from_nanos(4 * 1000 * 7));
    }
}
