//! Virtual-memory contexts and protection.
//!
//! Each protection domain owns one [`VmContext`]: a table mapping region
//! ids to access rights. A memory access by a thread running in a domain is
//! checked against the domain's context — this is the software substitute
//! for the VAX MMU, and it is what makes the simulated protection domains
//! *actually protective*: a third-party domain reading a pairwise-shared
//! A-stack gets a [`MemFault::ProtectionViolation`], not data.
//!
//! Kernel-mode accesses bypass the per-domain table, modeling the kernel
//! being mapped into every context.

use core::fmt;
use std::collections::HashMap;

use parking_lot::RwLock;

use crate::error::MemFault;
use crate::mem::RegionId;

/// Identifier of a virtual-memory context (one per protection domain).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContextId(pub u64);

impl ContextId {
    /// The kernel's own context.
    pub const KERNEL: ContextId = ContextId(0);
}

impl fmt::Debug for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx#{}", self.0)
    }
}

/// Access rights for one region in one context.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Protection {
    /// Mapped read-only.
    Read,
    /// Mapped read-write (A-stacks are mapped read-write into both the
    /// client and server domains).
    ReadWrite,
}

impl Protection {
    /// True if this mapping allows writing.
    pub fn allows_write(self) -> bool {
        matches!(self, Protection::ReadWrite)
    }
}

/// The mapping table of one protection domain.
pub struct VmContext {
    id: ContextId,
    maps: RwLock<HashMap<RegionId, Protection>>,
}

impl VmContext {
    /// Creates an empty context with the given id.
    pub fn new(id: ContextId) -> VmContext {
        VmContext {
            id,
            maps: RwLock::new(HashMap::new()),
        }
    }

    /// The context's id.
    pub fn id(&self) -> ContextId {
        self.id
    }

    /// Maps (or remaps) a region with the given protection.
    pub fn map(&self, region: RegionId, prot: Protection) {
        self.maps.write().insert(region, prot);
    }

    /// Removes a region's mapping; subsequent accesses fault.
    pub fn unmap(&self, region: RegionId) {
        self.maps.write().remove(&region);
    }

    /// Removes every mapping (domain teardown).
    pub fn unmap_all(&self) {
        self.maps.write().clear();
    }

    /// The protection with which `region` is mapped, if at all.
    pub fn protection(&self, region: RegionId) -> Option<Protection> {
        self.maps.read().get(&region).copied()
    }

    /// Number of regions mapped.
    pub fn mapped_count(&self) -> usize {
        self.maps.read().len()
    }

    /// Ids of every mapped region.
    pub fn mapped_regions(&self) -> Vec<RegionId> {
        self.maps.read().keys().copied().collect()
    }

    /// Checks that this context may access `region` with the requested
    /// intent.
    ///
    /// `kernel_mode` accesses always succeed: the kernel is mapped into
    /// every context and performs its own explicit validations.
    pub fn check(&self, region: RegionId, write: bool, kernel_mode: bool) -> Result<(), MemFault> {
        if kernel_mode {
            return Ok(());
        }
        match self.protection(region) {
            Some(p) if !write || p.allows_write() => Ok(()),
            Some(_) => Err(MemFault::ProtectionViolation {
                ctx: self.id,
                region,
                write,
            }),
            None => Err(MemFault::NotMapped {
                ctx: self.id,
                region,
            }),
        }
    }
}

impl fmt::Debug for VmContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VmContext")
            .field("id", &self.id)
            .field("mapped", &self.mapped_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> VmContext {
        VmContext::new(ContextId(7))
    }

    #[test]
    fn unmapped_region_faults() {
        let c = ctx();
        let err = c.check(RegionId(3), false, false).unwrap_err();
        assert!(matches!(err, MemFault::NotMapped { .. }));
    }

    #[test]
    fn read_only_mapping_rejects_writes() {
        let c = ctx();
        c.map(RegionId(3), Protection::Read);
        assert!(c.check(RegionId(3), false, false).is_ok());
        let err = c.check(RegionId(3), true, false).unwrap_err();
        assert!(matches!(
            err,
            MemFault::ProtectionViolation { write: true, .. }
        ));
    }

    #[test]
    fn read_write_mapping_allows_both() {
        let c = ctx();
        c.map(RegionId(3), Protection::ReadWrite);
        assert!(c.check(RegionId(3), false, false).is_ok());
        assert!(c.check(RegionId(3), true, false).is_ok());
    }

    #[test]
    fn kernel_mode_bypasses_protection() {
        let c = ctx();
        assert!(c.check(RegionId(99), true, true).is_ok());
    }

    #[test]
    fn unmap_revokes_access() {
        let c = ctx();
        c.map(RegionId(3), Protection::ReadWrite);
        c.unmap(RegionId(3));
        assert!(c.check(RegionId(3), false, false).is_err());
        c.map(RegionId(4), Protection::Read);
        c.map(RegionId(5), Protection::Read);
        c.unmap_all();
        assert_eq!(c.mapped_count(), 0);
    }
}
