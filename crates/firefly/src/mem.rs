//! Simulated physical memory.
//!
//! Memory is modeled as a set of named *regions* — contiguous byte ranges
//! allocated by the kernel and mapped into zero or more virtual-memory
//! contexts (see [`crate::vm`]). The byte contents are real (`Vec<u8>`
//! behind a lock), so data transfer through A-stacks and message buffers is
//! functional, not just accounted for.
//!
//! Pages are 512 bytes, matching the VAX architecture of the C-VAX Firefly;
//! page identities feed the per-CPU TLB model.

use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::MemFault;

/// The VAX page size in bytes.
pub const PAGE_SIZE: usize = 512;

/// Identifier of a physical memory region.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u64);

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region#{}", self.0)
    }
}

/// Identity of one page of one region, as seen by the TLB.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PageId(pub u64);

impl PageId {
    /// The page covering byte `offset` of region `region`.
    pub fn of(region: RegionId, offset: usize) -> PageId {
        PageId(region.0 << 20 | (offset / PAGE_SIZE) as u64)
    }
}

/// A contiguous region of simulated physical memory.
pub struct Region {
    id: RegionId,
    label: String,
    len: usize,
    bytes: RwLock<Vec<u8>>,
}

impl Region {
    /// The region's identifier.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The diagnostic label given at allocation time.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The region's length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages spanned by the region.
    pub fn page_count(&self) -> usize {
        self.len.div_ceil(PAGE_SIZE)
    }

    /// The pages covering the byte range `offset..offset + len`.
    ///
    /// Returns an empty iterator for a zero-length range.
    pub fn pages_for(&self, offset: usize, len: usize) -> impl Iterator<Item = PageId> + '_ {
        let first = offset / PAGE_SIZE;
        let last = if len == 0 {
            first // Empty range: yield nothing via the range below.
        } else {
            (offset + len - 1) / PAGE_SIZE + 1
        };
        let id = self.id;
        (first..last).map(move |p| PageId(id.0 << 20 | p as u64))
    }

    /// Copies `data` into the region at `offset`, without any protection
    /// check (the check belongs to [`crate::cpu::Machine`], which knows
    /// the accessing context).
    ///
    /// Fails with [`MemFault::OutOfRange`] if the write would exceed the
    /// region.
    pub fn write_raw(&self, offset: usize, data: &[u8]) -> Result<(), MemFault> {
        let end = offset.checked_add(data.len()).ok_or(MemFault::OutOfRange {
            region: self.id,
            offset,
            len: data.len(),
        })?;
        if end > self.len {
            return Err(MemFault::OutOfRange {
                region: self.id,
                offset,
                len: data.len(),
            });
        }
        let mut bytes = self.bytes.write();
        bytes[offset..end].copy_from_slice(data);
        Ok(())
    }

    /// Copies `buf.len()` bytes out of the region at `offset` into `buf`,
    /// without any protection check.
    pub fn read_raw(&self, offset: usize, buf: &mut [u8]) -> Result<(), MemFault> {
        let end = offset.checked_add(buf.len()).ok_or(MemFault::OutOfRange {
            region: self.id,
            offset,
            len: buf.len(),
        })?;
        if end > self.len {
            return Err(MemFault::OutOfRange {
                region: self.id,
                offset,
                len: buf.len(),
            });
        }
        let bytes = self.bytes.read();
        buf.copy_from_slice(&bytes[offset..end]);
        Ok(())
    }

    /// Reads `len` bytes at `offset` into a fresh vector.
    pub fn read_vec(&self, offset: usize, len: usize) -> Result<Vec<u8>, MemFault> {
        let mut buf = vec![0u8; len];
        self.read_raw(offset, &mut buf)?;
        Ok(buf)
    }

    /// Fills the whole region with `byte`.
    pub fn fill(&self, byte: u8) {
        self.bytes.write().fill(byte);
    }
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Region")
            .field("id", &self.id)
            .field("label", &self.label)
            .field("len", &self.len)
            .finish()
    }
}

/// The machine's physical memory: an allocator and table of regions.
///
/// The region table is a process-global lock, so its acquisitions are
/// reported to [`crate::meter::note_global_lock`]. None of them are on the
/// LRPC fast path: calls address their A-stack and E-stack through `Arc`s
/// captured at bind/associate time. Per-region byte locks in [`Region`]
/// are per-object and uncounted.
pub struct PhysMem {
    next_id: AtomicU64,
    regions: Mutex<Vec<Arc<Region>>>,
}

impl PhysMem {
    /// Creates an empty physical memory.
    pub fn new() -> PhysMem {
        PhysMem {
            next_id: AtomicU64::new(1),
            regions: Mutex::new(Vec::new()),
        }
    }

    /// Allocates a zero-filled region of `len` bytes.
    pub fn alloc(&self, label: impl Into<String>, len: usize) -> Arc<Region> {
        let id = RegionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let region = Arc::new(Region {
            id,
            label: label.into(),
            len,
            bytes: RwLock::new(vec![0u8; len]),
        });
        crate::meter::note_global_lock();
        self.regions.lock().push(Arc::clone(&region));
        region
    }

    /// Looks up a region by id.
    pub fn get(&self, id: RegionId) -> Option<Arc<Region>> {
        crate::meter::note_global_lock();
        self.regions.lock().iter().find(|r| r.id == id).cloned()
    }

    /// Releases a region from the table (outstanding `Arc`s keep the bytes
    /// alive; the region simply stops being addressable).
    pub fn free(&self, id: RegionId) {
        crate::meter::note_global_lock();
        self.regions.lock().retain(|r| r.id != id);
    }

    /// Total bytes currently allocated.
    pub fn allocated_bytes(&self) -> usize {
        crate::meter::note_global_lock();
        self.regions.lock().iter().map(|r| r.len).sum()
    }

    /// Number of live regions.
    pub fn region_count(&self) -> usize {
        crate::meter::note_global_lock();
        self.regions.lock().len()
    }
}

impl Default for PhysMem {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mem = PhysMem::new();
        let r = mem.alloc("astack", 1024);
        r.write_raw(100, &[1, 2, 3, 4]).unwrap();
        assert_eq!(r.read_vec(100, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(r.read_vec(99, 1).unwrap(), vec![0]);
    }

    #[test]
    fn out_of_range_accesses_fault() {
        let mem = PhysMem::new();
        let r = mem.alloc("small", 8);
        assert!(matches!(
            r.write_raw(6, &[0; 4]),
            Err(MemFault::OutOfRange { .. })
        ));
        assert!(matches!(
            r.read_raw(8, &mut [0; 1]),
            Err(MemFault::OutOfRange { .. })
        ));
        // Boundary case: a write ending exactly at the region end is fine.
        assert!(r.write_raw(4, &[9; 4]).is_ok());
        // Offset overflow must not panic.
        assert!(r.write_raw(usize::MAX, &[1]).is_err());
    }

    #[test]
    fn page_count_and_page_ids() {
        let mem = PhysMem::new();
        let r = mem.alloc("pages", PAGE_SIZE * 2 + 1);
        assert_eq!(r.page_count(), 3);
        let pages: Vec<_> = r.pages_for(0, PAGE_SIZE + 1).collect();
        assert_eq!(pages.len(), 2);
        let pages: Vec<_> = r.pages_for(PAGE_SIZE - 1, 2).collect();
        assert_eq!(pages.len(), 2);
        let pages: Vec<_> = r.pages_for(10, 0).collect();
        assert!(pages.is_empty());
    }

    #[test]
    fn page_ids_distinct_across_regions() {
        let mem = PhysMem::new();
        let a = mem.alloc("a", PAGE_SIZE);
        let b = mem.alloc("b", PAGE_SIZE);
        assert_ne!(PageId::of(a.id(), 0), PageId::of(b.id(), 0));
    }

    #[test]
    fn free_removes_from_table() {
        let mem = PhysMem::new();
        let r = mem.alloc("gone", 64);
        assert!(mem.get(r.id()).is_some());
        mem.free(r.id());
        assert!(mem.get(r.id()).is_none());
        assert_eq!(mem.region_count(), 0);
    }
}
