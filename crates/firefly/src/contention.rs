//! Deterministic virtual-time contention simulation.
//!
//! Figure 2 of the paper plots call throughput against the number of
//! processors simultaneously making calls: LRPC scales nearly linearly
//! (3.7× on four C-VAXes) because the only shared resource on its critical
//! path is the memory bus, while SRC RPC flattens at about 4 000 calls per
//! second because a global lock is held during a large part of the transfer
//! path.
//!
//! This module reproduces that experiment deterministically. A call is
//! described by a [`CallProfile`] — an ordered list of segments, each
//! either private compute time or exclusive use of a named resource (a
//! lock, or the memory bus). Each simulated CPU repeats its profile in a
//! loop; resources serve requests in virtual-time arrival order. The
//! simulation advances the globally earliest CPU first, which makes results
//! independent of host scheduling.

use crate::time::Nanos;

/// Identifier of a serially-used resource (lock, memory bus, ...).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ResourceId(pub usize);

/// Allocates non-colliding [`ResourceId`]s for a contention experiment.
///
/// Figure-2 style profiles mix *shared* resources (the memory bus, a
/// global lock) with *private per-CPU* resources (each client's own
/// A-stack queue). Hand-numbering ids (`ResourceId(0)` for the bus,
/// `ResourceId(1 + cpu)` for the queues) is easy to get wrong — an
/// off-by-one silently aliases a "private" queue with the bus, turning it
/// into a global lock and collapsing the simulated speedup. A plan hands
/// out disjoint id ranges and knows the total resource count to pass to
/// [`simulate_throughput`].
#[derive(Debug, Default)]
pub struct ResourcePlan {
    next: usize,
}

impl ResourcePlan {
    /// An empty plan.
    pub fn new() -> ResourcePlan {
        ResourcePlan::default()
    }

    /// Reserves one resource shared by every CPU (a bus, a global lock).
    pub fn shared(&mut self) -> ResourceId {
        let id = ResourceId(self.next);
        self.next += 1;
        id
    }

    /// Reserves a block of `n_cpus` private resources, one per CPU
    /// (per-client A-stack queues, per-CPU run queues).
    pub fn per_cpu(&mut self, n_cpus: usize) -> PerCpuResources {
        let base = self.next;
        self.next += n_cpus;
        PerCpuResources {
            base,
            count: n_cpus,
        }
    }

    /// Total resources reserved so far — the `n_resources` argument for
    /// [`simulate_throughput`].
    pub fn resource_count(&self) -> usize {
        self.next
    }
}

/// A block of per-CPU private resources reserved from a [`ResourcePlan`].
#[derive(Clone, Copy, Debug)]
pub struct PerCpuResources {
    base: usize,
    count: usize,
}

impl PerCpuResources {
    /// The private resource of CPU `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is outside the block — the caller asked for fewer
    /// CPUs than it is now indexing, which is exactly the aliasing bug
    /// this type exists to prevent.
    pub fn for_cpu(&self, cpu: usize) -> ResourceId {
        assert!(
            cpu < self.count,
            "CPU {cpu} outside this per-CPU resource block of {}",
            self.count
        );
        ResourceId(self.base + cpu)
    }

    /// Number of CPUs covered.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// One step of a call.
#[derive(Clone, Copy, Debug)]
pub enum Seg {
    /// Private computation: no shared resource involved.
    Compute(Nanos),
    /// Exclusive use of `res` for `hold` (queueing if busy).
    Use {
        /// The contended resource.
        res: ResourceId,
        /// How long it is held.
        hold: Nanos,
    },
}

/// The segment sequence of one call.
#[derive(Clone, Debug, Default)]
pub struct CallProfile {
    /// Ordered segments executed per call.
    pub segments: Vec<Seg>,
}

impl CallProfile {
    /// A profile with the given segments.
    pub fn new(segments: Vec<Seg>) -> CallProfile {
        CallProfile { segments }
    }

    /// Sum of all segment durations (the uncontended call latency).
    pub fn uncontended_latency(&self) -> Nanos {
        self.segments
            .iter()
            .map(|s| match s {
                Seg::Compute(d) => *d,
                Seg::Use { hold, .. } => *hold,
            })
            .sum()
    }

    /// Total time the call holds `res`.
    pub fn hold_time(&self, res: ResourceId) -> Nanos {
        self.segments
            .iter()
            .filter_map(|s| match s {
                Seg::Use { res: r, hold } if *r == res => Some(*hold),
                _ => None,
            })
            .sum()
    }
}

/// Result of a throughput simulation.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Virtual duration simulated.
    pub duration: Nanos,
    /// Calls completed (completion time within the duration) per CPU.
    pub per_cpu_calls: Vec<u64>,
    /// Total virtual time each resource spent busy.
    pub resource_busy: Vec<Nanos>,
    /// Total virtual time CPUs spent queued for each resource.
    pub resource_wait: Vec<Nanos>,
}

impl ThroughputReport {
    /// Total completed calls.
    pub fn total_calls(&self) -> u64 {
        self.per_cpu_calls.iter().sum()
    }

    /// Aggregate throughput in calls per second.
    pub fn calls_per_second(&self) -> f64 {
        self.total_calls() as f64 / self.duration.as_secs_f64()
    }

    /// Fraction of the duration a resource spent busy (its utilization).
    ///
    /// Values slightly above 1.0 are possible because holds started before
    /// the deadline run to completion.
    pub fn utilization(&self, res: ResourceId) -> f64 {
        self.resource_busy
            .get(res.0)
            .map(|b| b.as_secs_f64() / self.duration.as_secs_f64())
            .unwrap_or(0.0)
    }

    /// Total virtual time CPUs spent queued on a resource, per completed
    /// call.
    pub fn mean_wait(&self, res: ResourceId) -> Nanos {
        let calls = self.total_calls().max(1);
        self.resource_wait
            .get(res.0)
            .map(|w| *w / calls)
            .unwrap_or(Nanos::ZERO)
    }
}

#[derive(Clone, Copy)]
struct CpuState {
    t: Nanos,
    seg: usize,
    calls: u64,
    done: bool,
}

/// Runs `profiles.len()` CPUs, each repeating its profile, for `duration`
/// of virtual time.
///
/// `n_resources` must cover every [`ResourceId`] referenced by the
/// profiles.
///
/// # Panics
///
/// Panics if a profile references a resource index `>= n_resources`; the
/// experiment definitions in this workspace construct both together.
pub fn simulate_throughput(
    profiles: &[CallProfile],
    n_resources: usize,
    duration: Nanos,
) -> ThroughputReport {
    let mut cpus: Vec<CpuState> = profiles
        .iter()
        .map(|p| CpuState {
            t: Nanos::ZERO,
            seg: 0,
            calls: 0,
            done: p.segments.is_empty(),
        })
        .collect();
    let mut free_at = vec![Nanos::ZERO; n_resources];
    let mut busy = vec![Nanos::ZERO; n_resources];
    let mut wait = vec![Nanos::ZERO; n_resources];

    // Advance the earliest unfinished CPU (ties break to the lowest id),
    // so resource queueing follows virtual-time arrival order.
    while let Some(i) = cpus
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.done)
        .min_by_key(|(i, c)| (c.t, *i))
        .map(|(i, _)| i)
    {
        let profile = &profiles[i];
        let c = &mut cpus[i];
        match profile.segments[c.seg] {
            Seg::Compute(d) => c.t += d,
            Seg::Use { res, hold } => {
                let start = c.t.max(free_at[res.0]);
                wait[res.0] += start - c.t;
                c.t = start + hold;
                free_at[res.0] = c.t;
                busy[res.0] += hold;
            }
        }
        c.seg += 1;
        if c.seg == profile.segments.len() {
            c.seg = 0;
            if c.t <= duration {
                c.calls += 1;
            }
            if c.t >= duration {
                c.done = true;
            }
        }
    }

    ThroughputReport {
        duration,
        per_cpu_calls: cpus.iter().map(|c| c.calls).collect(),
        resource_busy: busy,
        resource_wait: wait,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECOND: Nanos = Nanos::from_secs(1);

    fn pure_compute(us: u64) -> CallProfile {
        CallProfile::new(vec![Seg::Compute(Nanos::from_micros(us))])
    }

    #[test]
    fn uncontended_calls_scale_linearly() {
        for n in 1..=4 {
            let profiles = vec![pure_compute(157); n];
            let report = simulate_throughput(&profiles, 0, SECOND);
            let expected = (1_000_000 / 157) * n as u64;
            assert_eq!(report.total_calls(), expected);
        }
    }

    #[test]
    fn global_lock_caps_throughput() {
        // A 250 µs critical section caps aggregate throughput at 4 000
        // calls/second no matter how many CPUs offer load.
        let profile = CallProfile::new(vec![
            Seg::Compute(Nanos::from_micros(214)),
            Seg::Use {
                res: ResourceId(0),
                hold: Nanos::from_micros(250),
            },
        ]);
        let one = simulate_throughput(&vec![profile.clone(); 1], 1, SECOND);
        let four = simulate_throughput(&vec![profile.clone(); 4], 1, SECOND);
        assert!(
            one.total_calls() < 2_300,
            "one CPU is latency-bound: {}",
            one.total_calls()
        );
        let cap = 1_000_000 / 250;
        assert!(
            four.total_calls() <= cap && four.total_calls() > cap - 80,
            "four CPUs must saturate near the lock cap: {} vs {}",
            four.total_calls(),
            cap
        );
    }

    #[test]
    fn waiting_time_is_accounted() {
        let profile = CallProfile::new(vec![Seg::Use {
            res: ResourceId(0),
            hold: Nanos::from_micros(100),
        }]);
        let report = simulate_throughput(&vec![profile; 2], 1, Nanos::from_micros(1_000));
        // The two CPUs strictly alternate; each waits for the other's hold,
        // so the resource is busy back-to-back for the whole duration.
        assert!(report.resource_wait[0] > Nanos::ZERO);
        assert!(report.resource_busy[0] >= Nanos::from_micros(1_000));
        // Aggregate throughput is capped at one call per 100 µs.
        assert_eq!(report.total_calls(), 10);
    }

    #[test]
    fn deterministic_across_runs() {
        let profile = CallProfile::new(vec![
            Seg::Compute(Nanos::from_micros(114)),
            Seg::Use {
                res: ResourceId(0),
                hold: Nanos::from_micros(43),
            },
        ]);
        let a = simulate_throughput(&vec![profile.clone(); 4], 1, SECOND);
        let b = simulate_throughput(&vec![profile; 4], 1, SECOND);
        assert_eq!(a.per_cpu_calls, b.per_cpu_calls);
    }

    #[test]
    fn utilization_and_mean_wait() {
        // Two CPUs, 100 µs hold each, nothing else: the resource is ~100%
        // utilized and each call waits about one hold.
        let profile = CallProfile::new(vec![Seg::Use {
            res: ResourceId(0),
            hold: Nanos::from_micros(100),
        }]);
        let report = simulate_throughput(&vec![profile; 2], 1, Nanos::from_micros(10_000));
        assert!(report.utilization(ResourceId(0)) >= 0.99);
        let wait = report.mean_wait(ResourceId(0));
        assert!(
            (Nanos::from_micros(80)..=Nanos::from_micros(120)).contains(&wait),
            "mean wait {wait}"
        );
        // Unknown resources report zero.
        assert_eq!(report.utilization(ResourceId(9)), 0.0);
        assert_eq!(report.mean_wait(ResourceId(9)), Nanos::ZERO);
    }

    #[test]
    fn profile_hold_and_latency_helpers() {
        let p = CallProfile::new(vec![
            Seg::Compute(Nanos::from_micros(100)),
            Seg::Use {
                res: ResourceId(1),
                hold: Nanos::from_micros(50),
            },
        ]);
        assert_eq!(p.uncontended_latency(), Nanos::from_micros(150));
        assert_eq!(p.hold_time(ResourceId(1)), Nanos::from_micros(50));
        assert_eq!(p.hold_time(ResourceId(0)), Nanos::ZERO);
    }

    #[test]
    fn resource_plan_hands_out_disjoint_ids() {
        let mut plan = ResourcePlan::new();
        let bus = plan.shared();
        let queues = plan.per_cpu(4);
        let lock = plan.shared();
        let mut seen = std::collections::HashSet::new();
        seen.insert(bus);
        seen.insert(lock);
        for cpu in 0..4 {
            assert!(seen.insert(queues.for_cpu(cpu)), "per-CPU id aliased");
        }
        assert_eq!(plan.resource_count(), 6);
        assert_eq!(queues.count(), 4);
    }

    #[test]
    #[should_panic(expected = "outside this per-CPU resource block")]
    fn per_cpu_block_rejects_out_of_range_cpu() {
        let mut plan = ResourcePlan::new();
        let queues = plan.per_cpu(2);
        let _ = queues.for_cpu(2);
    }

    #[test]
    fn empty_profiles_complete_immediately() {
        let report = simulate_throughput(&[CallProfile::default()], 0, SECOND);
        assert_eq!(report.total_calls(), 0);
    }
}
