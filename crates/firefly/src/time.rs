//! Simulated time.
//!
//! All latency accounting in the simulated Firefly is done in virtual
//! nanoseconds. The paper reports microseconds; [`Nanos`] provides lossless
//! arithmetic at nanosecond granularity plus microsecond-oriented
//! constructors and accessors so cost-model constants can be written the way
//! the paper states them (e.g. `Nanos::from_micros_f64(0.9)` for one TLB
//! miss on a C-VAX).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span (or instant, measured from machine power-on) of simulated time.
///
/// Internally a count of virtual nanoseconds. Arithmetic is saturating on
/// the low end (subtraction never wraps below zero); addition uses plain
/// `u64` addition, which cannot realistically overflow for the time scales
/// simulated here (≈ 584 years).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// Zero elapsed time.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Nanos {
        Nanos(ns)
    }

    /// Creates a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a span from fractional microseconds, rounding to the nearest
    /// nanosecond.
    ///
    /// Negative or non-finite inputs are clamped to zero; cost-model
    /// constants are always non-negative.
    pub fn from_micros_f64(us: f64) -> Nanos {
        if !us.is_finite() || us <= 0.0 {
            return Nanos(0);
        }
        Nanos((us * 1_000.0).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This span expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two spans.
    pub fn max(self, rhs: Nanos) -> Nanos {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two spans.
    pub fn min(self, rhs: Nanos) -> Nanos {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Nanos {
    type Output = Nanos;

    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;

    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;

    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;

    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Latencies in this system are most naturally read in microseconds.
        if self.0.is_multiple_of(1_000) {
            write!(f, "{}us", self.0 / 1_000)
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_roundtrip() {
        assert_eq!(Nanos::from_micros(157).as_nanos(), 157_000);
        assert_eq!(Nanos::from_micros(157).as_micros_f64(), 157.0);
    }

    #[test]
    fn fractional_micros_round_to_nearest_nanosecond() {
        assert_eq!(Nanos::from_micros_f64(0.9).as_nanos(), 900);
        assert_eq!(Nanos::from_micros_f64(0.0004999).as_nanos(), 0);
        assert_eq!(Nanos::from_micros_f64(0.0005001).as_nanos(), 1);
    }

    #[test]
    fn negative_and_non_finite_clamp_to_zero() {
        assert_eq!(Nanos::from_micros_f64(-3.0), Nanos::ZERO);
        assert_eq!(Nanos::from_micros_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_micros_f64(f64::INFINITY), Nanos::ZERO);
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(Nanos::from_micros(1) - Nanos::from_micros(2), Nanos::ZERO);
        let mut t = Nanos::from_micros(1);
        t -= Nanos::from_micros(5);
        assert_eq!(t, Nanos::ZERO);
    }

    #[test]
    fn display_prefers_whole_microseconds() {
        assert_eq!(Nanos::from_micros(464).to_string(), "464us");
        assert_eq!(Nanos::from_nanos(1_500).to_string(), "1.500us");
    }

    #[test]
    fn arithmetic_and_sum() {
        let parts = [
            Nanos::from_micros(7),
            Nanos::from_micros(36),
            Nanos::from_micros(66),
        ];
        let total: Nanos = parts.iter().copied().sum();
        assert_eq!(total, Nanos::from_micros(109));
        assert_eq!(Nanos::from_micros(33) * 2, Nanos::from_micros(66));
        assert_eq!(Nanos::from_micros(66) / 2, Nanos::from_micros(33));
    }
}
