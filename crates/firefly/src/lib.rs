//! Simulated DEC SRC Firefly multiprocessor workstation.
//!
//! This crate is the hardware substrate of the LRPC reproduction. The paper
//! (Bershad, Anderson, Lazowska, Levy — *Lightweight Remote Procedure
//! Call*, SOSP 1989) implements LRPC inside Taos on a C-VAX Firefly; this
//! crate provides the pieces of that machine the measurements depend on:
//!
//! * [`cpu::Machine`] / [`cpu::Cpu`] — processors with per-CPU virtual
//!   clocks, mapping registers and idle-in-domain state (the hook for the
//!   idle-processor optimization of Section 3.4);
//! * [`mem`] / [`vm`] — physical memory regions and per-domain
//!   virtual-memory contexts with enforced protection (the software MMU);
//! * [`tlb`] — an invalidate-on-switch (or tagged) TLB model whose miss
//!   counts emerge from the pages the call paths actually touch;
//! * [`cost`] — calibrated per-phase cost models (C-VAX Firefly,
//!   MicroVAX II Firefly, and the Table 2 processors);
//! * [`meter`] — where-did-the-time-go recording (regenerates Table 5);
//! * [`contention`] — a deterministic virtual-time contention simulator
//!   (regenerates Figure 2);
//! * [`fault`] — a seeded, deterministic fault-injection plan the upper
//!   layers consult to exercise the Section 5.3 failure paths.
//!
//! Timing methodology: the functional code in the upper crates runs for
//! real (real byte copies, real locks); as it runs it charges calibrated
//! simulated costs to the executing [`cpu::Cpu`]. Latency results read the
//! virtual clock, so they are deterministic and host-independent.

pub mod contention;
pub mod cost;
pub mod cpu;
pub mod error;
pub mod fault;
pub mod mem;
pub mod meter;
pub mod time;
pub mod tlb;
pub mod vm;

pub use contention::{
    simulate_throughput, CallProfile, PerCpuResources, ResourceId, ResourcePlan, Seg,
    ThroughputReport,
};
pub use cost::{CostModel, ProcessorTimings};
pub use cpu::{Cpu, Machine};
pub use error::MemFault;
pub use fault::{DispatchFault, FaultConfig, FaultEvent, FaultKind, FaultPlan, PacketFate};
pub use mem::{PageId, PhysMem, Region, RegionId, PAGE_SIZE};
pub use meter::{LockTally, Meter, Phase, Segment};
pub use time::Nanos;
pub use tlb::{Tlb, TlbMode};
pub use vm::{ContextId, Protection, VmContext};
