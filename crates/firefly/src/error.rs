//! Fault types raised by the simulated hardware.

use core::fmt;

use crate::mem::RegionId;
use crate::vm::ContextId;

/// A memory-access fault detected by the simulated MMU.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemFault {
    /// The region is not mapped into the accessing context at all.
    NotMapped {
        /// Context that attempted the access.
        ctx: ContextId,
        /// Region that was not mapped.
        region: RegionId,
    },
    /// The region is mapped, but not with the required rights.
    ProtectionViolation {
        /// Context that attempted the access.
        ctx: ContextId,
        /// Region that was accessed.
        region: RegionId,
        /// True if the faulting access was a write.
        write: bool,
    },
    /// The access fell outside the region's bounds.
    OutOfRange {
        /// Region that was accessed.
        region: RegionId,
        /// Byte offset of the access.
        offset: usize,
        /// Length of the access.
        len: usize,
    },
    /// The region id does not name a live region.
    NoSuchRegion {
        /// The dangling id.
        region: RegionId,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::NotMapped { ctx, region } => {
                write!(f, "{region:?} is not mapped in {ctx:?}")
            }
            MemFault::ProtectionViolation { ctx, region, write } => {
                let kind = if *write { "write" } else { "read" };
                write!(f, "{kind} access to {region:?} denied in {ctx:?}")
            }
            MemFault::OutOfRange {
                region,
                offset,
                len,
            } => {
                write!(
                    f,
                    "access [{offset}, {offset}+{len}) out of range of {region:?}"
                )
            }
            MemFault::NoSuchRegion { region } => write!(f, "{region:?} does not exist"),
        }
    }
}

impl std::error::Error for MemFault {}
