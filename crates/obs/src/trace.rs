//! Per-call trace identifiers.
//!
//! Every LRPC (and every message-based RPC) is stamped with a [`TraceId`]
//! at the moment the client stub is entered. The id travels with the
//! call's [`Meter`](../firefly/meter) and is written into every span the
//! flight recorder captures, so a flight snapshot can be filtered down to
//! exactly one call even when many threads (or many parallel tests in the
//! same process) are recording at once.

use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide id allocator. Starts at 1 so that 0 can mean "no trace".
static NEXT: AtomicU64 = AtomicU64::new(1);

/// Identity of one in-flight call.
///
/// Ids are allocated from a process-wide atomic counter — a single
/// `fetch_add` per call, no locks — and are never reused within a
/// process. `TraceId::NONE` (the zero id) marks unmetered work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The null trace: work not attributed to any call.
    pub const NONE: TraceId = TraceId(0);

    /// Allocates a fresh, process-unique id.
    #[inline]
    pub fn next() -> TraceId {
        TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    /// Rebuilds an id from its raw representation (e.g. read back out of
    /// a recorded span).
    #[inline]
    pub fn from_raw(raw: u64) -> TraceId {
        TraceId(raw)
    }

    /// The raw numeric id, as stored in span records.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// True for every id except [`TraceId::NONE`].
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_some() {
            write!(f, "trace-{}", self.0)
        } else {
            f.write_str("trace-none")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert_ne!(a, b);
        assert!(a.is_some() && b.is_some());
        assert!(!TraceId::NONE.is_some());
    }

    #[test]
    fn raw_round_trips() {
        let id = TraceId::next();
        assert_eq!(TraceId::from_raw(id.raw()), id);
    }
}
