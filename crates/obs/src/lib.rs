//! Observability plane for the LRPC reproduction.
//!
//! The paper's whole argument is observational — Table 4 decomposes the
//! 157 µs Null LRPC, Table 5 itemizes the 48 µs of overhead, Figure 2
//! plots throughput scaling. This crate is the measurement substrate those
//! numbers flow through at run time:
//!
//! * [`tally`] — thread-local lock-acquisition accounting (the Section 3.4
//!   "zero global locks on the call path" proof obligation);
//! * [`trace`] — per-call [`TraceId`](trace::TraceId)s;
//! * [`flight`] — a lock-free, per-thread ring-buffer **flight recorder**
//!   of per-phase spans (virtual-time start + duration), bounded and
//!   overwrite-oldest, from which the paper's tables can be regenerated
//!   after the fact;
//! * [`metrics`] — an atomic counter/gauge/log2-histogram registry;
//! * [`latency`] — HDR-style tail histograms (128 sub-buckets per octave,
//!   rank-exact p50/p99/p999, lossless merge) and a windowed time-series
//!   for localizing tail spikes;
//! * [`export`] — JSON and Prometheus-style text encoders for snapshots.
//!
//! The crate sits *below* the simulator (`firefly` depends on `obs`, not
//! the other way around), so spans carry raw nanosecond counts and `u16`
//! phase codes; the layers that know what a phase *means* supply the
//! labels at export time.
//!
//! Overhead contract: recording charges **zero virtual time** (spans are
//! emitted at existing charge sites, they do not add charges), and a
//! steady-state recorded call acquires **zero process-global locks** (the
//! per-thread ring is registered once per thread; every subsequent write
//! is plain atomic stores). `tests/lockfree.rs` at the workspace root
//! proves both.

pub mod export;
pub mod flight;
pub mod latency;
pub mod metrics;
pub mod tally;
pub mod trace;

pub use export::{metrics_to_json, metrics_to_prometheus, spans_to_json};
pub use flight::{FlightRing, SpanRecord};
pub use latency::{TailHistogram, TailSnapshot, WindowedSeries};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot, MetricValue, Registry, Snapshot,
};
pub use tally::{LockScope, LockTally};
pub use trace::TraceId;
