//! High-resolution latency recording: HDR-style multi-resolution
//! histograms with rank-exact quantiles, plus a windowed time-series.
//!
//! The log2 [`Histogram`](crate::Histogram) is fine for order-of-magnitude
//! distributions but useless for tails: one power-of-two bucket spans the
//! whole region between p50 and p999 of a 157 µs call. [`TailHistogram`]
//! keeps 128 sub-buckets per octave instead, bounding value quantization
//! to `2^-7` (< 0.8 %) relative error at every magnitude while staying a
//! fixed-size array of relaxed atomics — `observe` is three `fetch_add`s
//! and a leading-zeros count, no locks, no allocation, safe to share
//! across worker threads via its internal `Arc`.
//!
//! Quantiles are computed on a frozen [`TailSnapshot`] by exact rank
//! selection: `quantile(q)` walks the cumulative counts to the smallest
//! bucket whose running total reaches `ceil(q·count)` and reports that
//! bucket's inclusive upper bound. The rank is exact; only the reported
//! value is quantized (values below 128 are exact, larger ones to
//! `2^-7`). Snapshots merge losslessly (bucket-wise addition), so
//! per-thread recorders can be combined before quantile extraction.
//!
//! [`WindowedSeries`] buckets observations into fixed-width windows of
//! (virtual) time, one `TailHistogram` per non-empty window, so a tail
//! spike shows up in *its* window's p99 instead of being averaged away
//! over the whole run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket precision: each octave `[2^b, 2^(b+1))` for `b >= SUB_BITS`
/// is split into `2^SUB_BITS` equal sub-buckets.
pub const TAIL_SUB_BITS: u32 = 7;

const SB: u64 = 1 << TAIL_SUB_BITS;

/// Total bucket count: values `0..SB` exactly, then one `SB`-wide group
/// per octave `SUB_BITS..=63`.
pub const TAIL_BUCKETS: usize = (SB as usize) * (64 - TAIL_SUB_BITS as usize + 1);

/// Index of the tail bucket holding `value`.
#[inline]
pub fn tail_bucket_index(value: u64) -> usize {
    if value < SB {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros() as u64;
        let shift = msb - TAIL_SUB_BITS as u64;
        // Octave group `msb` starts at SB + (msb - SUB_BITS) * SB; the
        // sub-bucket within it is the top SUB_BITS+1 bits minus SB.
        (SB + (msb - TAIL_SUB_BITS as u64) * SB + ((value >> shift) - SB)) as usize
    }
}

/// Inclusive `(lowest, highest)` value held by tail bucket `index`.
pub fn tail_bucket_bounds(index: usize) -> (u64, u64) {
    let i = index as u64;
    if i < SB {
        (i, i)
    } else {
        let octave = (i - SB) / SB;
        let pos = (i - SB) % SB;
        let lo = (SB + pos) << octave;
        // Exclusive upper bound in u128 so the top octave (values near
        // u64::MAX) cannot overflow.
        let hi_excl = u128::from(SB + pos + 1) << octave;
        let hi = (hi_excl - 1).min(u128::from(u64::MAX)) as u64;
        (lo, hi)
    }
}

/// Atomic HDR-style histogram of `u64` observations (latencies in ns).
pub struct TailHistogram(Arc<TailInner>);

struct TailInner {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Clone for TailHistogram {
    fn clone(&self) -> TailHistogram {
        TailHistogram(Arc::clone(&self.0))
    }
}

impl Default for TailHistogram {
    fn default() -> TailHistogram {
        TailHistogram(Arc::new(TailInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: (0..TAIL_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }))
    }
}

impl std::fmt::Debug for TailHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TailHistogram")
            .field("count", &self.0.count.load(Ordering::Relaxed))
            .field("sum", &self.0.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl TailHistogram {
    pub fn new() -> TailHistogram {
        TailHistogram::default()
    }

    /// Records one observation: three relaxed `fetch_add`s plus a relaxed
    /// `fetch_max`, no locks, no allocation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let inner = &self.0;
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
        inner.buckets[tail_bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Freezes the current state. Under concurrent `observe` the fields
    /// are read independently (same caveat as the log2 histogram); once
    /// writers quiesce they agree exactly.
    pub fn snapshot(&self) -> TailSnapshot {
        let inner = &self.0;
        let buckets = (0..TAIL_BUCKETS)
            .filter_map(|i| {
                let n = inner.buckets[i].load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        TailSnapshot {
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen tail-histogram state: sparse `(bucket index, count)` pairs in
/// ascending index order, plus exact count/sum/max.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TailSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub buckets: Vec<(u32, u64)>,
}

impl TailSnapshot {
    /// The rank-exact quantile `q` in `[0, 1]`: the inclusive upper bound
    /// of the smallest bucket whose cumulative count reaches
    /// `ceil(q·count)` (at least 1). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (_, hi) = tail_bucket_bounds(idx as usize);
                // Never report past the true maximum: the top bucket's
                // upper bound quantizes up, but `max` is exact.
                return Some(hi.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lossless merge: bucket-wise addition. Associative and commutative;
    /// `merge(a, b).count == a.count + b.count` and no bucket count is
    /// lost (the proptests in `tests/obs_props.rs` pin this).
    pub fn merge(&self, other: &TailSnapshot) -> TailSnapshot {
        let mut buckets: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(idx, n) in &other.buckets {
            *buckets.entry(idx).or_insert(0) += n;
        }
        TailSnapshot {
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
            buckets: buckets.into_iter().collect(),
        }
    }
}

/// Fixed-width windowed time-series of tail histograms.
///
/// `observe(at, value)` files the observation under window
/// `at / width`; only non-empty windows are materialized. Windows merge
/// position-wise across series of the same width, so per-thread series
/// combine before reporting. Not thread-shared itself (each worker owns
/// one and the results are merged) — the per-window histograms are the
/// atomic [`TailHistogram`].
#[derive(Debug)]
pub struct WindowedSeries {
    width: u64,
    windows: BTreeMap<u64, TailHistogram>,
}

impl WindowedSeries {
    /// A series with the given window width (same unit as `observe`'s
    /// `at`; typically virtual nanoseconds). Width 0 is clamped to 1.
    pub fn new(width: u64) -> WindowedSeries {
        WindowedSeries {
            width: width.max(1),
            windows: BTreeMap::new(),
        }
    }

    pub fn width(&self) -> u64 {
        self.width
    }

    /// Records `value` at time `at`.
    pub fn observe(&mut self, at: u64, value: u64) {
        self.windows
            .entry(at / self.width)
            .or_default()
            .observe(value);
    }

    /// Merges another series of the same width into this one.
    ///
    /// # Panics
    /// If the widths differ — merging misaligned windows would smear
    /// exactly the spikes the series exists to localize.
    pub fn merge_from(&mut self, other: &WindowedSeries) {
        assert_eq!(
            self.width, other.width,
            "cannot merge windowed series of different widths"
        );
        for (&w, hist) in &other.windows {
            let snap = hist.snapshot();
            let dst = self.windows.entry(w).or_default();
            // Replay the sparse buckets; counts are what matters, and the
            // bucket midpoint keeps sum within quantization error.
            let dst_inner = &dst.0;
            dst_inner.count.fetch_add(snap.count, Ordering::Relaxed);
            dst_inner.sum.fetch_add(snap.sum, Ordering::Relaxed);
            dst_inner.max.fetch_max(snap.max, Ordering::Relaxed);
            for (idx, n) in snap.buckets {
                dst_inner.buckets[idx as usize].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// `(window start time, snapshot)` for every non-empty window, in
    /// time order.
    pub fn snapshot(&self) -> Vec<(u64, TailSnapshot)> {
        self.windows
            .iter()
            .map(|(&w, h)| (w * self.width, h.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_brackets_every_magnitude() {
        for &v in &[
            0u64,
            1,
            127,
            128,
            129,
            255,
            256,
            1000,
            157_000,
            1 << 33,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = tail_bucket_index(v);
            let (lo, hi) = tail_bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
        }
        assert_eq!(tail_bucket_index(u64::MAX), TAIL_BUCKETS - 1);
    }

    #[test]
    fn buckets_partition_the_line() {
        // Consecutive buckets tile u64 with no gaps or overlaps.
        let mut expect_lo = 0u64;
        for i in 0..TAIL_BUCKETS {
            let (lo, hi) = tail_bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i} does not start where {} ended", i);
            assert!(hi >= lo);
            if i + 1 < TAIL_BUCKETS {
                expect_lo = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Above the exact range, bucket width / lower bound <= 2^-7.
        for &v in &[129u64, 1000, 157_000, 1_000_000, 1 << 40] {
            let (lo, hi) = tail_bucket_bounds(tail_bucket_index(v));
            assert!(((hi - lo) as f64) / (lo as f64) <= 1.0 / 128.0 + 1e-12);
        }
    }

    #[test]
    fn quantiles_are_rank_exact() {
        let h = TailHistogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        // Values <= 127 are exact; above that quantization is <= 0.8%.
        let p50 = s.quantile(0.50).unwrap();
        let p99 = s.quantile(0.99).unwrap();
        let p999 = s.quantile(0.999).unwrap();
        assert!((499..=504).contains(&p50), "p50={p50}");
        assert!((989..=998).contains(&p99), "p99={p99}");
        assert!((999..=1000).contains(&p999), "p999={p999}");
        assert!(p50 <= p99 && p99 <= p999);
        assert_eq!(s.quantile(1.0), Some(1000));
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn merge_preserves_counts_and_quantiles() {
        let a = TailHistogram::new();
        let b = TailHistogram::new();
        for v in 0..500u64 {
            a.observe(v);
        }
        for v in 500..1000u64 {
            b.observe(v * 1000);
        }
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 1000);
        assert_eq!(m.max, 999_000);
        let total: u64 = m.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 1000);
        assert!(m.quantile(0.25).unwrap() < 500);
        assert!(m.quantile(0.75).unwrap() >= 500_000);
    }

    #[test]
    fn windowed_series_localizes_spikes() {
        let mut w = WindowedSeries::new(100);
        for t in 0..300u64 {
            // One slow window in the middle.
            let v = if (100..200).contains(&t) { 10_000 } else { 10 };
            w.observe(t, v);
        }
        let snaps = w.snapshot();
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].0, 0);
        assert_eq!(snaps[1].0, 100);
        assert!(snaps[0].1.quantile(0.99).unwrap() <= 10);
        assert!(snaps[1].1.quantile(0.99).unwrap() >= 9_000);
        assert!(snaps[2].1.quantile(0.99).unwrap() <= 10);

        let mut other = WindowedSeries::new(100);
        other.observe(150, 20_000);
        w.merge_from(&other);
        let merged = w.snapshot();
        assert_eq!(merged[1].1.count, 101);
        assert_eq!(merged[1].1.max, 20_000);
    }
}
