//! Snapshot encoders: JSON and Prometheus-style text exposition.
//!
//! Hand-rolled on purpose — the workspace builds offline with no serde —
//! and deliberately boring: stable key order (registries are BTreeMaps,
//! spans arrive start-sorted) so exported artifacts diff cleanly across
//! runs.

use crate::flight::SpanRecord;
use crate::metrics::{MetricValue, Snapshot};

/// The quantiles both exporters surface for histogram-shaped metrics:
/// `(q, Prometheus quantile label, JSON key)`.
pub const EXPORT_QUANTILES: [(f64, &str, &str); 4] = [
    (0.50, "0.5", "p50"),
    (0.90, "0.9", "p90"),
    (0.99, "0.99", "p99"),
    (0.999, "0.999", "p999"),
];

/// Escapes `s` for inclusion inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_quantiles(q: &dyn Fn(f64) -> Option<u64>) -> String {
    EXPORT_QUANTILES
        .iter()
        .map(|&(quant, _, key)| format!("\"{key}\":{}", q(quant).unwrap_or(0)))
        .collect::<Vec<_>>()
        .join(",")
}

/// Encodes a metrics snapshot as a JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{name:{"count":..,"sum":..,"buckets":[[le,n],..]}},"tails":{name:{"count":..,"sum":..,"max":..,"p50":..,"p90":..,"p99":..,"p999":..}}}`.
pub fn metrics_to_json(snapshot: &Snapshot) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    let mut tails = Vec::new();
    for m in &snapshot.metrics {
        let name = json_escape(&m.name);
        match &m.value {
            MetricValue::Counter(v) => counters.push(format!("\"{name}\":{v}")),
            MetricValue::Gauge(v) => gauges.push(format!("\"{name}\":{v}")),
            MetricValue::Histogram(h) => {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .map(|&(le, n)| format!("[{le},{n}]"))
                    .collect();
                histograms.push(format!(
                    "\"{name}\":{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                    h.count,
                    h.sum,
                    buckets.join(",")
                ));
            }
            MetricValue::Tail(t) => {
                tails.push(format!(
                    "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},{}}}",
                    t.count,
                    t.sum,
                    t.max,
                    json_quantiles(&|q| t.quantile(q))
                ));
            }
        }
    }
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}},\"tails\":{{{}}}}}",
        counters.join(","),
        gauges.join(","),
        histograms.join(","),
        tails.join(",")
    )
}

/// Maps an arbitrary metric name onto the Prometheus identifier alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`); everything else becomes `_`.
fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out
        .chars()
        .next()
        .is_none_or(|c| c.is_ascii_digit() || !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
    {
        out.insert(0, '_');
    }
    out
}

fn prometheus_quantiles(out: &mut String, name: &str, q: &dyn Fn(f64) -> Option<u64>) {
    for &(quant, label, _) in &EXPORT_QUANTILES {
        if let Some(v) = q(quant) {
            out.push_str(&format!("{name}{{quantile=\"{label}\"}} {v}\n"));
        }
    }
}

/// Encodes a metrics snapshot in the Prometheus text exposition format.
/// Histograms emit cumulative `_bucket{le=...}` series plus `_sum` and
/// `_count`, matching the standard scrape shape, and additionally
/// summary-style `{quantile="..."}` lines (p50/p90/p99/p999, rank-exact
/// over the recorded buckets) so tails are scrapeable without PromQL
/// bucket interpolation. Tail histograms emit the summary shape alone —
/// their ~7400 sub-buckets would bloat a scrape.
pub fn metrics_to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for m in &snapshot.metrics {
        let name = prometheus_name(&m.name);
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for &(le, n) in &h.buckets {
                    cumulative += n;
                    out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                prometheus_quantiles(&mut out, &name, &|q| h.quantile(q));
                out.push_str(&format!("{name}_sum {}\n", h.sum));
                out.push_str(&format!("{name}_count {}\n", h.count));
            }
            MetricValue::Tail(t) => {
                out.push_str(&format!("# TYPE {name} summary\n"));
                prometheus_quantiles(&mut out, &name, &|q| t.quantile(q));
                out.push_str(&format!("{name}_sum {}\n", t.sum));
                out.push_str(&format!("{name}_count {}\n", t.count));
                out.push_str(&format!("{name}_max {}\n", t.max));
            }
        }
    }
    out
}

/// Encodes recorded spans as a JSON array. `phase_name` supplies the
/// human label for each phase code (obs itself does not know what the
/// codes mean — the simulator layer that emitted them does).
pub fn spans_to_json(spans: &[SpanRecord], phase_name: &dyn Fn(u16) -> String) -> String {
    let rows: Vec<String> = spans
        .iter()
        .map(|s| {
            format!(
                "{{\"trace\":{},\"phase\":\"{}\",\"code\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                s.trace.raw(),
                json_escape(&phase_name(s.phase)),
                s.phase,
                s.start_ns,
                s.dur_ns
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::trace::TraceId;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.counter("calls_total").add(3);
        reg.gauge("estack/busy").set(-1);
        let h = reg.histogram("latency_ns");
        h.observe(0);
        h.observe(5);
        let t = reg.tail("tail_ns");
        t.observe(10);
        t.observe(20);
        reg.snapshot()
    }

    #[test]
    fn json_shape_is_stable() {
        let json = metrics_to_json(&sample());
        assert_eq!(
            json,
            "{\"counters\":{\"calls_total\":3},\
             \"gauges\":{\"estack/busy\":-1},\
             \"histograms\":{\"latency_ns\":{\"count\":2,\"sum\":5,\"buckets\":[[0,1],[7,1]]}},\
             \"tails\":{\"tail_ns\":{\"count\":2,\"sum\":30,\"max\":20,\
             \"p50\":10,\"p90\":20,\"p99\":20,\"p999\":20}}}"
        );
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let text = metrics_to_prometheus(&sample());
        assert!(text.contains("# TYPE estack_busy gauge\nestack_busy -1\n"));
        assert!(text.contains("latency_ns_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("latency_ns_bucket{le=\"7\"} 2\n"));
        assert!(text.contains("latency_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("latency_ns_sum 5\n"));
        assert!(text.contains("latency_ns_count 2\n"));
    }

    #[test]
    fn prometheus_quantile_lines_cover_histograms_and_tails() {
        let text = metrics_to_prometheus(&sample());
        // Log2 histogram: quantiles land on bucket upper bounds.
        assert!(text.contains("latency_ns{quantile=\"0.5\"} 0\n"));
        assert!(text.contains("latency_ns{quantile=\"0.99\"} 7\n"));
        assert!(text.contains("latency_ns{quantile=\"0.999\"} 7\n"));
        // Tail histogram: summary shape, exact small values, no buckets.
        assert!(text.contains("# TYPE tail_ns summary\n"));
        assert!(text.contains("tail_ns{quantile=\"0.5\"} 10\n"));
        assert!(text.contains("tail_ns{quantile=\"0.999\"} 20\n"));
        assert!(text.contains("tail_ns_sum 30\n"));
        assert!(text.contains("tail_ns_count 2\n"));
        assert!(text.contains("tail_ns_max 20\n"));
        assert!(!text.contains("tail_ns_bucket"));
    }

    #[test]
    fn spans_round_trip_labels() {
        let spans = [SpanRecord {
            trace: TraceId::from_raw(9),
            phase: 2,
            start_ns: 100,
            dur_ns: 50,
        }];
        let json = spans_to_json(&spans, &|code| format!("phase-{code}"));
        assert_eq!(
            json,
            "[{\"trace\":9,\"phase\":\"phase-2\",\"code\":2,\"start_ns\":100,\"dur_ns\":50}]"
        );
    }
}
