//! Lock-acquisition accounting.
//!
//! Section 3.4's "design for concurrency" claim is structural: the only
//! things an LRPC may serialize on are per-binding A-stack queues and the
//! memory bus — never a process-global lock (that is the SRC RPC
//! anti-pattern that flattens Figure 2 at ~4,000 calls/s). The counters
//! here let tests *prove* the property on the real host-thread call path
//! instead of asserting it in prose.
//!
//! Taxonomy (who calls what):
//!
//! * [`note_global_lock`] — acquisitions of process-global locks: tables
//!   keyed by the whole machine/kernel/runtime (kernel domain and thread
//!   tables, the physical-memory region list, the name server, the
//!   runtime's metric registry and fault/remote cells, the flight
//!   recorder's ring registry).
//! * [`note_sharded_lock`] — acquisitions of per-shard / per-queue /
//!   per-pool primitives that partition a logically global structure
//!   (handle-table shards, A-stack wait queues, per-server E-stack
//!   pools). These are the primitives the paper permits on the critical
//!   path.
//! * Per-object locks (one thread's TCB, one region's bytes, one domain's
//!   mapping table, one CPU's TLB) are not counted: they shard perfectly
//!   by construction and cannot globally serialize independent calls.
//!
//! Counters are thread-local on purpose: a call executes on one host
//! thread, so the fast-path assertion ("this Null call acquired zero
//! global locks") must not observe locks taken by unrelated concurrently
//! running tests or threads. Because they are thread-local and
//! monotonically growing, consecutive tests on the same test-harness
//! thread would bleed counts into each other; [`LockTally::scope`] hands
//! out an RAII guard that zeroes the counters for its extent and restores
//! them on drop, so hammer tests observe only their own acquisitions.

use std::cell::Cell;

thread_local! {
    static GLOBAL_LOCK_ACQS: Cell<u64> = const { Cell::new(0) };
    static SHARDED_LOCK_ACQS: Cell<u64> = const { Cell::new(0) };
}

/// Records that the current thread acquired a process-global lock.
#[inline]
pub fn note_global_lock() {
    GLOBAL_LOCK_ACQS.with(|c| c.set(c.get() + 1));
}

/// Records that the current thread acquired a per-shard / per-queue
/// primitive partitioning a logically global structure.
#[inline]
pub fn note_sharded_lock() {
    SHARDED_LOCK_ACQS.with(|c| c.set(c.get() + 1));
}

/// Process-global lock acquisitions performed by the current thread.
pub fn global_locks_on_thread() -> u64 {
    GLOBAL_LOCK_ACQS.with(Cell::get)
}

/// Sharded lock acquisitions performed by the current thread.
pub fn sharded_locks_on_thread() -> u64 {
    SHARDED_LOCK_ACQS.with(Cell::get)
}

/// A scoped tally of lock acquisitions on the current thread.
///
/// ```
/// use obs::tally::LockTally;
/// let tally = LockTally::begin();
/// // ... run the code under scrutiny on this thread ...
/// assert_eq!(tally.global_delta(), 0, "fast path must stay lock-free");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LockTally {
    global_start: u64,
    sharded_start: u64,
}

impl LockTally {
    /// Starts a tally at the current thread's counters.
    pub fn begin() -> LockTally {
        LockTally {
            global_start: global_locks_on_thread(),
            sharded_start: sharded_locks_on_thread(),
        }
    }

    /// Starts an isolated, self-resetting tally: the thread's counters are
    /// zeroed for the guard's lifetime and restored on drop, so nothing
    /// observed inside the scope leaks into a later test on the same
    /// thread (and nothing from before the scope is counted by it).
    pub fn scope() -> LockScope {
        let saved_global = GLOBAL_LOCK_ACQS.with(|c| c.replace(0));
        let saved_sharded = SHARDED_LOCK_ACQS.with(|c| c.replace(0));
        LockScope {
            saved_global,
            saved_sharded,
        }
    }

    /// Process-global lock acquisitions since `begin` on this thread.
    pub fn global_delta(&self) -> u64 {
        global_locks_on_thread() - self.global_start
    }

    /// Sharded lock acquisitions since `begin` on this thread.
    pub fn sharded_delta(&self) -> u64 {
        sharded_locks_on_thread() - self.sharded_start
    }
}

/// RAII guard from [`LockTally::scope`]: an isolated lock tally whose
/// counters start at zero and whose effects vanish when it drops.
#[derive(Debug)]
pub struct LockScope {
    saved_global: u64,
    saved_sharded: u64,
}

impl LockScope {
    /// Process-global lock acquisitions on this thread since the scope
    /// began.
    pub fn global(&self) -> u64 {
        global_locks_on_thread()
    }

    /// Sharded lock acquisitions on this thread since the scope began.
    pub fn sharded(&self) -> u64 {
        sharded_locks_on_thread()
    }
}

impl Drop for LockScope {
    fn drop(&mut self) {
        // Restore the pre-scope counts exactly: acquisitions observed
        // inside the scope are discarded, acquisitions from before it are
        // reinstated, so `LockTally::begin()` tallies spanning the scope
        // stay consistent.
        GLOBAL_LOCK_ACQS.with(|c| c.set(self.saved_global));
        SHARDED_LOCK_ACQS.with(|c| c.set(self.saved_sharded));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_counts_deltas() {
        let t = LockTally::begin();
        note_global_lock();
        note_sharded_lock();
        note_sharded_lock();
        assert_eq!(t.global_delta(), 1);
        assert_eq!(t.sharded_delta(), 2);
    }

    #[test]
    fn scope_isolates_and_restores() {
        note_global_lock();
        let before = global_locks_on_thread();
        {
            let scope = LockTally::scope();
            assert_eq!(scope.global(), 0, "scope starts from zero");
            note_global_lock();
            note_global_lock();
            note_sharded_lock();
            assert_eq!(scope.global(), 2);
            assert_eq!(scope.sharded(), 1);
        }
        assert_eq!(
            global_locks_on_thread(),
            before,
            "drop restores the pre-scope counts"
        );
    }

    #[test]
    fn nested_scopes_unwind_in_order() {
        let outer = LockTally::scope();
        note_global_lock();
        {
            let inner = LockTally::scope();
            note_global_lock();
            note_global_lock();
            assert_eq!(inner.global(), 2);
        }
        assert_eq!(outer.global(), 1, "inner scope's counts were discarded");
    }
}
