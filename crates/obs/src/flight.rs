//! Lock-free per-thread flight recorder.
//!
//! Each recording thread owns one bounded ring of span slots. A slot is a
//! tiny seqlock: a sequence word plus four data words (trace id, phase
//! code, virtual start, virtual duration). The owning thread is the only
//! writer; any thread may snapshot. The write protocol is
//!
//! 1. `seq <- seq + 1` (odd: slot is mid-update),
//! 2. store the four data words,
//! 3. `seq <- seq + 2` from the original value (even: slot is stable),
//!
//! all with sequentially-consistent atomics. A reader accepts a slot only
//! when it observes the *same even* sequence number before and after
//! reading the data words; because SeqCst stores from one thread appear to
//! every reader in program order, that condition guarantees the four words
//! belong to a single write — a span can never be read torn (the property
//! test in `tests/obs_props.rs` hammers exactly this).
//!
//! Cost contract on the recording path, per span: one `fetch_add` on the
//! ring head plus six plain atomic stores. No locks, no allocation, no
//! syscalls. The only lock in this module guards the process-wide ring
//! *registry*, taken once per thread on its first recorded span (and by
//! readers when snapshotting); it is counted via [`tally::note_global_lock`]
//! so `tests/lockfree.rs` can prove the steady state never touches it.
//!
//! When the ring wraps, the oldest spans are overwritten — a flight
//! recorder keeps the recent past, not the full history. Disabling the
//! recorder does not clear existing rings; consumers isolate their own
//! call by filtering on [`TraceId`], which is process-unique.

use std::cell::OnceCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::tally;
use crate::trace::TraceId;

/// Default per-thread ring capacity, in spans. A Null LRPC emits ~10
/// spans, so the default keeps the last few hundred calls per thread.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One completed phase of one call, in virtual (simulated) time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The call this phase belongs to.
    pub trace: TraceId,
    /// Phase code; the layer that recorded it owns the meaning
    /// (`firefly::meter::Phase::code()` for simulator spans).
    pub phase: u16,
    /// Virtual time at which the phase began, nanoseconds.
    pub start_ns: u64,
    /// Phase duration, nanoseconds.
    pub dur_ns: u64,
}

const SPAN_WORDS: usize = 4;
/// How many times a reader re-checks a slot that keeps changing under it
/// before giving up on that slot. In practice a slot is rewritten at most
/// once per `capacity` pushes, so collisions are rare and transient.
const READ_RETRIES: usize = 8;

struct Slot {
    /// Even: stable (0 = never written). Odd: mid-update.
    seq: AtomicU64,
    words: [AtomicU64; SPAN_WORDS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// A bounded, overwrite-oldest ring of span slots.
///
/// Single-writer / multi-reader: exactly one thread may call
/// [`FlightRing::push`] (in the recorder each thread owns its ring; the
/// thread-local accessor enforces this), while any number of threads may
/// call [`FlightRing::read_all`] concurrently.
pub struct FlightRing {
    slots: Box<[Slot]>,
    /// Total pushes ever; `head % capacity` is the next slot to write.
    head: AtomicU64,
    /// Head value at the start of the most recent [`FlightRing::read_all`]:
    /// pushes numbered below this were offered to a reader.
    read_mark: AtomicU64,
    /// Spans overwritten before any `read_all` offered them to a reader.
    dropped: AtomicU64,
}

impl FlightRing {
    /// Creates a ring holding up to `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> FlightRing {
        let capacity = capacity.max(1);
        FlightRing {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            read_mark: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of spans the ring can hold before overwriting.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed (including ones since overwritten).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Spans lost to overwrite before any reader saw them: push `n`
    /// reuses the slot of push `n - capacity`, and if no [`read_all`]
    /// had started after that older span was pushed, it was never
    /// readable — tail attribution uses this to report span *coverage*
    /// instead of silently sampling.
    ///
    /// [`read_all`]: FlightRing::read_all
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Records one span, overwriting the oldest if the ring is full.
    /// Writer-side of the seqlock; see the module docs for the protocol.
    #[inline]
    pub fn push(&self, span: SpanRecord) {
        let prev = self.head.fetch_add(1, Ordering::SeqCst);
        let idx = prev as usize % self.slots.len();
        if let Some(victim) = prev.checked_sub(self.slots.len() as u64) {
            // Overwriting push number `victim`; it was unread if no
            // read_all began after it landed.
            if victim >= self.read_mark.load(Ordering::SeqCst) {
                self.dropped.fetch_add(1, Ordering::SeqCst);
            }
        }
        let slot = &self.slots[idx];
        let seq = slot.seq.load(Ordering::SeqCst);
        slot.seq.store(seq + 1, Ordering::SeqCst); // odd: mid-update
        slot.words[0].store(span.trace.raw(), Ordering::SeqCst);
        slot.words[1].store(span.phase as u64, Ordering::SeqCst);
        slot.words[2].store(span.start_ns, Ordering::SeqCst);
        slot.words[3].store(span.dur_ns, Ordering::SeqCst);
        slot.seq.store(seq + 2, Ordering::SeqCst); // even: stable
    }

    /// Reads every stable span currently in the ring, in push order
    /// (oldest surviving span first). Slots that are mid-update after
    /// [`READ_RETRIES`] attempts are skipped rather than returned torn;
    /// never-written slots are skipped.
    ///
    /// Push order means starting the walk at `head % capacity` — the next
    /// slot to be overwritten, i.e. the oldest — not at slot 0: once the
    /// ring wraps, slot order and push order diverge. The head may advance
    /// under a concurrent reader; that only rotates where the walk starts,
    /// and every slot is still visited exactly once.
    pub fn read_all(&self) -> Vec<SpanRecord> {
        let cap = self.slots.len();
        let head = self.head.load(Ordering::SeqCst);
        // Every push numbered below `head` is being offered to this
        // reader; overwriting them later is not a drop. fetch_max keeps
        // the mark monotone under concurrent readers.
        self.read_mark.fetch_max(head, Ordering::SeqCst);
        let start = head as usize % cap;
        let mut out = Vec::with_capacity(cap);
        for i in 0..cap {
            if let Some(span) = Self::read_slot(&self.slots[(start + i) % cap]) {
                out.push(span);
            }
        }
        out
    }

    fn read_slot(slot: &Slot) -> Option<SpanRecord> {
        for _ in 0..READ_RETRIES {
            let before = slot.seq.load(Ordering::SeqCst);
            if before == 0 {
                return None; // never written
            }
            if before % 2 == 1 {
                std::hint::spin_loop();
                continue; // writer mid-update; re-check
            }
            let trace = slot.words[0].load(Ordering::SeqCst);
            let phase = slot.words[1].load(Ordering::SeqCst);
            let start_ns = slot.words[2].load(Ordering::SeqCst);
            let dur_ns = slot.words[3].load(Ordering::SeqCst);
            let after = slot.seq.load(Ordering::SeqCst);
            if before == after {
                return Some(SpanRecord {
                    trace: TraceId::from_raw(trace),
                    phase: phase as u16,
                    start_ns,
                    dur_ns,
                });
            }
            std::hint::spin_loop();
        }
        None // contended past the retry budget; drop rather than tear
    }
}

/// Process-wide recorder switch and ring registry.
static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static REGISTRY: Mutex<Vec<Arc<FlightRing>>> = Mutex::new(Vec::new());

thread_local! {
    /// This thread's ring, created (and registered globally) on first use.
    static THREAD_RING: OnceCell<Arc<FlightRing>> = const { OnceCell::new() };
}

/// Turns the recorder on with the current capacity setting.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the recorder on and sets the capacity used for rings created
/// from now on (threads that already recorded keep their ring as-is).
pub fn enable_with_capacity(capacity: usize) {
    CAPACITY.store(capacity.max(1), Ordering::SeqCst);
    enable();
}

/// Turns the recorder off. Existing rings keep their contents; filter
/// snapshots by [`TraceId`] rather than relying on disable-to-clear.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether [`record`] currently captures spans.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Records one span into the calling thread's ring, if the recorder is
/// enabled. First call on a thread registers its ring (one global lock,
/// tallied); every subsequent call is lock-free.
#[inline]
pub fn record(trace: TraceId, phase: u16, start_ns: u64, dur_ns: u64) {
    if !is_enabled() {
        return;
    }
    THREAD_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(FlightRing::new(CAPACITY.load(Ordering::SeqCst)));
            tally::note_global_lock();
            REGISTRY
                .lock()
                .expect("flight registry poisoned")
                .push(Arc::clone(&ring));
            ring
        });
        ring.push(SpanRecord {
            trace,
            phase,
            start_ns,
            dur_ns,
        });
    });
}

/// Collects every stable span from every thread's ring, ordered by
/// virtual start time (then trace, then phase, for determinism).
pub fn snapshot() -> Vec<SpanRecord> {
    tally::note_global_lock();
    let rings: Vec<Arc<FlightRing>> = REGISTRY
        .lock()
        .expect("flight registry poisoned")
        .iter()
        .cloned()
        .collect();
    let mut spans: Vec<SpanRecord> = rings.iter().flat_map(|r| r.read_all()).collect();
    spans.sort_by_key(|s| (s.start_ns, s.trace, s.phase));
    spans
}

/// Total spans ever pushed across every registered ring (including ones
/// since overwritten or read).
pub fn pushed_total() -> u64 {
    tally::note_global_lock();
    REGISTRY
        .lock()
        .expect("flight registry poisoned")
        .iter()
        .map(|r| r.pushed())
        .sum()
}

/// Total spans lost to overwrite before any reader saw them, summed
/// across every registered ring (see [`FlightRing::dropped`]). Exported
/// by the runtime as the `obs_flight_dropped_total` counter; monotone,
/// because rings are registered for the life of the process.
pub fn dropped_total() -> u64 {
    tally::note_global_lock();
    REGISTRY
        .lock()
        .expect("flight registry poisoned")
        .iter()
        .map(|r| r.dropped())
        .sum()
}

/// Snapshot filtered to one call. This is the isolation primitive: trace
/// ids are process-unique, so concurrent tests and threads cannot pollute
/// each other's view even though rings are shared process state.
pub fn spans_for(trace: TraceId) -> Vec<SpanRecord> {
    let mut spans = snapshot();
    spans.retain(|s| s.trace == trace);
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest() {
        let ring = FlightRing::new(4);
        for i in 0..6u64 {
            ring.push(SpanRecord {
                trace: TraceId::from_raw(1),
                phase: i as u16,
                start_ns: i,
                dur_ns: 1,
            });
        }
        let mut phases: Vec<u16> = ring.read_all().iter().map(|s| s.phase).collect();
        phases.sort_unstable();
        assert_eq!(phases, vec![2, 3, 4, 5], "spans 0 and 1 were overwritten");
        assert_eq!(ring.pushed(), 6);
    }

    #[test]
    fn read_all_preserves_push_order_across_wraparound() {
        // Regression: read_all used to walk slots in index order, so after
        // a wrap the tail of the ring (older spans in high slots) came out
        // *before* the freshly overwritten low slots. Push spans with
        // strictly increasing start_ns and require read_all to return them
        // already monotone — no sorting allowed here.
        let ring = FlightRing::new(4);
        for i in 0..7u64 {
            ring.push(SpanRecord {
                trace: TraceId::from_raw(1),
                phase: i as u16,
                start_ns: 100 + i,
                dur_ns: 1,
            });
        }
        let spans = ring.read_all();
        let starts: Vec<u64> = spans.iter().map(|s| s.start_ns).collect();
        assert_eq!(
            starts,
            vec![103, 104, 105, 106],
            "oldest surviving span first, in push order"
        );
        // An exact multiple of capacity wraps back to slot 0; order must
        // still hold.
        ring.push(SpanRecord {
            trace: TraceId::from_raw(1),
            phase: 7,
            start_ns: 107,
            dur_ns: 1,
        });
        let starts: Vec<u64> = ring.read_all().iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![104, 105, 106, 107]);
    }

    #[test]
    fn dropped_counts_only_unread_overwrites() {
        let ring = FlightRing::new(4);
        let span = |i: u64| SpanRecord {
            trace: TraceId::from_raw(1),
            phase: 0,
            start_ns: i,
            dur_ns: 1,
        };
        for i in 0..4 {
            ring.push(span(i));
        }
        assert_eq!(ring.dropped(), 0, "no overwrite yet");
        ring.push(span(4));
        assert_eq!(ring.dropped(), 1, "span 0 overwritten before any read");
        // A read marks everything pushed so far as offered; overwriting
        // those is not a drop...
        ring.read_all();
        for i in 5..9 {
            ring.push(span(i));
        }
        assert_eq!(ring.dropped(), 1, "spans 1..=4 were read before reuse");
        // ...but going a full lap past the read mark drops again.
        for i in 9..13 {
            ring.push(span(i));
        }
        assert_eq!(ring.dropped(), 5, "spans 5..=8 were never offered");
    }

    #[test]
    fn record_is_gated_by_enable() {
        // Runs in its own thread so this test owns a private ring and the
        // enable window can't capture spans from parallel tests into it.
        std::thread::spawn(|| {
            let trace = TraceId::next();
            record(trace, 7, 10, 5);
            assert!(
                spans_for(trace).is_empty(),
                "disabled recorder must drop spans"
            );
            enable();
            record(trace, 7, 10, 5);
            disable();
            let spans = spans_for(trace);
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].phase, 7);
            assert_eq!(spans[0].start_ns, 10);
            assert_eq!(spans[0].dur_ns, 5);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn concurrent_reads_never_tear() {
        let ring = Arc::new(FlightRing::new(8));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    // Keep all four words correlated so a torn read is
                    // detectable as an inconsistency.
                    ring.push(SpanRecord {
                        trace: TraceId::from_raw(i + 1),
                        phase: (i % 1000) as u16,
                        start_ns: i * 3,
                        dur_ns: i + 1,
                    });
                    i += 1;
                }
            })
        };
        for _ in 0..200 {
            for span in ring.read_all() {
                let i = span.trace.raw() - 1;
                assert_eq!(span.phase as u64, i % 1000, "torn span: phase");
                assert_eq!(span.start_ns, i * 3, "torn span: start");
                assert_eq!(span.dur_ns, i + 1, "torn span: duration");
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
