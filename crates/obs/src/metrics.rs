//! Atomic metrics: counters, gauges, log2-bucket histograms, and a named
//! registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`s around
//! atomics — components own a clone and update it with single atomic ops
//! on the hot path, no locks, no formatting. Names enter the picture only
//! in the [`Registry`], which maps name → handle for export; components
//! may create handles *unregistered* (e.g. an E-stack pool's busy gauge)
//! and have the runtime adopt them later via the `register_*` methods, so
//! metric plumbing never dictates construction order.
//!
//! The registry's interior maps are guarded by mutexes that are taken
//! only at registration and snapshot time — never per call — and every
//! acquisition is tallied via [`tally::note_global_lock`] so the lockfree
//! suite can prove the steady call path avoids them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::latency::{TailHistogram, TailSnapshot};
use crate::tally;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i` (for
/// `i >= 1`) holds values in `[2^(i-1), 2^i)`, up to bucket 64.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Monotone event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (occupancy, depth, state).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// Log2-bucket histogram of `u64` observations (latencies in ns, depths).
///
/// `observe` is three relaxed `fetch_add`s; bucket selection is a
/// leading-zeros count, no floating point, no search.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.0.count.load(Ordering::Relaxed))
            .field("sum", &self.0.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Index of the log2 bucket holding `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `index` (the largest value it holds).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let inner = &self.0;
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy. Under concurrent `observe` the fields are read
    /// independently, so `count`/`sum`/bucket totals may differ by the few
    /// observations in flight; once writers quiesce they agree exactly.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        let buckets = (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let n = inner.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// `(inclusive upper bound, count)` for each non-empty log2 bucket,
    /// in ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The quantile `q` in `[0, 1]` by exact rank selection over the log2
    /// buckets: the inclusive upper bound of the smallest bucket whose
    /// cumulative count reaches `ceil(q·count)` (at least 1). The rank is
    /// exact; the value is quantized to the bucket bound (up to 2× for a
    /// log2 histogram — use a tail histogram where that matters).
    /// `None` when empty. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(le, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(le);
            }
        }
        self.buckets.last().map(|&(le, _)| le)
    }
}

/// One named metric's frozen value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
    /// HDR-style tail histogram ([`crate::latency::TailHistogram`]).
    Tail(TailSnapshot),
}

/// A named metric captured by [`Registry::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSnapshot {
    pub name: String,
    pub value: MetricValue,
}

/// Point-in-time view of a whole registry, name-sorted (counters, then
/// gauges, then histograms, then tail histograms).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Looks up one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// Convenience: the value of a counter metric, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: the value of a gauge metric, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: a histogram metric's snapshot, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Convenience: a tail-histogram metric's snapshot, if present.
    pub fn tail(&self, name: &str) -> Option<&TailSnapshot> {
        match self.get(name)? {
            MetricValue::Tail(t) => Some(t),
            _ => None,
        }
    }
}

/// Name → handle table for export. One per runtime (not per process), so
/// parallel tests each observe only their own runtime's activity.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    tails: Mutex<BTreeMap<String, TailHistogram>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or creates the counter `name`. Registration-time only — keep
    /// the returned handle and update it lock-free thereafter.
    pub fn counter(&self, name: &str) -> Counter {
        tally::note_global_lock();
        self.counters
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        tally::note_global_lock();
        self.gauges
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        tally::note_global_lock();
        self.histograms
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Gets or creates the tail histogram `name`.
    pub fn tail(&self, name: &str) -> TailHistogram {
        tally::note_global_lock();
        self.tails
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Adopts an externally-owned counter under `name` (last writer wins).
    pub fn register_counter(&self, name: &str, counter: Counter) {
        tally::note_global_lock();
        self.counters
            .lock()
            .expect("metrics registry poisoned")
            .insert(name.to_string(), counter);
    }

    /// Adopts an externally-owned gauge under `name`.
    pub fn register_gauge(&self, name: &str, gauge: Gauge) {
        tally::note_global_lock();
        self.gauges
            .lock()
            .expect("metrics registry poisoned")
            .insert(name.to_string(), gauge);
    }

    /// Adopts an externally-owned histogram under `name`.
    pub fn register_histogram(&self, name: &str, histogram: Histogram) {
        tally::note_global_lock();
        self.histograms
            .lock()
            .expect("metrics registry poisoned")
            .insert(name.to_string(), histogram);
    }

    /// Adopts an externally-owned tail histogram under `name`.
    pub fn register_tail(&self, name: &str, tail: TailHistogram) {
        tally::note_global_lock();
        self.tails
            .lock()
            .expect("metrics registry poisoned")
            .insert(name.to_string(), tail);
    }

    /// Freezes every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        tally::note_global_lock();
        let counters: Vec<(String, Counter)> = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        tally::note_global_lock();
        let gauges: Vec<(String, Gauge)> = self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        tally::note_global_lock();
        let histograms: Vec<(String, Histogram)> = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        tally::note_global_lock();
        let tails: Vec<(String, TailHistogram)> = self
            .tails
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();

        let mut metrics = Vec::new();
        for (name, c) in counters {
            metrics.push(MetricSnapshot {
                name,
                value: MetricValue::Counter(c.get()),
            });
        }
        for (name, g) in gauges {
            metrics.push(MetricSnapshot {
                name,
                value: MetricValue::Gauge(g.get()),
            });
        }
        for (name, h) in histograms {
            metrics.push(MetricSnapshot {
                name,
                value: MetricValue::Histogram(h.snapshot()),
            });
        }
        for (name, t) in tails {
            metrics.push(MetricSnapshot {
                name,
                value: MetricValue::Tail(t.snapshot()),
            });
        }
        Snapshot { metrics }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
        }
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::new();
        for v in [0u64, 1, 3, 4, 1000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1008);
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(bucket_total, snap.count);
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let reg = Registry::new();
        let a = reg.counter("calls");
        let b = reg.counter("calls");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("calls"), Some(3));
    }

    #[test]
    fn registry_adopts_external_handles() {
        let reg = Registry::new();
        let busy = Gauge::new();
        busy.set(4);
        reg.register_gauge("estack_busy", busy.clone());
        assert_eq!(reg.snapshot().gauge("estack_busy"), Some(4));
        busy.dec();
        assert_eq!(reg.snapshot().gauge("estack_busy"), Some(3));
    }
}
