//! Property tests for the kernel abstractions.

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use kernel::ids::{DomainId, ThreadId};
use kernel::objects::{HandleError, HandleTable, RawHandle};
use kernel::thread::{Linkage, ReturnPath, Thread};
use proptest::prelude::*;

fn linkage(caller: u64, callee: u64) -> Linkage {
    Linkage {
        caller_domain: DomainId(caller),
        callee_domain: DomainId(callee),
        binding: RawHandle { id: 1, nonce: 1 },
        astack_index: 0,
        proc_index: 0,
        return_sp: 0,
        valid: true,
    }
}

proptest! {
    // ------------------------------------------------------------------
    // Handle table.
    // ------------------------------------------------------------------

    #[test]
    fn only_the_issued_handle_resolves(values in proptest::collection::vec(any::<u32>(), 1..20),
                                       perturb in 1u64..u64::MAX) {
        let table = HandleTable::new();
        let handles: Vec<RawHandle> = values.iter().map(|v| table.insert(*v)).collect();
        for (h, v) in handles.iter().zip(&values) {
            prop_assert_eq!(table.get(*h), Ok(*v));
            let forged = RawHandle { id: h.id, nonce: h.nonce ^ perturb };
            prop_assert_eq!(table.get(forged), Err(HandleError::Forged));
        }
    }

    #[test]
    fn revocation_order_does_not_matter(n in 1usize..16, order in proptest::collection::vec(any::<u16>(), 1..16)) {
        let table = HandleTable::new();
        let handles: Vec<RawHandle> = (0..n as u32).map(|v| table.insert(v)).collect();
        let mut revoked = std::collections::HashSet::new();
        for &o in &order {
            let idx = o as usize % handles.len();
            table.revoke(handles[idx]);
            revoked.insert(idx);
        }
        for (i, h) in handles.iter().enumerate() {
            if revoked.contains(&i) {
                prop_assert_eq!(table.get(*h), Err(HandleError::Dangling));
            } else {
                prop_assert_eq!(table.get(*h), Ok(i as u32));
            }
        }
        prop_assert_eq!(table.len(), handles.len() - revoked.len());
    }

    // ------------------------------------------------------------------
    // Linkage stack.
    // ------------------------------------------------------------------

    #[test]
    fn linkage_stack_unwinds_lifo(domains in proptest::collection::vec(2u64..10, 1..8)) {
        // Thread starts in domain 1, calls through a chain of domains.
        let t = Thread::new(ThreadId(1), DomainId(1));
        let mut chain = vec![1u64];
        for &d in &domains {
            t.push_linkage(linkage(*chain.last().unwrap(), d));
            chain.push(d);
        }
        prop_assert_eq!(t.call_depth(), domains.len());
        // Unwinding visits the callers in reverse.
        for expected in chain.iter().rev().skip(1) {
            match t.pop_linkage() {
                ReturnPath::Return { to, call_failed } => {
                    prop_assert!(!call_failed);
                    prop_assert_eq!(to.caller_domain, DomainId(*expected));
                    prop_assert_eq!(t.current_domain(), DomainId(*expected));
                }
                ReturnPath::DestroyThread => prop_assert!(false, "valid chain must unwind"),
            }
        }
        prop_assert_eq!(t.call_depth(), 0);
    }

    #[test]
    fn invalidating_a_middle_domain_skips_to_the_next_valid_caller(
        depth in 2usize..6,
        victim in 1usize..5,
    ) {
        let victim = victim.min(depth - 1);
        let t = Thread::new(ThreadId(1), DomainId(1));
        // Chain 1 -> 2 -> 3 -> ... (domain d = index + 1).
        for i in 0..depth {
            t.push_linkage(linkage(i as u64 + 1, i as u64 + 2));
        }
        // A middle domain dies (its linkages as caller AND callee go
        // invalid).
        let dead = DomainId(victim as u64 + 1);
        let invalidated = t.invalidate_linkages_involving(dead);
        prop_assert!(invalidated >= 1);
        // Unwind from the top: at some point we must see call_failed and
        // land strictly below the dead domain.
        let mut saw_failure = false;
        let mut destroyed = false;
        loop {
            match t.pop_linkage() {
                ReturnPath::Return { to, call_failed } => {
                    saw_failure |= call_failed;
                    prop_assert_ne!(to.caller_domain, dead, "never return into a dead domain");
                    if t.call_depth() == 0 {
                        break;
                    }
                }
                ReturnPath::DestroyThread => {
                    destroyed = true;
                    break;
                }
            }
        }
        // The failure surfaces either as a call-failed exception in some
        // surviving caller, or — when every linkage involved the dead
        // domain — as thread destruction.
        prop_assert!(
            saw_failure || destroyed,
            "skipping invalid linkages must raise call-failed or destroy the thread"
        );
    }
}

// ----------------------------------------------------------------------
// Termination collector, randomized topology.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn terminating_any_domain_leaves_no_valid_linkage_involving_it(
        edges in proptest::collection::vec((0usize..5, 0usize..5), 1..10),
        victim in 0usize..5,
    ) {
        let kernel = kernel::kernel::Kernel::new(Machine::new(1, CostModel::cvax_firefly()));
        let domains: Vec<_> = (0..5).map(|i| kernel.create_domain(format!("d{i}"))).collect();
        let thread = kernel.spawn_thread(&domains[0]);
        for &(from, to) in &edges {
            if from != to {
                thread.push_linkage(Linkage {
                    caller_domain: domains[from].id(),
                    callee_domain: domains[to].id(),
                    binding: RawHandle { id: 1, nonce: 1 },
                    astack_index: 0,
                    proc_index: 0,
                    return_sp: 0,
                    valid: true,
                });
            }
        }
        kernel.terminate_domain(&domains[victim]);
        for l in thread.linkages() {
            if l.caller_domain == domains[victim].id() || l.callee_domain == domains[victim].id() {
                prop_assert!(!l.valid, "collector must invalidate every involved linkage");
            }
        }
    }
}
