//! Kernel object handles.
//!
//! The paper requires that "the kernel can detect a forged Binding Object,
//! so clients cannot bypass the binding phase". [`HandleTable`] provides
//! that property for any kernel object: each registered object is named by
//! a [`RawHandle`] carrying both a table index and a 64-bit nonce; lookup
//! fails unless both match, and revocation invalidates the handle without
//! reusing the nonce.
//!
//! The table is *sharded* (Section 3.4, "design for concurrency"): entries
//! are spread over [`SHARD_COUNT`] independently locked shards keyed by the
//! handle id, so Binding Object validation on the call fast path only
//! touches the one shard owning the handle — concurrent calls through
//! different bindings never serialize on a common lock. Validation takes
//! the shard's read lock, so concurrent readers of even the *same* binding
//! proceed in parallel; only insert/revoke write.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

/// Number of shards. A power of two so `id % SHARD_COUNT` is a mask;
/// sequential ids round-robin across shards.
pub const SHARD_COUNT: usize = 16;

/// A kernel-issued, forgery-detectable object handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RawHandle {
    /// Table slot.
    pub id: u64,
    /// Per-object nonce; a handle with the right id but the wrong nonce is
    /// rejected as forged.
    pub nonce: u64,
}

/// Why a handle lookup failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HandleError {
    /// The id names no live object (never existed, or was revoked).
    Dangling,
    /// The id exists but the nonce does not match: a forged or stale
    /// handle.
    Forged,
}

impl core::fmt::Display for HandleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HandleError::Dangling => write!(f, "handle names no live kernel object"),
            HandleError::Forged => write!(f, "handle nonce mismatch (forged or revoked)"),
        }
    }
}

impl std::error::Error for HandleError {}

/// SplitMix64 — a small deterministic generator for handle nonces.
///
/// The simulation does not need cryptographic nonces, only the *mechanism*
/// of nonce validation; determinism keeps experiments reproducible. Pure
/// function of the sequence position, so nonce generation needs no lock —
/// an atomic counter supplies the positions.
fn splitmix64(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A table of kernel objects addressed by forgery-detectable handles.
pub struct HandleTable<T> {
    next_id: AtomicU64,
    nonce_seq: AtomicU64,
    shards: Vec<RwLock<HashMap<u64, (u64, T)>>>,
}

impl<T> HandleTable<T> {
    /// Creates an empty table.
    pub fn new() -> HandleTable<T> {
        HandleTable {
            next_id: AtomicU64::new(1),
            nonce_seq: AtomicU64::new(0xF1FE_F1FE_0001_0001),
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, id: u64) -> &RwLock<HashMap<u64, (u64, T)>> {
        &self.shards[(id as usize) & (SHARD_COUNT - 1)]
    }

    /// Registers an object and returns its handle.
    pub fn insert(&self, value: T) -> RawHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let seq = self
            .nonce_seq
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let nonce = splitmix64(seq);
        firefly::meter::note_sharded_lock();
        self.shard(id).write().insert(id, (nonce, value));
        RawHandle { id, nonce }
    }

    /// Validates a handle and clones out the object.
    ///
    /// This is the call-fast-path entry: a read lock on one shard, shared
    /// with every concurrent validation of handles in the same shard.
    pub fn get(&self, handle: RawHandle) -> Result<T, HandleError>
    where
        T: Clone,
    {
        firefly::meter::note_sharded_lock();
        let shard = self.shard(handle.id).read();
        match shard.get(&handle.id) {
            None => Err(HandleError::Dangling),
            Some((nonce, _)) if *nonce != handle.nonce => Err(HandleError::Forged),
            Some((_, v)) => Ok(v.clone()),
        }
    }

    /// Validates a handle and applies `f` to the object in place.
    pub fn with<R>(&self, handle: RawHandle, f: impl FnOnce(&T) -> R) -> Result<R, HandleError> {
        firefly::meter::note_sharded_lock();
        let shard = self.shard(handle.id).read();
        match shard.get(&handle.id) {
            None => Err(HandleError::Dangling),
            Some((nonce, _)) if *nonce != handle.nonce => Err(HandleError::Forged),
            Some((_, v)) => Ok(f(v)),
        }
    }

    /// Revokes a handle; subsequent lookups return [`HandleError::Dangling`].
    ///
    /// Returns the object if the handle was live.
    pub fn revoke(&self, handle: RawHandle) -> Option<T> {
        firefly::meter::note_sharded_lock();
        let mut shard = self.shard(handle.id).write();
        match shard.get(&handle.id) {
            Some((nonce, _)) if *nonce == handle.nonce => shard.remove(&handle.id).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Revokes every handle whose object matches `pred`, returning the
    /// revoked objects (termination sweep — a slow path that visits every
    /// shard in turn, never holding two shard locks at once).
    pub fn revoke_matching(&self, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut revoked = Vec::new();
        for shard in &self.shards {
            firefly::meter::note_sharded_lock();
            let mut shard = shard.write();
            let ids: Vec<u64> = shard
                .iter()
                .filter(|(_, (_, v))| pred(v))
                .map(|(id, _)| *id)
                .collect();
            revoked.extend(
                ids.into_iter()
                    .filter_map(|id| shard.remove(&id).map(|(_, v)| v)),
            );
        }
        revoked
    }

    /// Visits every live object (diagnostics sweep — metrics samplers use
    /// it). Like [`HandleTable::revoke_matching`], it walks the shards in
    /// turn, never holding two shard locks at once; only a read lock is
    /// taken per shard.
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        for shard in &self.shards {
            firefly::meter::note_sharded_lock();
            let shard = shard.read();
            for (_, (_, v)) in shard.iter() {
                f(v);
            }
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                firefly::meter::note_sharded_lock();
                s.read().len()
            })
            .sum()
    }

    /// True if no objects are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for HandleTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get() {
        let table = HandleTable::new();
        let h = table.insert("binding");
        assert_eq!(table.get(h).unwrap(), "binding");
    }

    #[test]
    fn forged_nonce_is_detected() {
        let table = HandleTable::new();
        let h = table.insert(42u32);
        let forged = RawHandle {
            id: h.id,
            nonce: h.nonce ^ 1,
        };
        assert_eq!(table.get(forged), Err(HandleError::Forged));
    }

    #[test]
    fn guessed_id_is_dangling() {
        let table: HandleTable<u32> = HandleTable::new();
        let fake = RawHandle { id: 999, nonce: 7 };
        assert_eq!(table.get(fake), Err(HandleError::Dangling));
    }

    #[test]
    fn revoked_handle_stops_working() {
        let table = HandleTable::new();
        let h = table.insert(1u8);
        assert_eq!(table.revoke(h), Some(1));
        assert_eq!(table.get(h), Err(HandleError::Dangling));
        assert_eq!(table.revoke(h), None, "double revoke is harmless");
    }

    #[test]
    fn revoke_with_wrong_nonce_fails() {
        let table = HandleTable::new();
        let h = table.insert(1u8);
        let forged = RawHandle {
            id: h.id,
            nonce: h.nonce ^ 0xFF,
        };
        assert_eq!(table.revoke(forged), None);
        assert_eq!(table.get(h), Ok(1), "object survives a forged revoke");
    }

    #[test]
    fn revoke_matching_sweeps() {
        let table = HandleTable::new();
        table.insert(1u8);
        table.insert(2u8);
        table.insert(3u8);
        let mut revoked = table.revoke_matching(|v| *v % 2 == 1);
        revoked.sort_unstable();
        assert_eq!(revoked, vec![1, 3]);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn nonces_are_distinct() {
        let table = HandleTable::new();
        let a = table.insert(0u8);
        let b = table.insert(0u8);
        assert_ne!(a.nonce, b.nonce);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn entries_spread_across_shards() {
        // More entries than shards: every shard must own at least one, so
        // concurrent validations of distinct handles rarely share a lock.
        let table = HandleTable::new();
        let handles: Vec<RawHandle> = (0..SHARD_COUNT * 4).map(|i| table.insert(i)).collect();
        let mut per_shard = [0usize; SHARD_COUNT];
        for h in &handles {
            per_shard[(h.id as usize) & (SHARD_COUNT - 1)] += 1;
        }
        assert!(per_shard.iter().all(|&n| n > 0), "a shard got no entries");
        assert_eq!(table.len(), SHARD_COUNT * 4);
    }

    #[test]
    fn concurrent_insert_get_revoke_stays_consistent() {
        use std::sync::Arc;
        let table: Arc<HandleTable<usize>> = Arc::new(HandleTable::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let table = Arc::clone(&table);
                s.spawn(move || {
                    for i in 0..200 {
                        let h = table.insert(t * 1_000 + i);
                        assert_eq!(table.get(h), Ok(t * 1_000 + i));
                        if i % 2 == 0 {
                            assert_eq!(table.revoke(h), Some(t * 1_000 + i));
                            assert_eq!(table.get(h), Err(HandleError::Dangling));
                        }
                    }
                });
            }
        });
        assert_eq!(table.len(), 4 * 100, "odd-numbered inserts survive");
    }
}
