//! Kernel identifiers.

use core::fmt;

/// Identifier of a protection domain.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u64);

impl fmt::Debug for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain#{}", self.0)
    }
}

/// Identifier of a thread.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u64);

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread#{}", self.0)
    }
}
