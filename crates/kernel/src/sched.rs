//! Idle-processor scheduling.
//!
//! Section 3.4: "For each domain, the kernel keeps a counter indicating the
//! number of times that a processor idling in the context of that domain
//! was needed but not found. The kernel uses these counters to prod idle
//! processors to spin in domains showing the most LRPC activity."
//!
//! The per-domain counters live on [`crate::domain::Domain`]; this module
//! implements the prodding policy that redistributes idle CPUs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use firefly::cpu::Machine;

use crate::domain::Domain;

/// A call-ring doorbell: the one-trap wakeup a client rings after filling
/// the submission ring, io_uring style. Consecutive rings while the server
/// has not yet drained coalesce into a single pending wakeup — the whole
/// point of the batching plane is that many enqueued calls share one
/// kernel trap.
#[derive(Debug, Default)]
pub struct Doorbell {
    pending: AtomicBool,
    rung: AtomicU64,
    coalesced: AtomicU64,
}

impl Doorbell {
    /// A quiet doorbell.
    pub fn new() -> Doorbell {
        Doorbell::default()
    }

    /// Rings the doorbell. Returns `true` if a wakeup was already pending
    /// (this ring coalesced into it — no new trap is needed); `false` if
    /// this ring armed the doorbell and the caller must pay the trap.
    pub fn ring(&self) -> bool {
        let was_pending = self.pending.swap(true, Ordering::AcqRel);
        if was_pending {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rung.fetch_add(1, Ordering::Relaxed);
        }
        was_pending
    }

    /// Server-side drain: consumes the pending wakeup, if any. Returns
    /// `true` if a wakeup was pending.
    pub fn take(&self) -> bool {
        self.pending.swap(false, Ordering::AcqRel)
    }

    /// True if a wakeup is pending (armed but not yet drained).
    pub fn is_pending(&self) -> bool {
        self.pending.load(Ordering::Acquire)
    }

    /// Total rings that armed the doorbell (each cost one trap).
    pub fn rung_count(&self) -> u64 {
        self.rung.load(Ordering::Relaxed)
    }

    /// Total rings that coalesced into an already-pending wakeup.
    pub fn coalesced_count(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }
}

/// Redistributes the machine's idle processors to the domains that missed
/// the idle-processor optimization most often, then resets the counters.
///
/// Returns, per domain (in the order given), how many idle CPUs were parked
/// in its context. CPUs currently running (not idling in any context) are
/// never touched.
pub fn prod_idle_processors(machine: &Machine, domains: &[Arc<Domain>]) -> Vec<usize> {
    // Collect the idle CPUs.
    let idle_cpus: Vec<usize> = (0..machine.num_cpus())
        .filter(|&i| machine.cpu(i).idle_in().is_some())
        .collect();

    // Rank domains by missed opportunities, most-missed first; domains with
    // no misses get no dedicated spinner.
    let mut ranked: Vec<(usize, u64)> = domains
        .iter()
        .enumerate()
        .map(|(i, d)| (i, d.idle_misses()))
        .filter(|&(_, m)| m > 0)
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut assigned = vec![0usize; domains.len()];
    if ranked.is_empty() {
        return assigned;
    }

    // Scheduler picks are recorded decisions: one event per (cpu, domain)
    // assignment, in assignment order.
    let rr = machine
        .replay_session()
        .map(|session| session.stream("sched:prod"));

    // Round-robin the idle CPUs over the ranked domains, highest first.
    for (k, cpu_id) in idle_cpus.iter().enumerate() {
        let (dom_idx, _) = ranked[k % ranked.len()];
        machine
            .cpu(*cpu_id)
            .set_idle_in(Some(domains[dom_idx].ctx().id()));
        assigned[dom_idx] += 1;
        if let Some(h) = &rr {
            h.emit(
                replay::kind::SCHED_ASSIGN,
                (domains[dom_idx].id().0 << 16) | *cpu_id as u64,
            );
        }
    }

    for d in domains {
        d.reset_idle_counters();
    }
    assigned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::DomainId;
    use firefly::cost::CostModel;
    use firefly::vm::ContextId;
    use firefly::vm::VmContext;

    fn domain(id: u64, ctx: u64) -> Arc<Domain> {
        Arc::new(Domain::new(
            DomainId(id),
            format!("d{id}"),
            Arc::new(VmContext::new(ContextId(ctx))),
        ))
    }

    #[test]
    fn doorbell_coalesces_until_drained() {
        let bell = Doorbell::new();
        assert!(!bell.is_pending());
        assert!(!bell.ring(), "first ring arms the doorbell");
        assert!(bell.ring(), "second ring coalesces");
        assert!(bell.ring(), "third ring coalesces too");
        assert!(bell.is_pending());
        assert_eq!(bell.rung_count(), 1);
        assert_eq!(bell.coalesced_count(), 2);

        assert!(bell.take(), "drain consumes the pending wakeup");
        assert!(!bell.is_pending());
        assert!(!bell.take(), "second drain finds nothing");

        assert!(!bell.ring(), "after a drain the next ring arms again");
        assert_eq!(bell.rung_count(), 2);
    }

    #[test]
    fn busiest_domain_gets_the_idle_processors() {
        let machine = Machine::new(4, CostModel::cvax_firefly());
        // CPUs 2 and 3 are idle (in the kernel context by default).
        machine.cpu(2).set_idle_in(Some(ContextId::KERNEL));
        machine.cpu(3).set_idle_in(Some(ContextId::KERNEL));

        let busy = domain(1, 10);
        let quiet = domain(2, 11);
        for _ in 0..5 {
            busy.note_idle_miss();
        }
        quiet.note_idle_miss();

        let assigned = prod_idle_processors(&machine, &[Arc::clone(&busy), Arc::clone(&quiet)]);
        assert_eq!(
            assigned,
            vec![1, 1],
            "two idle CPUs split across two missing domains"
        );
        // The busiest domain is ranked first, so CPU 2 spins in its context.
        assert_eq!(machine.cpu(2).idle_in(), Some(ContextId(10)));
        assert_eq!(machine.cpu(3).idle_in(), Some(ContextId(11)));
        assert_eq!(busy.idle_misses(), 0, "counters are reset after prodding");
    }

    #[test]
    fn running_cpus_are_not_prodded() {
        let machine = Machine::new(2, CostModel::cvax_firefly());
        // No CPU marked idle.
        let d = domain(1, 10);
        d.note_idle_miss();
        let assigned = prod_idle_processors(&machine, &[d]);
        assert_eq!(assigned, vec![0]);
    }

    #[test]
    fn no_misses_means_no_assignment() {
        let machine = Machine::new(2, CostModel::cvax_firefly());
        machine.cpu(1).set_idle_in(Some(ContextId::KERNEL));
        let d = domain(1, 10);
        let assigned = prod_idle_processors(&machine, &[d]);
        assert_eq!(assigned, vec![0]);
        assert_eq!(
            machine.cpu(1).idle_in(),
            Some(ContextId::KERNEL),
            "idle CPU left alone"
        );
    }

    #[test]
    fn single_hot_domain_takes_all_idle_cpus() {
        let machine = Machine::new(4, CostModel::cvax_firefly());
        for i in 1..4 {
            machine.cpu(i).set_idle_in(Some(ContextId::KERNEL));
        }
        let hot = domain(1, 10);
        hot.note_idle_miss();
        let assigned = prod_idle_processors(&machine, &[Arc::clone(&hot)]);
        assert_eq!(assigned, vec![3]);
        for i in 1..4 {
            assert_eq!(machine.cpu(i).idle_in(), Some(ContextId(10)));
        }
    }
}
