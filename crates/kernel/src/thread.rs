//! Threads and their control blocks.
//!
//! LRPC's control transfer migrates the *client's* concrete thread into the
//! server's domain; the kernel records each outstanding call as a *linkage
//! record* on a stack in the thread control block ("The stack is necessary
//! so that a thread can be involved in more than one cross-domain procedure
//! call at a time", Section 3.2).
//!
//! Domain termination (Section 5.3) invalidates linkage records in place:
//! "When a thread returns from an LRPC call, it follows the stack of
//! linkage records referenced by the thread control block, returning to the
//! domain specified in the first valid linkage record. If any invalid
//! linkage records are found on the way, a call-failed exception is raised
//! in the caller. If the stack contains no valid linkage records, the
//! thread is destroyed."

use parking_lot::Mutex;

use crate::ids::{DomainId, ThreadId};
use crate::objects::RawHandle;

/// One outstanding cross-domain call, as recorded by the kernel.
#[derive(Clone, Copy, Debug)]
pub struct Linkage {
    /// Domain the call came from (where the thread returns to).
    pub caller_domain: DomainId,
    /// Domain being called.
    pub callee_domain: DomainId,
    /// The Binding Object the call was made through.
    pub binding: RawHandle,
    /// Index of the A-stack/linkage pair in use.
    pub astack_index: usize,
    /// Procedure index within the interface.
    pub proc_index: usize,
    /// The caller's saved stack pointer (simulated).
    pub return_sp: u64,
    /// False once the termination collector has invalidated this record.
    pub valid: bool,
}

/// Scheduling status of a thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadStatus {
    /// Runnable or running.
    Running,
    /// Blocked (waiting for an A-stack, a binding reply, ...).
    Blocked,
    /// Destroyed by the kernel; it will never run again.
    Destroyed,
}

/// Where a returning thread should go, per the Section 5.3 rules.
#[derive(Clone, Copy, Debug)]
pub enum ReturnPath {
    /// Return to `to.caller_domain`; if `call_failed` is set, the caller
    /// sees a call-failed exception (some linkage on the way was invalid).
    Return {
        /// The first valid linkage record found from the top.
        to: Linkage,
        /// True if invalid records were skipped on the way.
        call_failed: bool,
    },
    /// No valid linkage remained: the kernel destroys the thread.
    DestroyThread,
}

#[derive(Debug)]
struct ThreadInner {
    current_domain: DomainId,
    linkages: Vec<Linkage>,
    status: ThreadStatus,
    /// The simulated user stack pointer; the kernel points it at an
    /// E-stack in the server's domain during an LRPC ("updates the
    /// thread's user stack pointer to run off of the new E-stack").
    user_sp: u64,
    /// Set when the client abandoned this thread after a server captured
    /// it; an abandoned thread is destroyed on release instead of
    /// returning.
    abandoned: bool,
    /// Set by [`Thread::alert`]; "Taos does have an alert mechanism which
    /// allows one thread to signal another, but the notified thread may
    /// choose to ignore the alert" (Section 5.3).
    alerted: bool,
}

/// A kernel thread.
pub struct Thread {
    id: ThreadId,
    home_domain: DomainId,
    inner: Mutex<ThreadInner>,
}

impl Thread {
    /// Creates a runnable thread homed in `home`. Used by the kernel;
    /// library users call `Kernel::spawn_thread`.
    pub fn new(id: ThreadId, home: DomainId) -> Thread {
        Thread {
            id,
            home_domain: home,
            inner: Mutex::new(ThreadInner {
                current_domain: home,
                linkages: Vec::new(),
                status: ThreadStatus::Running,
                user_sp: 0,
                abandoned: false,
                alerted: false,
            }),
        }
    }

    /// The thread's id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// The domain the thread was created in.
    pub fn home_domain(&self) -> DomainId {
        self.home_domain
    }

    /// The domain the thread is currently executing in.
    pub fn current_domain(&self) -> DomainId {
        self.inner.lock().current_domain
    }

    /// Moves the thread's execution into `domain` (the kernel does this on
    /// each LRPC transfer).
    pub fn set_current_domain(&self, domain: DomainId) {
        self.inner.lock().current_domain = domain;
    }

    /// Current status.
    pub fn status(&self) -> ThreadStatus {
        self.inner.lock().status
    }

    /// Updates the status.
    pub fn set_status(&self, s: ThreadStatus) {
        self.inner.lock().status = s;
    }

    /// Number of outstanding cross-domain calls.
    pub fn call_depth(&self) -> usize {
        self.inner.lock().linkages.len()
    }

    /// The simulated user stack pointer.
    pub fn user_sp(&self) -> u64 {
        self.inner.lock().user_sp
    }

    /// Points the user stack pointer somewhere (an E-stack on call, the
    /// saved caller stack on return).
    pub fn set_user_sp(&self, sp: u64) {
        self.inner.lock().user_sp = sp;
    }

    /// Pushes a linkage record (call time) and moves execution into the
    /// callee domain.
    pub fn push_linkage(&self, linkage: Linkage) {
        let mut inner = self.inner.lock();
        inner.current_domain = linkage.callee_domain;
        inner.linkages.push(linkage);
    }

    /// Pops linkage records (return time), applying the Section 5.3 rules:
    /// skip invalid records (raising call-failed), return to the first
    /// valid one, destroy the thread if none remain or if it was abandoned
    /// by its client.
    pub fn pop_linkage(&self) -> ReturnPath {
        let mut inner = self.inner.lock();
        if inner.abandoned {
            inner.linkages.clear();
            inner.status = ThreadStatus::Destroyed;
            return ReturnPath::DestroyThread;
        }
        let mut call_failed = false;
        while let Some(l) = inner.linkages.pop() {
            if l.valid {
                inner.current_domain = l.caller_domain;
                return ReturnPath::Return { to: l, call_failed };
            }
            call_failed = true;
        }
        inner.status = ThreadStatus::Destroyed;
        ReturnPath::DestroyThread
    }

    /// Peeks at the top linkage record.
    pub fn top_linkage(&self) -> Option<Linkage> {
        self.inner.lock().linkages.last().copied()
    }

    /// Snapshot of the linkage stack, bottom to top.
    pub fn linkages(&self) -> Vec<Linkage> {
        self.inner.lock().linkages.clone()
    }

    /// Invalidates every linkage record that involves `domain` as caller or
    /// callee; returns how many were invalidated. The termination collector
    /// calls this for every thread.
    pub fn invalidate_linkages_involving(&self, domain: DomainId) -> usize {
        let mut inner = self.inner.lock();
        let mut n = 0;
        for l in &mut inner.linkages {
            if l.valid && (l.caller_domain == domain || l.callee_domain == domain) {
                l.valid = false;
                n += 1;
            }
        }
        n
    }

    /// Marks the thread abandoned by its client (captured-thread recovery,
    /// Section 5.3); it will be destroyed when it next returns.
    pub fn abandon(&self) {
        self.inner.lock().abandoned = true;
    }

    /// True if the client has abandoned this thread.
    pub fn is_abandoned(&self) -> bool {
        self.inner.lock().abandoned
    }

    /// Signals the thread (the Taos alert mechanism). Alerts are advisory:
    /// "the notified thread may choose to ignore the alert", so all this
    /// does is set a flag the thread can poll.
    pub fn alert(&self) {
        self.inner.lock().alerted = true;
    }

    /// True if an alert is pending.
    pub fn is_alerted(&self) -> bool {
        self.inner.lock().alerted
    }

    /// Consumes a pending alert, returning whether one was pending.
    pub fn take_alert(&self) -> bool {
        std::mem::take(&mut self.inner.lock().alerted)
    }

    /// True if this thread is currently executing an LRPC on behalf of some
    /// caller (used by the termination collector's scan).
    pub fn in_lrpc(&self) -> bool {
        !self.inner.lock().linkages.is_empty()
    }
}

impl core::fmt::Debug for Thread {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Thread")
            .field("id", &self.id)
            .field("home", &self.home_domain)
            .field("in", &inner.current_domain)
            .field("depth", &inner.linkages.len())
            .field("status", &inner.status)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linkage(caller: u64, callee: u64, valid: bool) -> Linkage {
        Linkage {
            caller_domain: DomainId(caller),
            callee_domain: DomainId(callee),
            binding: RawHandle { id: 1, nonce: 1 },
            astack_index: 0,
            proc_index: 0,
            return_sp: 0,
            valid,
        }
    }

    #[test]
    fn push_moves_execution_pop_returns() {
        let t = Thread::new(ThreadId(1), DomainId(1));
        t.push_linkage(linkage(1, 2, true));
        assert_eq!(t.current_domain(), DomainId(2));
        assert_eq!(t.call_depth(), 1);
        match t.pop_linkage() {
            ReturnPath::Return { to, call_failed } => {
                assert_eq!(to.caller_domain, DomainId(1));
                assert!(!call_failed);
            }
            ReturnPath::DestroyThread => panic!("valid linkage must return"),
        }
        assert_eq!(t.current_domain(), DomainId(1));
    }

    #[test]
    fn nested_calls_unwind_in_order() {
        let t = Thread::new(ThreadId(1), DomainId(1));
        t.push_linkage(linkage(1, 2, true));
        t.push_linkage(linkage(2, 3, true));
        assert_eq!(t.current_domain(), DomainId(3));
        match t.pop_linkage() {
            ReturnPath::Return { to, .. } => assert_eq!(to.caller_domain, DomainId(2)),
            ReturnPath::DestroyThread => panic!(),
        }
        match t.pop_linkage() {
            ReturnPath::Return { to, .. } => assert_eq!(to.caller_domain, DomainId(1)),
            ReturnPath::DestroyThread => panic!(),
        }
    }

    #[test]
    fn invalid_linkage_raises_call_failed_in_next_valid_caller() {
        let t = Thread::new(ThreadId(1), DomainId(1));
        t.push_linkage(linkage(1, 2, true));
        t.push_linkage(linkage(2, 3, false)); // Domain 3 (or 2) died.
        match t.pop_linkage() {
            ReturnPath::Return { to, call_failed } => {
                assert_eq!(to.caller_domain, DomainId(1));
                assert!(call_failed, "skipping an invalid record raises call-failed");
            }
            ReturnPath::DestroyThread => panic!(),
        }
    }

    #[test]
    fn no_valid_linkage_destroys_thread() {
        let t = Thread::new(ThreadId(1), DomainId(1));
        t.push_linkage(linkage(1, 2, false));
        assert!(matches!(t.pop_linkage(), ReturnPath::DestroyThread));
        assert_eq!(t.status(), ThreadStatus::Destroyed);
    }

    #[test]
    fn collector_invalidation_targets_involved_domains_only() {
        let t = Thread::new(ThreadId(1), DomainId(1));
        t.push_linkage(linkage(1, 2, true));
        t.push_linkage(linkage(2, 3, true));
        assert_eq!(t.invalidate_linkages_involving(DomainId(3)), 1);
        let ls = t.linkages();
        assert!(ls[0].valid && !ls[1].valid);
        // Idempotent: already-invalid records are not counted again.
        assert_eq!(t.invalidate_linkages_involving(DomainId(3)), 0);
    }

    #[test]
    fn alerts_are_advisory_and_consumable() {
        let t = Thread::new(ThreadId(1), DomainId(1));
        assert!(!t.is_alerted());
        t.alert();
        assert!(t.is_alerted(), "alert is pending");
        // The thread may ignore it indefinitely; nothing else changes.
        assert_eq!(t.status(), ThreadStatus::Running);
        assert!(t.take_alert());
        assert!(!t.is_alerted());
        assert!(!t.take_alert(), "alerts are consumed once");
    }

    #[test]
    fn abandoned_thread_is_destroyed_on_release() {
        let t = Thread::new(ThreadId(1), DomainId(1));
        t.push_linkage(linkage(1, 2, true));
        t.abandon();
        assert!(matches!(t.pop_linkage(), ReturnPath::DestroyThread));
        assert_eq!(t.status(), ThreadStatus::Destroyed);
    }
}
