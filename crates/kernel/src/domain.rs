//! Protection domains.
//!
//! A domain is the unit of protection: it owns a virtual-memory context and
//! the resources the kernel will reclaim when it terminates ("When a domain
//! terminates, all resources in its possession (virtual address space, open
//! file descriptors, threads, etc.) are reclaimed by the operating
//! system", Section 5.3).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use firefly::mem::RegionId;
use firefly::vm::VmContext;
use parking_lot::Mutex;

use crate::ids::DomainId;

/// Lifecycle state of a domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DomainState {
    /// Accepting calls.
    Active,
    /// Termination has begun; new in/out-calls are refused while the
    /// collector runs.
    Terminating,
    /// Fully reclaimed.
    Dead,
}

impl DomainState {
    fn from_u8(v: u8) -> DomainState {
        match v {
            0 => DomainState::Active,
            1 => DomainState::Terminating,
            _ => DomainState::Dead,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            DomainState::Active => 0,
            DomainState::Terminating => 1,
            DomainState::Dead => 2,
        }
    }
}

/// One protection domain.
pub struct Domain {
    id: DomainId,
    name: String,
    ctx: Arc<VmContext>,
    state: AtomicU8,
    /// Regions allocated on behalf of this domain (reclaimed at
    /// termination).
    owned_regions: Mutex<Vec<RegionId>>,
    /// Times a processor idling in this domain's context was wanted by a
    /// call but not found; the scheduler uses this to decide where idle
    /// processors should spin (Section 3.4).
    idle_misses: AtomicU64,
    /// Times the idle-processor optimization hit for this domain.
    idle_hits: AtomicU64,
}

impl Domain {
    /// Creates an active domain around a fresh VM context. Used by the
    /// kernel; library users call `Kernel::create_domain`.
    pub fn new(id: DomainId, name: impl Into<String>, ctx: Arc<VmContext>) -> Domain {
        Domain {
            id,
            name: name.into(),
            ctx,
            state: AtomicU8::new(DomainState::Active.as_u8()),
            owned_regions: Mutex::new(Vec::new()),
            idle_misses: AtomicU64::new(0),
            idle_hits: AtomicU64::new(0),
        }
    }

    /// The domain's id.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// The domain's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The domain's VM context.
    pub fn ctx(&self) -> &Arc<VmContext> {
        &self.ctx
    }

    /// Current lifecycle state.
    pub fn state(&self) -> DomainState {
        DomainState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// True if the domain accepts calls.
    pub fn is_active(&self) -> bool {
        self.state() == DomainState::Active
    }

    /// Moves the domain to a new lifecycle state.
    pub fn set_state(&self, s: DomainState) {
        self.state.store(s.as_u8(), Ordering::Release);
    }

    /// Records that `region` belongs to this domain's resources.
    pub fn own_region(&self, region: RegionId) {
        self.owned_regions.lock().push(region);
    }

    /// Takes the list of owned regions (used by the termination collector).
    pub fn take_owned_regions(&self) -> Vec<RegionId> {
        std::mem::take(&mut *self.owned_regions.lock())
    }

    /// Snapshot of the owned-region list.
    pub fn owned_regions(&self) -> Vec<RegionId> {
        self.owned_regions.lock().clone()
    }

    /// Notes that a call wanted an idle processor in this domain but found
    /// none.
    pub fn note_idle_miss(&self) {
        self.idle_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes that the idle-processor optimization hit.
    pub fn note_idle_hit(&self) {
        self.idle_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Missed idle-processor opportunities so far.
    pub fn idle_misses(&self) -> u64 {
        self.idle_misses.load(Ordering::Relaxed)
    }

    /// Successful idle-processor exchanges so far.
    pub fn idle_hits(&self) -> u64 {
        self.idle_hits.load(Ordering::Relaxed)
    }

    /// Clears the idle counters (the scheduler does this after acting on
    /// them).
    pub fn reset_idle_counters(&self) {
        self.idle_misses.store(0, Ordering::Relaxed);
        self.idle_hits.store(0, Ordering::Relaxed);
    }
}

impl core::fmt::Debug for Domain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Domain")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("state", &self.state())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firefly::vm::ContextId;

    fn domain() -> Domain {
        Domain::new(DomainId(1), "test", Arc::new(VmContext::new(ContextId(1))))
    }

    #[test]
    fn starts_active_and_transitions() {
        let d = domain();
        assert!(d.is_active());
        d.set_state(DomainState::Terminating);
        assert_eq!(d.state(), DomainState::Terminating);
        assert!(!d.is_active());
        d.set_state(DomainState::Dead);
        assert_eq!(d.state(), DomainState::Dead);
    }

    #[test]
    fn owned_regions_are_taken_once() {
        let d = domain();
        d.own_region(RegionId(10));
        d.own_region(RegionId(11));
        assert_eq!(d.take_owned_regions().len(), 2);
        assert!(d.take_owned_regions().is_empty());
    }

    #[test]
    fn idle_counters() {
        let d = domain();
        d.note_idle_miss();
        d.note_idle_miss();
        d.note_idle_hit();
        assert_eq!(d.idle_misses(), 2);
        assert_eq!(d.idle_hits(), 1);
        d.reset_idle_counters();
        assert_eq!(d.idle_misses(), 0);
    }
}
