//! Taos-style small kernel for the LRPC reproduction.
//!
//! The paper integrates LRPC into Taos, the Firefly's operating system: "a
//! medium-sized privileged kernel accessed through traps is responsible for
//! thread scheduling, virtual memory, and device access". This crate is
//! that kernel, reduced to the parts LRPC interacts with:
//!
//! * [`domain::Domain`] — protection domains with lifecycle state, owned
//!   resources and the idle-processor counters of Section 3.4;
//! * [`thread::Thread`] — threads whose control blocks carry the linkage
//!   stack LRPC uses for call/return, with the Section 5.3 unwinding rules
//!   (call-failed on invalid linkages, destruction when none remain);
//! * [`objects::HandleTable`] — forgery-detectable kernel object handles
//!   (the mechanism behind Binding Objects);
//! * [`nameserver::NameServer`] — interface registration and blocking
//!   import;
//! * [`sched`] — the policy that prods idle processors to spin in the
//!   domains showing the most LRPC activity;
//! * [`kernel::Kernel`] — the facade: domain/thread creation, pairwise
//!   shared-memory mapping, trap accounting and the termination collector.

pub mod domain;
pub mod ids;
pub mod kernel;
pub mod nameserver;
pub mod objects;
pub mod sched;
pub mod thread;

pub use domain::{Domain, DomainState};
pub use ids::{DomainId, ThreadId};
pub use kernel::{DomainSnapshot, Kernel, KernelSnapshot, TerminationReport};
pub use nameserver::NameServer;
pub use objects::{HandleError, HandleTable, RawHandle};
pub use sched::prod_idle_processors;
pub use thread::{Linkage, ReturnPath, Thread, ThreadStatus};
