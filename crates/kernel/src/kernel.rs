//! The kernel facade.
//!
//! [`Kernel`] ties the simulated machine to the protection-domain and
//! thread abstractions: domain and thread creation, memory mapping
//! (including the pairwise read-write mapping used for A-stacks), trap
//! accounting, and the domain-termination collector of Section 5.3.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use firefly::cpu::{Cpu, Machine};
use firefly::mem::Region;
use firefly::meter::{Meter, Phase};
use firefly::vm::Protection;
use parking_lot::Mutex;

use crate::domain::{Domain, DomainState};
use crate::ids::{DomainId, ThreadId};
use crate::thread::{Thread, ThreadStatus};

/// Result of running the termination collector on a domain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TerminationReport {
    /// Memory regions reclaimed.
    pub regions_freed: usize,
    /// Linkage records invalidated across all threads.
    pub linkages_invalidated: usize,
    /// Threads homed in the domain that were destroyed outright.
    pub threads_destroyed: usize,
    /// Foreign threads found executing inside the dying domain (their
    /// callers will see a call-failed exception when they return).
    pub threads_in_domain: usize,
}

/// The small kernel.
///
/// The domain and thread tables are process-global locks; every
/// acquisition is reported to [`firefly::meter::note_global_lock`]. None
/// of these tables are consulted on the LRPC call fast path — calls carry
/// `Arc`s to their domains and threads — so the zero-global-lock test can
/// hold.
pub struct Kernel {
    machine: Arc<Machine>,
    next_domain: AtomicU64,
    next_thread: AtomicU64,
    domains: Mutex<HashMap<DomainId, Arc<Domain>>>,
    threads: Mutex<HashMap<ThreadId, Arc<Thread>>>,
}

impl Kernel {
    /// Boots a kernel on the given machine.
    pub fn new(machine: Arc<Machine>) -> Arc<Kernel> {
        Arc::new(Kernel {
            machine,
            next_domain: AtomicU64::new(1),
            next_thread: AtomicU64::new(1),
            domains: Mutex::new(HashMap::new()),
            threads: Mutex::new(HashMap::new()),
        })
    }

    /// The machine the kernel runs on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Creates a new, empty protection domain.
    pub fn create_domain(&self, name: impl Into<String>) -> Arc<Domain> {
        let id = DomainId(self.next_domain.fetch_add(1, Ordering::Relaxed));
        let ctx = self.machine.create_context();
        let domain = Arc::new(Domain::new(id, name, ctx));
        firefly::meter::note_global_lock();
        self.domains.lock().insert(id, Arc::clone(&domain));
        domain
    }

    /// Looks up a domain by id.
    pub fn domain(&self, id: DomainId) -> Option<Arc<Domain>> {
        firefly::meter::note_global_lock();
        self.domains.lock().get(&id).cloned()
    }

    /// All live domains, in creation (id) order. The order is part of
    /// the determinism contract: `sched::prod_idle_processors` breaks
    /// miss-count ties by position in this list.
    pub fn domains(&self) -> Vec<Arc<Domain>> {
        firefly::meter::note_global_lock();
        let mut domains: Vec<Arc<Domain>> = self.domains.lock().values().cloned().collect();
        domains.sort_by_key(|d| d.id());
        domains
    }

    /// Spawns a thread homed in `home`.
    pub fn spawn_thread(&self, home: &Domain) -> Arc<Thread> {
        let id = ThreadId(self.next_thread.fetch_add(1, Ordering::Relaxed));
        let thread = Arc::new(Thread::new(id, home.id()));
        firefly::meter::note_global_lock();
        self.threads.lock().insert(id, Arc::clone(&thread));
        thread
    }

    /// Looks up a thread by id.
    pub fn thread(&self, id: ThreadId) -> Option<Arc<Thread>> {
        firefly::meter::note_global_lock();
        self.threads.lock().get(&id).cloned()
    }

    /// All live threads, in spawn (id) order.
    pub fn threads(&self) -> Vec<Arc<Thread>> {
        firefly::meter::note_global_lock();
        let mut threads: Vec<Arc<Thread>> = self.threads.lock().values().cloned().collect();
        threads.sort_by_key(|t| t.id());
        threads
    }

    /// Allocates a region and maps it into `domain` with the given
    /// protection, recording ownership for reclamation.
    pub fn alloc_mapped(
        &self,
        domain: &Domain,
        label: impl Into<String>,
        len: usize,
        prot: Protection,
    ) -> Arc<Region> {
        let region = self.machine.mem().alloc(label, len);
        domain.ctx().map(region.id(), prot);
        domain.own_region(region.id());
        region
    }

    /// Allocates `len` bytes mapped read-write into exactly two domains —
    /// the pairwise allocation that gives LRPC "a private channel between
    /// the client and server" (Section 3.5). The region is owned (for
    /// reclamation) by `owner`.
    pub fn map_pairwise(
        &self,
        label: impl Into<String>,
        owner: &Domain,
        other: &Domain,
        len: usize,
    ) -> Arc<Region> {
        let region = self.machine.mem().alloc(label, len);
        owner.ctx().map(region.id(), Protection::ReadWrite);
        other.ctx().map(region.id(), Protection::ReadWrite);
        owner.own_region(region.id());
        region
    }

    /// Charges one kernel trap (entry or exit) to `cpu`.
    pub fn trap(&self, cpu: &Cpu, meter: &mut Meter) {
        let cost = self.machine.cost().hw.kernel_trap;
        cpu.charge(cost);
        meter.record_span(Phase::Trap, cost, cpu.now());
    }

    /// Runs the domain-termination collector (Section 5.3).
    ///
    /// The kernel-owned steps are performed here: the domain stops
    /// accepting transfers, every thread's linkage records involving the
    /// domain are invalidated, threads homed in the domain (and not off
    /// executing in another domain) are destroyed, the address space is
    /// unmapped and its regions reclaimed. LRPC-level steps (revoking
    /// Binding Objects, unregistering interfaces) are driven by the LRPC
    /// runtime around this call.
    pub fn terminate_domain(&self, domain: &Domain) -> TerminationReport {
        let mut report = TerminationReport::default();
        if domain.state() != DomainState::Active {
            return report;
        }
        domain.set_state(DomainState::Terminating);

        // Scan all threads: invalidate linkages, destroy home threads,
        // count foreign threads captured inside the dying domain.
        for thread in self.threads() {
            report.linkages_invalidated += thread.invalidate_linkages_involving(domain.id());
            if thread.home_domain() == domain.id() && !thread.in_lrpc() {
                if thread.status() != ThreadStatus::Destroyed {
                    thread.set_status(ThreadStatus::Destroyed);
                    report.threads_destroyed += 1;
                }
            } else if thread.current_domain() == domain.id() {
                report.threads_in_domain += 1;
            }
        }

        // Reclaim the address space.
        let regions = domain.take_owned_regions();
        report.regions_freed = regions.len();
        for r in regions {
            domain.ctx().unmap(r);
            self.machine.mem().free(r);
        }
        domain.ctx().unmap_all();
        self.machine.destroy_context(domain.ctx().id());

        domain.set_state(DomainState::Dead);
        firefly::meter::note_global_lock();
        self.domains.lock().remove(&domain.id());
        report
    }

    /// Creates a replacement for a thread captured by a server domain
    /// (Section 5.3): the new thread is homed where the captured thread
    /// was, with the captured thread's linkage stack minus the captured
    /// call — "as if it had just returned from the server procedure with a
    /// call-aborted exception". The captured thread is marked abandoned and
    /// will be destroyed by the kernel when released.
    ///
    /// Returns `None` if the thread is not currently in a call.
    pub fn replace_captured_thread(&self, captured: &Thread) -> Option<Arc<Thread>> {
        let mut linkages = captured.linkages();
        let top = linkages.pop()?;
        captured.abandon();
        let id = ThreadId(self.next_thread.fetch_add(1, Ordering::Relaxed));
        let replacement = Arc::new(Thread::new(id, captured.home_domain()));
        for l in linkages {
            replacement.push_linkage(l);
        }
        replacement.set_current_domain(top.caller_domain);
        firefly::meter::note_global_lock();
        self.threads.lock().insert(id, Arc::clone(&replacement));
        Some(replacement)
    }

    /// A point-in-time diagnostic snapshot of kernel state.
    pub fn snapshot(&self) -> KernelSnapshot {
        let domains = self.domains();
        let threads = self.threads();
        KernelSnapshot {
            domains: domains
                .iter()
                .map(|d| DomainSnapshot {
                    id: d.id(),
                    name: d.name().to_string(),
                    state: d.state(),
                    regions: d.owned_regions().len(),
                    threads_homed: threads.iter().filter(|t| t.home_domain() == d.id()).count(),
                    threads_inside: threads
                        .iter()
                        .filter(|t| t.current_domain() == d.id())
                        .count(),
                })
                .collect(),
            threads: threads.len(),
            threads_in_calls: threads.iter().filter(|t| t.in_lrpc()).count(),
            regions: self.machine.mem().region_count(),
            allocated_bytes: self.machine.mem().allocated_bytes(),
        }
    }

    /// Removes a destroyed thread from the kernel table.
    pub fn reap_thread(&self, id: ThreadId) {
        firefly::meter::note_global_lock();
        let mut threads = self.threads.lock();
        if threads
            .get(&id)
            .is_some_and(|t| t.status() == ThreadStatus::Destroyed)
        {
            threads.remove(&id);
        }
    }
}

/// One domain's entry in a [`KernelSnapshot`].
#[derive(Clone, Debug)]
pub struct DomainSnapshot {
    /// Domain id.
    pub id: DomainId,
    /// Domain name.
    pub name: String,
    /// Lifecycle state.
    pub state: DomainState,
    /// Regions the domain owns.
    pub regions: usize,
    /// Threads homed in the domain.
    pub threads_homed: usize,
    /// Threads currently executing inside the domain (home or visiting).
    pub threads_inside: usize,
}

/// A point-in-time view of kernel state, for diagnostics.
#[derive(Clone, Debug)]
pub struct KernelSnapshot {
    /// Per-domain entries.
    pub domains: Vec<DomainSnapshot>,
    /// Live threads.
    pub threads: usize,
    /// Threads currently inside an LRPC.
    pub threads_in_calls: usize,
    /// Live memory regions.
    pub regions: usize,
    /// Total simulated bytes allocated.
    pub allocated_bytes: usize,
}

impl core::fmt::Display for KernelSnapshot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "{} domain(s), {} thread(s) ({} in calls), {} region(s), {} bytes",
            self.domains.len(),
            self.threads,
            self.threads_in_calls,
            self.regions,
            self.allocated_bytes
        )?;
        for d in &self.domains {
            writeln!(
                f,
                "  {:?} {:<20} {:?} regions={} homed={} inside={}",
                d.id, d.name, d.state, d.regions, d.threads_homed, d.threads_inside
            )?;
        }
        Ok(())
    }
}

impl core::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Kernel")
            .field("domains", &self.domains.lock().len())
            .field("threads", &self.threads.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::RawHandle;
    use crate::thread::Linkage;
    use firefly::cost::CostModel;

    fn boot() -> Arc<Kernel> {
        Kernel::new(Machine::new(2, CostModel::cvax_firefly()))
    }

    #[test]
    fn create_domain_and_thread() {
        let k = boot();
        let d = k.create_domain("server");
        let t = k.spawn_thread(&d);
        assert_eq!(t.home_domain(), d.id());
        assert!(k.domain(d.id()).is_some());
        assert!(k.thread(t.id()).is_some());
    }

    #[test]
    fn pairwise_mapping_excludes_third_parties() {
        let k = boot();
        let client = k.create_domain("client");
        let server = k.create_domain("server");
        let third = k.create_domain("third");
        let astack = k.map_pairwise("astack", &client, &server, 256);
        assert!(client.ctx().check(astack.id(), true, false).is_ok());
        assert!(server.ctx().check(astack.id(), true, false).is_ok());
        assert!(third.ctx().check(astack.id(), false, false).is_err());
    }

    #[test]
    fn trap_charges_and_meters() {
        let k = boot();
        let cpu = k.machine().cpu(0);
        let mut meter = Meter::enabled();
        k.trap(cpu, &mut meter);
        k.trap(cpu, &mut meter);
        assert_eq!(
            meter.total_for(Phase::Trap),
            firefly::Nanos::from_micros(36)
        );
    }

    fn linkage(caller: &Domain, callee: &Domain) -> Linkage {
        Linkage {
            caller_domain: caller.id(),
            callee_domain: callee.id(),
            binding: RawHandle { id: 1, nonce: 1 },
            astack_index: 0,
            proc_index: 0,
            return_sp: 0,
            valid: true,
        }
    }

    #[test]
    fn termination_reclaims_resources_and_invalidates_linkages() {
        let k = boot();
        let client = k.create_domain("client");
        let server = k.create_domain("server");
        let _buf = k.alloc_mapped(&server, "private", 1024, Protection::ReadWrite);
        let t = k.spawn_thread(&client);
        t.push_linkage(linkage(&client, &server));

        let report = k.terminate_domain(&server);
        assert_eq!(report.regions_freed, 1);
        assert_eq!(report.linkages_invalidated, 1);
        assert_eq!(
            report.threads_in_domain, 1,
            "the client's thread was inside the server"
        );
        assert!(k.domain(server.id()).is_none());
        assert_eq!(server.state(), DomainState::Dead);

        // The client's thread now returns with a call-failed exception and
        // is destroyed (no valid linkage below).
        match t.pop_linkage() {
            crate::thread::ReturnPath::DestroyThread => {}
            crate::thread::ReturnPath::Return { .. } => {
                panic!("the only linkage was invalidated; the thread must be destroyed")
            }
        }
    }

    #[test]
    fn termination_destroys_home_threads() {
        let k = boot();
        let d = k.create_domain("dying");
        let t = k.spawn_thread(&d);
        let report = k.terminate_domain(&d);
        assert_eq!(report.threads_destroyed, 1);
        assert_eq!(t.status(), ThreadStatus::Destroyed);
        k.reap_thread(t.id());
        assert!(k.thread(t.id()).is_none());
    }

    #[test]
    fn terminate_is_idempotent() {
        let k = boot();
        let d = k.create_domain("dying");
        let first = k.terminate_domain(&d);
        let second = k.terminate_domain(&d);
        assert_eq!(second, TerminationReport::default());
        let _ = first;
    }

    #[test]
    fn captured_thread_replacement() {
        let k = boot();
        let client = k.create_domain("client");
        let server = k.create_domain("capturer");
        let t = k.spawn_thread(&client);
        t.push_linkage(linkage(&client, &server));

        let replacement = k.replace_captured_thread(&t).expect("thread is in a call");
        assert_eq!(replacement.home_domain(), client.id());
        assert_eq!(replacement.current_domain(), client.id());
        assert_eq!(replacement.call_depth(), 0);
        assert!(t.is_abandoned());
        // When the captured thread is finally released it is destroyed.
        assert!(matches!(
            t.pop_linkage(),
            crate::thread::ReturnPath::DestroyThread
        ));
    }

    #[test]
    fn snapshot_reflects_state() {
        let k = boot();
        let a = k.create_domain("a");
        let b = k.create_domain("b");
        let t = k.spawn_thread(&a);
        t.push_linkage(linkage(&a, &b));
        let snap = k.snapshot();
        assert_eq!(snap.domains.len(), 2);
        assert_eq!(snap.threads, 1);
        assert_eq!(snap.threads_in_calls, 1);
        let b_entry = snap.domains.iter().find(|d| d.name == "b").unwrap();
        assert_eq!(b_entry.threads_inside, 1, "the thread migrated into b");
        assert_eq!(b_entry.threads_homed, 0);
        let printed = snap.to_string();
        assert!(printed.contains("2 domain(s)"));
        assert!(printed.contains("in calls"));
    }

    #[test]
    fn replacement_requires_an_outstanding_call() {
        let k = boot();
        let d = k.create_domain("idle");
        let t = k.spawn_thread(&d);
        assert!(k.replace_captured_thread(&t).is_none());
    }
}
