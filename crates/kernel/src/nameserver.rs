//! The name server.
//!
//! "A server module exports an interface through a clerk in the LRPC
//! run-time library included in every domain. The clerk registers the
//! interface with a name server and awaits import requests from clients"
//! (Section 3.1). The name server itself is a kernel-adjacent service:
//! a table from interface names to registered exports, with blocking
//! import (the importer waits while the kernel notifies the server's
//! waiting clerk).
//!
//! The payload type is generic so the LRPC runtime can register clerks and
//! the message-RPC baseline can register ports.

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A table of named exports with blocking lookup.
///
/// The table is a process-global lock (reported to
/// [`firefly::meter::note_global_lock`]); it is only consulted at bind
/// time, never during a call.
pub struct NameServer<T> {
    table: Mutex<HashMap<String, T>>,
    registered: Condvar,
}

impl<T: Clone> NameServer<T> {
    /// Creates an empty name server.
    pub fn new() -> NameServer<T> {
        NameServer {
            table: Mutex::new(HashMap::new()),
            registered: Condvar::new(),
        }
    }

    /// Registers (or replaces) an export under `name` and wakes any
    /// waiting importers.
    pub fn register(&self, name: impl Into<String>, export: T) {
        firefly::meter::note_global_lock();
        self.table.lock().insert(name.into(), export);
        self.registered.notify_all();
    }

    /// Removes the export under `name`, returning it if present.
    pub fn unregister(&self, name: &str) -> Option<T> {
        firefly::meter::note_global_lock();
        self.table.lock().remove(name)
    }

    /// Removes every export matching `pred` (used when a domain
    /// terminates), returning the removed names.
    pub fn unregister_matching(&self, mut pred: impl FnMut(&T) -> bool) -> Vec<String> {
        firefly::meter::note_global_lock();
        let mut table = self.table.lock();
        let names: Vec<String> = table
            .iter()
            .filter(|(_, v)| pred(v))
            .map(|(k, _)| k.clone())
            .collect();
        for n in &names {
            table.remove(n);
        }
        names
    }

    /// Non-blocking lookup.
    pub fn lookup(&self, name: &str) -> Option<T> {
        firefly::meter::note_global_lock();
        self.table.lock().get(name).cloned()
    }

    /// Blocking import: waits up to `timeout` for `name` to be registered.
    ///
    /// Returns `None` on timeout. This models the importer waiting while
    /// the kernel notifies the server's clerk.
    pub fn import_wait(&self, name: &str, timeout: Duration) -> Option<T> {
        firefly::meter::note_global_lock();
        let mut table = self.table.lock();
        loop {
            if let Some(v) = table.get(name) {
                return Some(v.clone());
            }
            if self.registered.wait_for(&mut table, timeout).timed_out() {
                return table.get(name).cloned();
            }
        }
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        firefly::meter::note_global_lock();
        self.table.lock().len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All registered names.
    pub fn names(&self) -> Vec<String> {
        firefly::meter::note_global_lock();
        self.table.lock().keys().cloned().collect()
    }
}

impl<T: Clone> Default for NameServer<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn register_lookup_unregister() {
        let ns = NameServer::new();
        ns.register("FileServer", 7u32);
        assert_eq!(ns.lookup("FileServer"), Some(7));
        assert_eq!(ns.unregister("FileServer"), Some(7));
        assert_eq!(ns.lookup("FileServer"), None);
    }

    #[test]
    fn import_wait_times_out_when_absent() {
        let ns: NameServer<u32> = NameServer::new();
        assert_eq!(ns.import_wait("nope", Duration::from_millis(10)), None);
    }

    #[test]
    fn import_wait_wakes_on_registration() {
        let ns = Arc::new(NameServer::new());
        let waiter = {
            let ns = Arc::clone(&ns);
            std::thread::spawn(move || ns.import_wait("Window", Duration::from_secs(5)))
        };
        // Give the importer a moment to start waiting, then register.
        std::thread::sleep(Duration::from_millis(20));
        ns.register("Window", 42u32);
        assert_eq!(waiter.join().unwrap(), Some(42));
    }

    #[test]
    fn unregister_matching_sweeps_by_payload() {
        let ns = NameServer::new();
        ns.register("a", 1u32);
        ns.register("b", 2u32);
        ns.register("c", 1u32);
        let mut removed = ns.unregister_matching(|v| *v == 1);
        removed.sort();
        assert_eq!(removed, vec!["a".to_string(), "c".to_string()]);
        assert_eq!(ns.len(), 1);
    }
}
