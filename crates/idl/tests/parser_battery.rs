//! Edge-case battery for the IDL lexer and parser.

use idl::ast::Dir;
use idl::parse;
use idl::types::{ComplexKind, Ty};

#[test]
fn whitespace_and_newline_forms() {
    for src in [
        "interface A{procedure P();}",
        "interface A { procedure P ( ) ; }",
        "interface A {\n\tprocedure\nP\n(\n)\n;\n}",
        "  interface A { procedure P(); }  ",
        "\ninterface A {\r\n procedure P();\r\n}\r\n",
    ] {
        let iface = parse(src).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        assert_eq!(iface.name, "A");
        assert_eq!(iface.procs.len(), 1);
    }
}

#[test]
fn both_comment_styles_anywhere() {
    let src = r#"
        // leading comment
        interface C { # hash comment
            // between items
            procedure P(
                a: int32, // trailing after a param
                b: bool   # and hash form
            ) -> int32; // after the ret
            # before the brace
        }
        // trailing comment
    "#;
    let iface = parse(src).expect("comments are trivia");
    assert_eq!(iface.procs[0].params.len(), 2);
}

#[test]
fn deeply_nested_records_parse() {
    let src = "interface N { procedure P(r: record { a: record { b: record { c: int32 } } }); }";
    let iface = parse(src).unwrap();
    let Ty::Record(outer) = &iface.procs[0].params[0].ty else {
        panic!()
    };
    let Ty::Record(mid) = &outer[0].1 else {
        panic!()
    };
    let Ty::Record(inner) = &mid[0].1 else {
        panic!()
    };
    assert_eq!(inner[0].0, "c");
    assert_eq!(inner[0].1, Ty::Int32);
}

#[test]
fn all_directions_and_annotations_combine() {
    let src = r#"interface D {
        procedure P(
            a: in int32,
            b: out bytes[4],
            c: inout var bytes[8] noninterpreted,
            d: in ref bytes[16] noninterpreted,
            e: ref int32
        );
    }"#;
    let p = &parse(src).unwrap().procs[0];
    assert_eq!(p.params[0].dir, Dir::In);
    assert_eq!(p.params[1].dir, Dir::Out);
    assert_eq!(p.params[2].dir, Dir::InOut);
    assert!(p.params[2].noninterpreted);
    assert!(p.params[3].by_ref && p.params[3].noninterpreted);
    assert!(p.params[4].by_ref);
    assert_eq!(
        p.params[4].dir,
        Dir::In,
        "ref without a direction defaults to in"
    );
}

#[test]
fn keyword_like_identifiers_are_allowed_as_names() {
    // Parameter/procedure/interface names may collide with keywords since
    // position disambiguates.
    let src = "interface record { procedure tree(bytes: int32, record: bool) -> int32; }";
    let iface = parse(src).unwrap();
    assert_eq!(iface.name, "record");
    assert_eq!(iface.procs[0].name, "tree");
    assert_eq!(iface.procs[0].params[0].name, "bytes");
}

#[test]
fn complex_type_keywords() {
    let src = "interface K { procedure P(a: list, b: tree, c: gc); }";
    let p = &parse(src).unwrap().procs[0];
    assert_eq!(p.params[0].ty, Ty::Complex(ComplexKind::LinkedList));
    assert_eq!(p.params[1].ty, Ty::Complex(ComplexKind::Tree));
    assert_eq!(p.params[2].ty, Ty::Complex(ComplexKind::GarbageCollected));
}

#[test]
fn attribute_order_and_repetition() {
    let src = r#"interface A {
        [astack_size = 64] [astacks = 2]
        procedure P();
        [astacks = 3]
        [astack_size = 128]
        procedure Q();
    }"#;
    let iface = parse(src).unwrap();
    assert_eq!(iface.procs[0].astack_count, Some(2));
    assert_eq!(iface.procs[0].astack_size, Some(64));
    assert_eq!(iface.procs[1].astack_count, Some(3));
    assert_eq!(iface.procs[1].astack_size, Some(128));
}

#[test]
fn error_battery() {
    // Each bad input must fail with a sensible message, not panic.
    let cases: &[(&str, &str)] = &[
        ("", "expected `interface`"),
        ("interface", "expected identifier"),
        ("interface X", "expected `{`"),
        ("interface X {", "expected"),
        ("interface X { procedure P() }", "expected `;`"),
        ("interface X { procedure P(a int32); }", "expected `:`"),
        ("interface X { procedure P(a:); }", "expected identifier"),
        (
            "interface X { procedure P(a: int32,); }",
            "expected identifier",
        ),
        ("interface X { procedure P() -> ; }", "expected identifier"),
        ("interface X { procedure P(x: bytes); }", "expected `[`"),
        (
            "interface X { procedure P(x: bytes[]); }",
            "expected integer",
        ),
        (
            "interface X { procedure P(x: var int32); }",
            "expected `bytes`",
        ),
        (
            "interface X { procedure P(x: record {}); }",
            "expected identifier",
        ),
        (
            "interface X { [bogus = 1] procedure P(); }",
            "unknown attribute",
        ),
        ("interface X { [astacks] procedure P(); }", "expected `=`"),
        (
            "interface X { procedure P(x: int32 frobnicate); }",
            "unknown parameter annotation",
        ),
        ("interface X { procedure P(); } }", "trailing input"),
        (
            "interface X { procedure P(); procedure P@(); }",
            "unexpected character",
        ),
        (
            "interface X { procedure P(x: int32) - int32; }",
            "expected `->`",
        ),
    ];
    for (src, want) in cases {
        let err = parse(src).expect_err(src);
        assert!(
            err.msg.contains(want),
            "{src:?}: expected message containing {want:?}, got {:?}",
            err.msg
        );
    }
}

#[test]
fn positions_point_at_the_offending_token() {
    let err = parse("interface X {\n  procedure P();\n  procedure Q(a: wat);\n}").unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.col > 10);
}

#[test]
fn large_but_valid_interface_parses() {
    // 100 procedures with varied signatures.
    let mut src = String::from("interface Big {\n");
    for i in 0..100 {
        src.push_str(&format!(
            "procedure P{i}(a: int32, b: bytes[{}], c: var bytes[{}]) -> int32;\n",
            1 + i % 64,
            1 + i % 512,
        ));
    }
    src.push('}');
    let iface = parse(&src).unwrap();
    assert_eq!(iface.procs.len(), 100);
    // And the whole thing compiles to stubs without issue.
    let compiled = idl::compile(&iface);
    assert_eq!(compiled.procs.len(), 100);
    assert!(compiled
        .procs
        .iter()
        .all(|p| p.lang == idl::StubLang::Assembly));
}
