//! Interface definitions.
//!
//! "Servers execute in a private protection domain, and each exports one or
//! more interfaces, making a specific set of procedures available to other
//! domains" (Section 3). An [`InterfaceDef`] is the compile-time
//! description the stub generator consumes; Section 5.2's knobs (the
//! number of simultaneous calls/A-stacks, defaulting to five) are
//! attributes on the definition.

use crate::types::Ty;

/// Direction of a parameter.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Dir {
    /// Passed from client to server (the default).
    #[default]
    In,
    /// Returned from server to client.
    Out,
    /// Passed in and returned.
    InOut,
}

impl Dir {
    /// True if the value travels client → server.
    pub fn is_in(self) -> bool {
        matches!(self, Dir::In | Dir::InOut)
    }

    /// True if the value travels server → client.
    pub fn is_out(self) -> bool {
        matches!(self, Dir::Out | Dir::InOut)
    }
}

/// One declared parameter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Ty,
    /// Direction.
    pub dir: Dir,
    /// The server does not interpret this value, so it needs no protection
    /// against the client changing it mid-call and no defensive copy
    /// (Section 3.5's `Write` example: "The array itself is not interpreted
    /// by the server, which is made no more secure by an assurance that the
    /// bytes won't change during the call").
    pub noninterpreted: bool,
    /// Passed by reference: the client stub copies the referent onto the
    /// A-stack and the server stub recreates a reference on its private
    /// E-stack ("The reference must be recreated to prevent the caller from
    /// passing in a bad address", Section 3.2).
    pub by_ref: bool,
}

impl Param {
    /// A plain by-value `in` parameter.
    pub fn value(name: impl Into<String>, ty: Ty) -> Param {
        Param {
            name: name.into(),
            ty,
            dir: Dir::In,
            noninterpreted: false,
            by_ref: false,
        }
    }
}

/// One declared procedure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcDef {
    /// Procedure name.
    pub name: String,
    /// Declared parameters, in order.
    pub params: Vec<Param>,
    /// Return type, if any.
    pub ret: Option<Ty>,
    /// Override for the number of simultaneous calls (A-stacks) permitted;
    /// `None` uses the interface default of five (Section 5.2).
    pub astack_count: Option<u32>,
    /// Override for the A-stack size; `None` computes it from the types
    /// (exact for fixed-size procedures, the Ethernet default otherwise).
    pub astack_size: Option<usize>,
    /// Declared safe to retry: calling the procedure twice with the same
    /// arguments is equivalent to calling it once. Retry policies only
    /// re-issue calls to procedures carrying this attribute.
    pub idempotent: bool,
    /// The server accepts a shared view of interpreted variable-size data
    /// instead of the copy-on-guard default (Section 3.3: arguments "must
    /// be copied once, from the optimized protocol's shared buffer into
    /// the server's private one", *unless* the server is willing to read
    /// them in place and tolerate the client changing them mid-call).
    pub inplace: bool,
}

impl ProcDef {
    /// A procedure with no attributes.
    pub fn new(name: impl Into<String>, params: Vec<Param>, ret: Option<Ty>) -> ProcDef {
        ProcDef {
            name: name.into(),
            params,
            ret,
            astack_count: None,
            astack_size: None,
            idempotent: false,
            inplace: false,
        }
    }

    /// True if every parameter and the return type have compile-time-known
    /// sizes ("Two-thirds of all procedures passed only parameters of fixed
    /// size").
    pub fn all_fixed_size(&self) -> bool {
        self.params.iter().all(|p| p.ty.fixed_size().is_some())
            && self.ret.as_ref().is_none_or(|t| t.fixed_size().is_some())
    }

    /// True if any parameter or the return type is complex (forces the
    /// Modula2+ marshaling stub).
    pub fn has_complex(&self) -> bool {
        self.params.iter().any(|p| p.ty.is_complex())
            || self.ret.as_ref().is_some_and(|t| t.is_complex())
    }

    /// Total fixed bytes transferred (arguments plus results), if all types
    /// are fixed-size.
    pub fn fixed_transfer_bytes(&self) -> Option<usize> {
        let mut total = 0;
        for p in &self.params {
            let sz = p.ty.fixed_size()?;
            if p.dir == Dir::InOut {
                total += 2 * sz;
            } else {
                total += sz;
            }
        }
        if let Some(r) = &self.ret {
            total += r.fixed_size()?;
        }
        Some(total)
    }
}

/// One exported interface.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InterfaceDef {
    /// Interface name, as registered with the name server.
    pub name: String,
    /// Declared procedures, in order; the index is the procedure identifier
    /// presented to the kernel at call time.
    pub procs: Vec<ProcDef>,
}

impl InterfaceDef {
    /// Creates an interface.
    pub fn new(name: impl Into<String>, procs: Vec<ProcDef>) -> InterfaceDef {
        InterfaceDef {
            name: name.into(),
            procs,
        }
    }

    /// Finds a procedure by name.
    pub fn proc_index(&self, name: &str) -> Option<usize> {
        self.procs.iter().position(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ComplexKind;

    #[test]
    fn dir_predicates() {
        assert!(Dir::In.is_in() && !Dir::In.is_out());
        assert!(Dir::Out.is_out() && !Dir::Out.is_in());
        assert!(Dir::InOut.is_in() && Dir::InOut.is_out());
    }

    #[test]
    fn fixed_size_detection() {
        let p = ProcDef::new(
            "Add",
            vec![Param::value("a", Ty::Int32), Param::value("b", Ty::Int32)],
            Some(Ty::Int32),
        );
        assert!(p.all_fixed_size());
        assert_eq!(p.fixed_transfer_bytes(), Some(12));

        let v = ProcDef::new("Log", vec![Param::value("msg", Ty::VarBytes(256))], None);
        assert!(!v.all_fixed_size());
        assert_eq!(v.fixed_transfer_bytes(), None);
    }

    #[test]
    fn inout_counts_both_directions() {
        let p = ProcDef::new(
            "BigInOut",
            vec![Param {
                name: "buf".into(),
                ty: Ty::ByteArray(200),
                dir: Dir::InOut,
                noninterpreted: false,
                by_ref: false,
            }],
            None,
        );
        assert_eq!(p.fixed_transfer_bytes(), Some(400));
    }

    #[test]
    fn complex_detection() {
        let p = ProcDef::new(
            "Walk",
            vec![Param::value("t", Ty::Complex(ComplexKind::Tree))],
            None,
        );
        assert!(p.has_complex());
    }

    #[test]
    fn proc_index_lookup() {
        let iface = InterfaceDef::new(
            "Svc",
            vec![
                ProcDef::new("A", vec![], None),
                ProcDef::new("B", vec![], None),
            ],
        );
        assert_eq!(iface.proc_index("B"), Some(1));
        assert_eq!(iface.proc_index("C"), None);
    }
}
