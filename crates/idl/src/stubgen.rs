//! The stub generator.
//!
//! "The LRPC stub generator produces run-time stubs in assembly language
//! directly from Modula2+ definition files. The use of assembly language is
//! possible because of the simplicity and stylized nature of LRPC stubs,
//! which consist mainly of move and trap instructions. ... The stub
//! generator emits Modula2+ code for more complicated, but less frequently
//! traveled execution paths. ... Calls having complex or heavyweight
//! parameters ... are handled with Modula2+ marshaling code. ... This
//! shift occurs at compile-time, eliminating the need to make run-time
//! decisions." (Section 3.3)
//!
//! In this reproduction, "assembly stubs" are [`StubProgram`]s: short
//! sequences of move/check/trap operations interpreted by the stub VM with
//! per-op costs. A procedure whose signature contains a complex type is
//! compiled to a [`StubLang::Modula2Plus`] program whose data ops run on
//! the (4× slower) marshaling path — the compile-time shift the paper
//! describes.

use crate::ast::{InterfaceDef, ProcDef};
use crate::layout::{layout, FrameLayout, SlotKind};
use crate::types::Ty;

/// Default number of simultaneous calls (A-stacks) per procedure
/// (Section 5.2: "The number defaults to five").
pub const DEFAULT_ASTACK_COUNT: u32 = 5;

/// The language a stub was generated in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StubLang {
    /// Optimized assembly — the common-case fast path.
    Assembly,
    /// Modula2+ marshaling code — complex/heavyweight parameters.
    Modula2Plus,
}

/// One stub operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StubOp {
    /// Client: take an A-stack off the procedure's LIFO queue.
    GetAStack,
    /// Client: move one argument into its A-stack slot.
    PushArg {
        /// Parameter index.
        param: usize,
    },
    /// Client: move one argument with the CARDINAL conformance check folded
    /// into the copy.
    PushArgChecked {
        /// Parameter index.
        param: usize,
    },
    /// Client: copy a by-reference referent onto the A-stack.
    CopyRefIn {
        /// Parameter index.
        param: usize,
    },
    /// Client/server: marshal a complex value into an out-of-band segment
    /// (Modula2+ library path).
    MarshalArg {
        /// Parameter index.
        param: usize,
    },
    /// Client: load the A-stack address, Binding Object and procedure
    /// identifier into registers.
    LoadRegisters,
    /// Trap to the kernel (call or return direction).
    Trap,
    /// Server: recreate a reference on the private E-stack ("The reference
    /// must be recreated to prevent the caller from passing in a bad
    /// address").
    RebuildRef {
        /// Parameter index.
        param: usize,
    },
    /// Server: defensively copy an interpreted argument off the shared
    /// A-stack before use (skipped for `noninterpreted` parameters).
    CopyArgIn {
        /// Parameter index.
        param: usize,
    },
    /// Server: unmarshal a complex argument.
    UnmarshalArg {
        /// Parameter index.
        param: usize,
    },
    /// Server: branch to the first instruction of the procedure.
    BranchToProc,
    /// Server: place the result (and `out` parameters) on the A-stack.
    PlaceResult,
    /// Client: copy returned values from the A-stack into their final
    /// destination.
    FetchResult,
    /// Client: push the A-stack back on the LIFO queue.
    ReleaseAStack,
}

impl StubOp {
    /// True for operations that move or check argument data (these charge
    /// per-op and per-byte costs in the stub VM; control ops are part of
    /// the fixed stub overhead).
    pub fn is_data_op(self) -> bool {
        !matches!(
            self,
            StubOp::GetAStack
                | StubOp::LoadRegisters
                | StubOp::Trap
                | StubOp::BranchToProc
                | StubOp::ReleaseAStack
        )
    }
}

/// A generated stub: an operation sequence in one of the two stub
/// languages.
#[derive(Clone, Debug)]
pub struct StubProgram {
    /// The language the generator chose at compile time.
    pub lang: StubLang,
    /// Operations, in execution order.
    pub ops: Vec<StubOp>,
}

impl StubProgram {
    /// A human-readable listing (what the generator would have emitted).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        out.push_str(match self.lang {
            StubLang::Assembly => "; assembly stub\n",
            StubLang::Modula2Plus => "; Modula2+ marshaling stub\n",
        });
        for op in &self.ops {
            out.push_str(&format!("    {op:?}\n"));
        }
        out
    }

    /// Number of data-movement operations.
    pub fn data_op_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_data_op()).count()
    }
}

/// One entry of the Procedure Descriptor List (Section 3.1).
#[derive(Clone, Debug)]
pub struct ProcedureDescriptor {
    /// Index of the procedure within the interface (the entry address in
    /// the server domain).
    pub entry: usize,
    /// Number of simultaneous calls initially permitted (= number of
    /// A-stacks to allocate pairwise).
    pub simultaneous_calls: u32,
    /// Size of each A-stack.
    pub astack_size: usize,
    /// Declared `[idempotent = 1]` in the interface: clients may safely
    /// retry a failed call to this procedure.
    pub idempotent: bool,
}

/// A fully compiled procedure: layout, descriptors and all four stub
/// halves.
#[derive(Clone, Debug)]
pub struct CompiledProc {
    /// Procedure index within the interface.
    pub index: usize,
    /// Procedure name.
    pub name: String,
    /// The declaration this was compiled from.
    pub def: ProcDef,
    /// A-stack frame layout.
    pub layout: FrameLayout,
    /// Stub language chosen at compile time.
    pub lang: StubLang,
    /// Client stub, call half.
    pub client_call: StubProgram,
    /// Client stub, return half.
    pub client_return: StubProgram,
    /// Server entry stub.
    pub server_entry: StubProgram,
    /// Server return stub.
    pub server_return: StubProgram,
    /// Procedure descriptor for the PDL.
    pub pd: ProcedureDescriptor,
}

/// A compiled interface: everything binding and calling needs.
#[derive(Clone, Debug)]
pub struct CompiledInterface {
    /// Interface name.
    pub name: String,
    /// Compiled procedures, index-aligned with the definition.
    pub procs: Vec<CompiledProc>,
}

impl CompiledInterface {
    /// The Procedure Descriptor List the clerk hands the kernel at bind
    /// time.
    pub fn pdl(&self) -> Vec<ProcedureDescriptor> {
        self.procs.iter().map(|p| p.pd.clone()).collect()
    }

    /// Finds a compiled procedure by name.
    pub fn proc_by_name(&self, name: &str) -> Option<&CompiledProc> {
        self.procs.iter().find(|p| p.name == name)
    }
}

fn needs_check(ty: &Ty) -> bool {
    ty.needs_conformance_check()
}

fn compile_proc(index: usize, def: &ProcDef) -> CompiledProc {
    let layout = layout(def);
    let lang = if def.has_complex() {
        StubLang::Modula2Plus
    } else {
        StubLang::Assembly
    };

    // Client call half: dequeue, push each in-direction argument, load
    // registers, trap.
    let mut client_call = vec![StubOp::GetAStack];
    for (i, p) in def.params.iter().enumerate() {
        if !p.dir.is_in() {
            continue;
        }
        let op = if layout.params[i].kind == SlotKind::OutOfBand {
            StubOp::MarshalArg { param: i }
        } else if p.by_ref {
            StubOp::CopyRefIn { param: i }
        } else if needs_check(&p.ty) {
            // The check is folded into the receiving copy; the client push
            // is an ordinary move.
            StubOp::PushArg { param: i }
        } else {
            StubOp::PushArg { param: i }
        };
        client_call.push(op);
    }
    client_call.push(StubOp::LoadRegisters);
    client_call.push(StubOp::Trap);

    // Server entry half: rebuild references, checked/defensive copies where
    // the server interprets the value, unmarshal complex arguments, branch.
    let mut server_entry = Vec::new();
    for (i, p) in def.params.iter().enumerate() {
        if !p.dir.is_in() {
            continue;
        }
        if layout.params[i].kind == SlotKind::OutOfBand {
            server_entry.push(StubOp::UnmarshalArg { param: i });
        } else if p.by_ref {
            server_entry.push(StubOp::RebuildRef { param: i });
        } else if needs_check(&p.ty) {
            server_entry.push(StubOp::CopyArgIn { param: i });
        } else if !def.inplace && !p.noninterpreted && p.ty.fixed_size().is_none() {
            // Interpreted variable data is copied off the shared A-stack so
            // the client cannot change it mid-use — unless the procedure is
            // declared `[inplace]` and accepts the shared view.
            server_entry.push(StubOp::CopyArgIn { param: i });
        }
    }
    server_entry.push(StubOp::BranchToProc);

    // Server return half: place results, trap back.
    let mut server_return = Vec::new();
    if def.ret.is_some() || def.params.iter().any(|p| p.dir.is_out()) {
        server_return.push(StubOp::PlaceResult);
    }
    server_return.push(StubOp::Trap);

    // Client return half: fetch results into their destination, requeue the
    // A-stack.
    let mut client_return = Vec::new();
    if def.ret.is_some() || def.params.iter().any(|p| p.dir.is_out()) {
        client_return.push(StubOp::FetchResult);
    }
    client_return.push(StubOp::ReleaseAStack);

    let pd = ProcedureDescriptor {
        entry: index,
        simultaneous_calls: def.astack_count.unwrap_or(DEFAULT_ASTACK_COUNT),
        astack_size: layout.astack_size,
        idempotent: def.idempotent,
    };

    CompiledProc {
        index,
        name: def.name.clone(),
        def: def.clone(),
        layout,
        lang,
        client_call: StubProgram {
            lang,
            ops: client_call,
        },
        client_return: StubProgram {
            lang,
            ops: client_return,
        },
        server_entry: StubProgram {
            lang,
            ops: server_entry,
        },
        server_return: StubProgram {
            lang,
            ops: server_return,
        },
        pd,
    }
}

/// Compiles an interface definition into stubs, layouts and descriptors.
pub fn compile(def: &InterfaceDef) -> CompiledInterface {
    CompiledInterface {
        name: def.name.clone(),
        procs: def
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| compile_proc(i, p))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Dir, Param};
    use crate::parse::parse;

    fn compiled(src: &str) -> CompiledInterface {
        compile(&parse(src).unwrap())
    }

    #[test]
    fn null_stub_is_move_and_trap_only() {
        let c = compiled("interface B { procedure Null(); }");
        let p = &c.procs[0];
        assert_eq!(p.lang, StubLang::Assembly);
        assert_eq!(
            p.client_call.ops,
            vec![StubOp::GetAStack, StubOp::LoadRegisters, StubOp::Trap]
        );
        assert_eq!(p.client_return.ops, vec![StubOp::ReleaseAStack]);
        assert_eq!(p.server_entry.ops, vec![StubOp::BranchToProc]);
        assert_eq!(p.server_return.ops, vec![StubOp::Trap]);
        assert_eq!(p.client_call.data_op_count(), 0);
    }

    #[test]
    fn add_stub_pushes_two_args_and_fetches_result() {
        let c = compiled("interface B { procedure Add(a: int32, b: int32) -> int32; }");
        let p = &c.procs[0];
        assert_eq!(p.client_call.data_op_count(), 2);
        assert!(p.client_return.ops.contains(&StubOp::FetchResult));
        assert!(p.server_return.ops.contains(&StubOp::PlaceResult));
    }

    #[test]
    fn complex_params_force_modula2_stubs_at_compile_time() {
        let c = compiled("interface B { procedure Walk(t: tree); }");
        let p = &c.procs[0];
        assert_eq!(p.lang, StubLang::Modula2Plus);
        assert!(p.client_call.ops.contains(&StubOp::MarshalArg { param: 0 }));
        assert!(p
            .server_entry
            .ops
            .contains(&StubOp::UnmarshalArg { param: 0 }));
    }

    #[test]
    fn by_ref_params_copy_in_and_rebuild() {
        let c = compiled("interface B { procedure W(h: int32, d: in ref bytes[100]); }");
        let p = &c.procs[0];
        assert!(p.client_call.ops.contains(&StubOp::CopyRefIn { param: 1 }));
        assert!(p
            .server_entry
            .ops
            .contains(&StubOp::RebuildRef { param: 1 }));
    }

    #[test]
    fn interpreted_variable_data_is_defensively_copied() {
        let c = compiled(
            "interface B { procedure A(d: var bytes[64]); procedure B(d: var bytes[64] noninterpreted); }",
        );
        assert!(c.procs[0]
            .server_entry
            .ops
            .contains(&StubOp::CopyArgIn { param: 0 }));
        assert!(
            !c.procs[1]
                .server_entry
                .ops
                .contains(&StubOp::CopyArgIn { param: 0 }),
            "noninterpreted data needs no defensive copy (Section 3.5)"
        );
    }

    #[test]
    fn inplace_procedures_accept_the_shared_view() {
        let c = compiled(
            "interface B { [inplace = 1] procedure A(d: var bytes[64]); \
             [inplace = 1] procedure C(n: cardinal, d: in ref bytes[32]); }",
        );
        assert!(
            !c.procs[0]
                .server_entry
                .ops
                .contains(&StubOp::CopyArgIn { param: 0 }),
            "[inplace] waives the defensive copy of interpreted variable data"
        );
        assert!(c.procs[0].def.inplace);
        // Conformance checks and reference rebuilds are not waivable.
        assert!(c.procs[1]
            .server_entry
            .ops
            .contains(&StubOp::CopyArgIn { param: 0 }));
        assert!(c.procs[1]
            .server_entry
            .ops
            .contains(&StubOp::RebuildRef { param: 1 }));
    }

    #[test]
    fn cardinal_gets_checked_copy_on_the_server_side() {
        let c = compiled("interface B { procedure P(n: cardinal); }");
        let p = &c.procs[0];
        assert!(p.server_entry.ops.contains(&StubOp::CopyArgIn { param: 0 }));
    }

    #[test]
    fn out_params_do_not_travel_in() {
        let def = InterfaceDef::new(
            "B",
            vec![ProcDef::new(
                "Read",
                vec![
                    Param::value("h", Ty::Int32),
                    Param {
                        name: "buf".into(),
                        ty: Ty::ByteArray(64),
                        dir: Dir::Out,
                        noninterpreted: false,
                        by_ref: false,
                    },
                ],
                Some(Ty::Int32),
            )],
        );
        let c = compile(&def);
        assert_eq!(
            c.procs[0].client_call.data_op_count(),
            1,
            "only the handle travels in"
        );
    }

    #[test]
    fn pdl_carries_defaults_and_overrides() {
        let c = compiled("interface B { procedure P(); [astacks = 9] procedure Q(a: int32); }");
        let pdl = c.pdl();
        assert_eq!(pdl[0].simultaneous_calls, DEFAULT_ASTACK_COUNT);
        assert_eq!(pdl[1].simultaneous_calls, 9);
        assert_eq!(pdl[1].astack_size, 4);
        assert_eq!(c.proc_by_name("Q").unwrap().index, 1);
    }

    #[test]
    fn disassembly_mentions_the_language() {
        let c = compiled("interface B { procedure Walk(t: tree); }");
        let asm = c.procs[0].client_call.disassemble();
        assert!(asm.contains("Modula2+"));
        assert!(asm.contains("MarshalArg"));
    }

    use crate::types::Ty;
}

#[cfg(test)]
mod golden_tests {
    use super::*;
    use crate::parse::parse;

    /// The exact stub programs for the paper's benchmark interface — a
    /// golden test so accidental stub-shape changes are caught.
    #[test]
    fn bench_interface_stubs_are_stable() {
        let iface = compile(
            &parse(
                r#"interface Bench {
                    procedure Null();
                    procedure Add(a: int32, b: int32) -> int32;
                    procedure BigIn(data: in bytes[200] noninterpreted);
                    procedure BigInOut(data: inout bytes[200] noninterpreted);
                }"#,
            )
            .unwrap(),
        );

        let shapes: Vec<(Vec<StubOp>, Vec<StubOp>)> = iface
            .procs
            .iter()
            .map(|p| (p.client_call.ops.clone(), p.server_return.ops.clone()))
            .collect();

        use StubOp::{GetAStack, LoadRegisters, PlaceResult, PushArg, Trap};
        assert_eq!(
            shapes[0],
            (vec![GetAStack, LoadRegisters, Trap], vec![Trap]),
            "Null"
        );
        assert_eq!(
            shapes[1],
            (
                vec![
                    GetAStack,
                    PushArg { param: 0 },
                    PushArg { param: 1 },
                    LoadRegisters,
                    Trap
                ],
                vec![PlaceResult, Trap]
            ),
            "Add"
        );
        assert_eq!(
            shapes[2],
            (
                vec![GetAStack, PushArg { param: 0 }, LoadRegisters, Trap],
                vec![Trap]
            ),
            "BigIn"
        );
        assert_eq!(
            shapes[3],
            (
                vec![GetAStack, PushArg { param: 0 }, LoadRegisters, Trap],
                vec![PlaceResult, Trap]
            ),
            "BigInOut"
        );

        // The A-stack sizing of the four tests: exact fixed sizes.
        let sizes: Vec<usize> = iface.procs.iter().map(|p| p.pd.astack_size).collect();
        // BigInOut's single inout slot serves both directions.
        assert_eq!(sizes, vec![4, 12, 200, 200]);
    }

    /// "a simple LRPC needs only one formal procedure call (into the
    /// client stub), and two returns" — the stub programs contain no
    /// procedure-call ops beyond the branch into the server procedure.
    #[test]
    fn stub_programs_contain_no_extra_calls() {
        let iface = compile(&parse("interface B { procedure P(a: int32) -> int32; }").unwrap());
        let p = &iface.procs[0];
        let all_ops = p
            .client_call
            .ops
            .iter()
            .chain(&p.client_return.ops)
            .chain(&p.server_entry.ops)
            .chain(&p.server_return.ops);
        let branches = all_ops
            .filter(|op| matches!(op, StubOp::BranchToProc))
            .count();
        assert_eq!(branches, 1, "exactly one branch into the procedure");
    }
}
