//! A-stack frame layout and sizing.
//!
//! Section 5.2: "When the size of each of a procedure's arguments and
//! return values are known at compile time, the A-stack size can be
//! determined exactly. In the presence of variable sized arguments, though,
//! the stub generator uses a default size equal to the Ethernet packet size
//! (this default also can be overridden). ... In cases where the arguments
//! are too large to fit into the A-stack, the stubs transfer data in a
//! large out-of-band memory segment."
//!
//! Complex (recursively defined) values have no static bound, so their
//! slot is always an 8-byte out-of-band descriptor.

use crate::ast::{Dir, ProcDef};

/// The Ethernet packet size, the default A-stack size for procedures with
/// variable-sized arguments.
pub const ETHERNET_PACKET_SIZE: usize = 1500;

/// Size of an out-of-band descriptor slot (segment id + length).
pub const OOB_DESCRIPTOR_SIZE: usize = 8;

/// Slot alignment on the A-stack.
const ALIGN: usize = 4;

/// How a parameter travels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotKind {
    /// Encoded bytes live inline in the A-stack slot.
    Inline,
    /// The slot holds a descriptor; the bytes travel in an out-of-band
    /// segment.
    OutOfBand,
}

/// One A-stack slot.
#[derive(Clone, Copy, Debug)]
pub struct Slot {
    /// Index of the parameter this slot carries; `None` for the return
    /// value.
    pub param_index: Option<usize>,
    /// Byte offset within the A-stack frame.
    pub offset: usize,
    /// Reserved size (the maximum encoding for variable types).
    pub size: usize,
    /// Travel direction.
    pub dir: Dir,
    /// Inline or out-of-band.
    pub kind: SlotKind,
}

/// The computed frame layout of one procedure.
#[derive(Clone, Debug)]
pub struct FrameLayout {
    /// One slot per parameter, in declaration order.
    pub params: Vec<Slot>,
    /// Slot for the return value, if any.
    pub ret: Option<Slot>,
    /// Total frame size in bytes (what one call consumes on its A-stack).
    pub frame_size: usize,
    /// The A-stack size the binder should allocate per simultaneous call.
    pub astack_size: usize,
    /// True if every slot size was known exactly at compile time.
    pub fixed: bool,
    /// True if any slot was demoted to an out-of-band segment.
    pub uses_out_of_band: bool,
}

impl FrameLayout {
    /// The slot of parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range; slot indices come from the same
    /// compiled procedure.
    pub fn param(&self, i: usize) -> &Slot {
        &self.params[i]
    }
}

fn align_up(x: usize) -> usize {
    x.div_ceil(ALIGN) * ALIGN
}

/// Computes the A-stack layout for a procedure.
pub fn layout(proc: &ProcDef) -> FrameLayout {
    // Pass 1: natural (inline-where-bounded) sizes.
    struct Pending {
        param_index: Option<usize>,
        natural: Option<usize>, // None => complex, always out-of-band
        dir: Dir,
    }
    let mut pending: Vec<Pending> = proc
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| Pending {
            param_index: Some(i),
            natural: p.ty.max_size(),
            dir: p.dir,
        })
        .collect();
    if let Some(ret) = &proc.ret {
        pending.push(Pending {
            param_index: None,
            natural: ret.max_size(),
            dir: Dir::Out,
        });
    }

    let all_fixed = proc.all_fixed_size();

    // Decide the A-stack size: explicit override, exact when fully fixed,
    // Ethernet default otherwise.
    let natural_total: usize = pending
        .iter()
        .map(|p| align_up(p.natural.unwrap_or(OOB_DESCRIPTOR_SIZE)))
        .sum();
    let astack_size = match proc.astack_size {
        Some(sz) => sz,
        None if all_fixed => natural_total.max(ALIGN),
        None => ETHERNET_PACKET_SIZE,
    };

    // Pass 2: demote slots to out-of-band until the frame fits. Complex
    // slots are always out-of-band; then the largest demotable slots go
    // first.
    let mut kinds: Vec<SlotKind> = pending
        .iter()
        .map(|p| {
            if p.natural.is_none() {
                SlotKind::OutOfBand
            } else {
                SlotKind::Inline
            }
        })
        .collect();
    let frame_of = |kinds: &[SlotKind], pending: &[Pending]| -> usize {
        kinds
            .iter()
            .zip(pending)
            .map(|(k, p)| match k {
                SlotKind::Inline => align_up(p.natural.unwrap_or(OOB_DESCRIPTOR_SIZE)),
                SlotKind::OutOfBand => OOB_DESCRIPTOR_SIZE,
            })
            .sum()
    };
    while frame_of(&kinds, &pending) > astack_size {
        // Demote the largest inline slot bigger than a descriptor.
        let victim = kinds
            .iter()
            .enumerate()
            .filter(|(i, k)| {
                **k == SlotKind::Inline && pending[*i].natural.unwrap_or(0) > OOB_DESCRIPTOR_SIZE
            })
            .max_by_key(|(i, _)| pending[*i].natural.unwrap_or(0))
            .map(|(i, _)| i);
        match victim {
            Some(i) => kinds[i] = SlotKind::OutOfBand,
            // Nothing left to demote: the frame is all small scalars and
            // descriptors; accept the overflow (an explicit undersized
            // override cannot be satisfied further).
            None => break,
        }
    }

    // Pass 3: assign offsets.
    let mut offset = 0;
    let mut params = Vec::new();
    let mut ret = None;
    let mut uses_oob = false;
    for (p, kind) in pending.iter().zip(&kinds) {
        let size = match kind {
            SlotKind::Inline => align_up(p.natural.unwrap_or(OOB_DESCRIPTOR_SIZE)),
            SlotKind::OutOfBand => {
                uses_oob = true;
                OOB_DESCRIPTOR_SIZE
            }
        };
        let slot = Slot {
            param_index: p.param_index,
            offset,
            size,
            dir: p.dir,
            kind: *kind,
        };
        offset += size;
        match p.param_index {
            Some(_) => params.push(slot),
            None => ret = Some(slot),
        }
    }

    FrameLayout {
        params,
        ret,
        frame_size: offset,
        astack_size: astack_size.max(offset).max(ALIGN),
        fixed: all_fixed,
        uses_out_of_band: uses_oob,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Param, ProcDef};
    use crate::types::{ComplexKind, Ty};

    fn add_proc() -> ProcDef {
        ProcDef::new(
            "Add",
            vec![Param::value("a", Ty::Int32), Param::value("b", Ty::Int32)],
            Some(Ty::Int32),
        )
    }

    #[test]
    fn fixed_procedure_gets_exact_astack() {
        let l = layout(&add_proc());
        assert!(l.fixed);
        assert_eq!(l.frame_size, 12);
        assert_eq!(
            l.astack_size, 12,
            "fixed-size procedures size the A-stack exactly"
        );
        assert_eq!(l.params[0].offset, 0);
        assert_eq!(l.params[1].offset, 4);
        assert_eq!(l.ret.unwrap().offset, 8);
    }

    #[test]
    fn null_procedure_has_minimal_astack() {
        let l = layout(&ProcDef::new("Null", vec![], None));
        assert_eq!(l.frame_size, 0);
        assert!(l.astack_size >= 4);
        assert!(l.fixed);
    }

    #[test]
    fn variable_args_default_to_ethernet_size() {
        let p = ProcDef::new("Log", vec![Param::value("msg", Ty::VarBytes(256))], None);
        let l = layout(&p);
        assert!(!l.fixed);
        assert_eq!(l.astack_size, ETHERNET_PACKET_SIZE);
        assert_eq!(l.params[0].kind, SlotKind::Inline, "260 bytes fit inline");
    }

    #[test]
    fn explicit_astack_size_override_wins() {
        let mut p = ProcDef::new("Log", vec![Param::value("msg", Ty::VarBytes(256))], None);
        p.astack_size = Some(4096);
        assert_eq!(layout(&p).astack_size, 4096);
    }

    #[test]
    fn oversized_variable_args_go_out_of_band() {
        // A 4 KiB maximum cannot fit in the default 1500-byte A-stack.
        let p = ProcDef::new("Send", vec![Param::value("pkt", Ty::VarBytes(4096))], None);
        let l = layout(&p);
        assert_eq!(l.params[0].kind, SlotKind::OutOfBand);
        assert!(l.uses_out_of_band);
        assert_eq!(l.params[0].size, OOB_DESCRIPTOR_SIZE);
        assert!(l.frame_size <= l.astack_size);
    }

    #[test]
    fn complex_types_are_always_out_of_band() {
        let p = ProcDef::new(
            "Walk",
            vec![Param::value("t", Ty::Complex(ComplexKind::Tree))],
            None,
        );
        let l = layout(&p);
        assert_eq!(l.params[0].kind, SlotKind::OutOfBand);
        assert!(l.uses_out_of_band);
    }

    #[test]
    fn mixed_frame_keeps_small_args_inline() {
        let p = ProcDef::new(
            "Write",
            vec![
                Param::value("handle", Ty::Int32),
                Param::value("data", Ty::VarBytes(4096)),
            ],
            Some(Ty::Int32),
        );
        let l = layout(&p);
        assert_eq!(l.params[0].kind, SlotKind::Inline);
        assert_eq!(l.params[1].kind, SlotKind::OutOfBand);
        assert_eq!(l.ret.unwrap().kind, SlotKind::Inline);
    }

    #[test]
    fn slots_never_overlap_and_stay_in_frame() {
        let p = ProcDef::new(
            "Multi",
            vec![
                Param::value("a", Ty::Byte),
                Param::value("b", Ty::Int16),
                Param::value("c", Ty::ByteArray(10)),
                Param::value("d", Ty::VarBytes(100)),
            ],
            Some(Ty::Record(vec![
                ("x".into(), Ty::Int32),
                ("y".into(), Ty::Bool),
            ])),
        );
        let l = layout(&p);
        let mut slots: Vec<&Slot> = l.params.iter().collect();
        if let Some(r) = &l.ret {
            slots.push(r);
        }
        slots.sort_by_key(|s| s.offset);
        for w in slots.windows(2) {
            assert!(
                w[0].offset + w[0].size <= w[1].offset,
                "slots must not overlap"
            );
        }
        let last = slots.last().unwrap();
        assert!(last.offset + last.size <= l.frame_size);
    }
}
