//! The LRPC stub generator, as a command-line tool.
//!
//! "The LRPC stub generator produces run-time stubs in assembly language
//! directly from Modula2+ definition files" (Section 3.3). This tool reads
//! an interface definition (from a file argument or stdin) and prints what
//! the generator produced: the A-stack layouts, the Procedure Descriptor
//! List the clerk will hand the kernel at bind time, and the disassembled
//! stub programs.
//!
//! ```text
//! cargo run -p idl --bin stubgen -- interface.idl
//! echo 'interface M { procedure Add(a: int32, b: int32) -> int32; }' \
//!     | cargo run -p idl --bin stubgen
//! ```

use std::io::Read;

use idl::layout::SlotKind;
use idl::stubgen::{compile, CompiledProc, StubLang};

fn print_proc(p: &CompiledProc) {
    println!("procedure {} (identifier {})", p.name, p.index);
    println!(
        "  language: {}",
        match p.lang {
            StubLang::Assembly => "assembly (fast path)",
            StubLang::Modula2Plus => "Modula2+ (marshaling path)",
        }
    );
    println!(
        "  A-stacks: {} x {} bytes{}",
        p.pd.simultaneous_calls,
        p.pd.astack_size,
        if p.layout.fixed {
            " (exact, all parameters fixed-size)"
        } else {
            ""
        }
    );
    if p.layout.uses_out_of_band {
        println!("  note: some values travel in out-of-band segments");
    }
    println!("  frame layout ({} bytes used):", p.layout.frame_size);
    for (slot, param) in p.layout.params.iter().zip(&p.def.params) {
        println!(
            "    +{:<4} {:<5} {:<24} {:?} {}",
            slot.offset,
            format!("[{}]", slot.size),
            format!("{}: {}", param.name, param.ty),
            param.dir,
            match slot.kind {
                SlotKind::Inline => "",
                SlotKind::OutOfBand => "(out-of-band descriptor)",
            }
        );
    }
    if let (Some(slot), Some(ret)) = (&p.layout.ret, &p.def.ret) {
        println!(
            "    +{:<4} {:<5} {:<24} ret",
            slot.offset,
            format!("[{}]", slot.size),
            ret
        );
    }
    println!("  client call stub:");
    for line in p.client_call.disassemble().lines().skip(1) {
        println!("  {line}");
    }
    println!("  server entry stub:");
    for line in p.server_entry.disassemble().lines().skip(1) {
        println!("  {line}");
    }
    println!("  server return stub:");
    for line in p.server_return.disassemble().lines().skip(1) {
        println!("  {line}");
    }
    println!("  client return stub:");
    for line in p.client_return.disassemble().lines().skip(1) {
        println!("  {line}");
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let src = match args.first().map(String::as_str) {
        Some("--help" | "-h") => {
            eprintln!("usage: stubgen [interface.idl]   (reads stdin if no file given)");
            return;
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("stubgen: cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("stubgen: cannot read stdin: {e}");
                std::process::exit(1);
            }
            buf
        }
    };

    let def = match idl::parse(&src) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("stubgen: parse error at {e}");
            std::process::exit(1);
        }
    };
    let compiled = compile(&def);

    println!(
        "interface {} — {} procedure(s)",
        compiled.name,
        compiled.procs.len()
    );
    let total_astack_bytes: usize = compiled
        .pdl()
        .iter()
        .map(|pd| pd.astack_size * pd.simultaneous_calls as usize)
        .sum();
    println!("pairwise A-stack allocation at bind time: {total_astack_bytes} bytes\n");
    for p in &compiled.procs {
        print_proc(p);
    }
}
