//! Interface definition language and stub generation for LRPC.
//!
//! This crate is the reproduction's stand-in for the Modula2+ definition
//! files and the LRPC stub generator of Section 3.3:
//!
//! * [`parse()`](parse::parse) — a small IDL whose annotations carry exactly the
//!   distinctions the paper's optimizations rely on (`in`/`out`/`inout`,
//!   `ref`, `noninterpreted`, `[astacks = N]`, `[astack_size = N]`);
//! * [`types`] / [`ast`] — the type model separating fixed-size, variable,
//!   and complex (marshal-by-library) types;
//! * [`layout`] — A-stack frame layout and the Section 5.2 sizing rules
//!   (exact for fixed procedures, Ethernet-packet default for variable,
//!   out-of-band segments for oversized or complex values);
//! * [`stubgen`] — compiles interfaces to stub programs, choosing at
//!   compile time between assembly fast-path stubs and Modula2+ marshaling
//!   stubs, and emits Procedure Descriptor Lists;
//! * [`stubvm`] — interprets stub data operations against a frame,
//!   charging calibrated costs (the marshaling path is 4× slower);
//! * [`plan`] — the bind-time specializer: lowers stub programs into
//!   fused, zero-allocation copy plans that charge identical virtual
//!   costs, with interpreter fallback for complex/out-of-band paths;
//! * [`wire`] — byte encodings with receiver-side conformance checks
//!   folded into the copy (Section 3.5).

pub mod ast;
pub mod copyops;
pub mod layout;
pub mod parse;
pub mod plan;
pub mod print;
pub mod stubgen;
pub mod stubvm;
pub mod types;
pub mod wire;

pub use ast::{Dir, InterfaceDef, Param, ProcDef};
pub use copyops::{CopyLog, CopyOp};
pub use layout::{FrameLayout, Slot, SlotKind, ETHERNET_PACKET_SIZE};
pub use parse::{parse, ParseError};
pub use plan::{ArgVec, InterfacePlans, ProcPlan, ARGVEC_INLINE, SCRATCH_BYTES};
pub use print::print_interface;
pub use stubgen::{
    compile, CompiledInterface, CompiledProc, ProcedureDescriptor, StubLang, StubOp, StubProgram,
    DEFAULT_ASTACK_COUNT,
};
pub use stubvm::{
    needs_server_copy, Frame, LocalFrame, OobStore, StubError, StubVm, MODULA2_SLOWDOWN,
};
pub use types::{ComplexKind, Ty};
pub use wire::{decode, decode_checked, encode, encode_vec, TreeVal, Value, WireError};
