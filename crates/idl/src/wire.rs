//! Values and their byte encodings.
//!
//! LRPC transfers arguments by byte copy whenever possible ("simple byte
//! copying is usually sufficient for transferring data across system
//! interfaces", Section 2.2). [`Value`] is the runtime representation of a
//! parameter; [`encode`]/[`decode`] are the flat byte encodings used for
//! A-stack slots and message buffers. Complex values (lists, trees,
//! garbage-collected data) get recursive, library-style marshaling —
//! exactly the class the paper leaves to "system library procedures".
//!
//! Conformance checking follows Section 3.5: a client may *send* a
//! non-conforming CARDINAL (that is the attack), and the receiving side
//! rejects it during the copy via [`decode_checked`] — "Folding this check
//! into the copy operation can result in less work than if the value is
//! first copied by the message system and then later checked by the
//! stubs."

use core::fmt;

use crate::types::{ComplexKind, Ty};

/// A binary tree value (the recursive marshaling demonstration).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TreeVal {
    /// Empty subtree.
    Leaf,
    /// Interior node with a payload.
    Node(Box<TreeVal>, i32, Box<TreeVal>),
}

impl TreeVal {
    /// Number of interior nodes.
    pub fn node_count(&self) -> usize {
        match self {
            TreeVal::Leaf => 0,
            TreeVal::Node(l, _, r) => 1 + l.node_count() + r.node_count(),
        }
    }
}

/// A runtime parameter or result value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// One byte.
    Byte(u8),
    /// 16-bit integer.
    Int16(i16),
    /// 32-bit integer.
    Int32(i32),
    /// CARDINAL carried as `i64` so that a client can hold (and send) a
    /// non-conforming negative value; the receiving stub's checked copy
    /// rejects it.
    Cardinal(i64),
    /// Fixed-size byte array.
    Bytes(Vec<u8>),
    /// Variable-size byte array.
    Var(Vec<u8>),
    /// Record of field values.
    Record(Vec<Value>),
    /// Linked list of integers (complex).
    List(Vec<i32>),
    /// Binary tree (complex).
    Tree(TreeVal),
    /// Garbage-collected blob (complex).
    Gc(Vec<u8>),
}

impl Value {
    /// A zero/default value of the given type (used to prime result slots).
    pub fn zero_of(ty: &Ty) -> Value {
        match ty {
            Ty::Bool => Value::Bool(false),
            Ty::Byte => Value::Byte(0),
            Ty::Int16 => Value::Int16(0),
            Ty::Int32 => Value::Int32(0),
            Ty::Cardinal => Value::Cardinal(0),
            Ty::ByteArray(n) => Value::Bytes(vec![0; *n]),
            Ty::VarBytes(_) => Value::Var(Vec::new()),
            Ty::Record(fields) => {
                Value::Record(fields.iter().map(|(_, t)| Value::zero_of(t)).collect())
            }
            Ty::Complex(ComplexKind::LinkedList) => Value::List(Vec::new()),
            Ty::Complex(ComplexKind::Tree) => Value::Tree(TreeVal::Leaf),
            Ty::Complex(ComplexKind::GarbageCollected) => Value::Gc(Vec::new()),
        }
    }
}

/// An encoding or conformance error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The value does not match the declared type.
    TypeMismatch {
        /// The declared type.
        expected: String,
    },
    /// A CARDINAL was outside `0..=u32::MAX` (Section 3.5's crash-the-
    /// server example).
    Conformance {
        /// The offending value.
        found: i64,
    },
    /// A variable value exceeded its declared maximum.
    TooLong {
        /// Actual length.
        len: usize,
        /// Declared maximum.
        max: usize,
    },
    /// The byte buffer ended early.
    Truncated,
    /// A marshaled tag byte was invalid.
    BadTag(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TypeMismatch { expected } => {
                write!(f, "value does not conform to declared type {expected}")
            }
            WireError::Conformance { found } => {
                write!(f, "CARDINAL conformance failure: {found}")
            }
            WireError::TooLong { len, max } => {
                write!(
                    f,
                    "variable value of {len} bytes exceeds declared maximum {max}"
                )
            }
            WireError::Truncated => write!(f, "encoded value is truncated"),
            WireError::BadTag(t) => write!(f, "invalid marshaling tag {t}"),
        }
    }
}

impl std::error::Error for WireError {}

fn mismatch(ty: &Ty) -> WireError {
    WireError::TypeMismatch {
        expected: ty.to_string(),
    }
}

/// Encodes `value` as `ty` into `out`.
///
/// Note that a non-conforming CARDINAL encodes successfully (truncated to
/// its low 32 bits, as a buggy or malicious client stub would); it is the
/// *receiver's* checked decode that rejects it.
pub fn encode(value: &Value, ty: &Ty, out: &mut Vec<u8>) -> Result<(), WireError> {
    match (value, ty) {
        (Value::Bool(b), Ty::Bool) => out.push(u8::from(*b)),
        (Value::Byte(b), Ty::Byte) => out.push(*b),
        (Value::Int16(v), Ty::Int16) => out.extend_from_slice(&v.to_le_bytes()),
        (Value::Int32(v), Ty::Int32) => out.extend_from_slice(&v.to_le_bytes()),
        (Value::Cardinal(v), Ty::Cardinal) => {
            out.extend_from_slice(&(*v as u32).to_le_bytes());
        }
        (Value::Bytes(b), Ty::ByteArray(n)) => {
            if b.len() != *n {
                return Err(mismatch(ty));
            }
            out.extend_from_slice(b);
        }
        (Value::Var(b), Ty::VarBytes(max)) => {
            if b.len() > *max {
                return Err(WireError::TooLong {
                    len: b.len(),
                    max: *max,
                });
            }
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        (Value::Record(vals), Ty::Record(fields)) => {
            if vals.len() != fields.len() {
                return Err(mismatch(ty));
            }
            for (v, (_, t)) in vals.iter().zip(fields) {
                encode(v, t, out)?;
            }
        }
        (Value::List(items), Ty::Complex(ComplexKind::LinkedList)) => {
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for i in items {
                out.extend_from_slice(&i.to_le_bytes());
            }
        }
        (Value::Tree(t), Ty::Complex(ComplexKind::Tree)) => encode_tree(t, out),
        (Value::Gc(b), Ty::Complex(ComplexKind::GarbageCollected)) => {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        _ => return Err(mismatch(ty)),
    }
    Ok(())
}

fn encode_tree(t: &TreeVal, out: &mut Vec<u8>) {
    match t {
        TreeVal::Leaf => out.push(0),
        TreeVal::Node(l, v, r) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
            encode_tree(l, out);
            encode_tree(r, out);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i32(&mut self) -> Result<i32, WireError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Decodes a value of type `ty` from the front of `buf`, returning the
/// value and the number of bytes consumed. No conformance checking — see
/// [`decode_checked`].
pub fn decode(buf: &[u8], ty: &Ty) -> Result<(Value, usize), WireError> {
    let mut r = Reader { buf, pos: 0 };
    let v = decode_inner(&mut r, ty, false)?;
    Ok((v, r.pos))
}

/// Decodes with receiver-side conformance checks folded into the copy: a
/// CARDINAL slot holding a value that a negative 32-bit integer would
/// produce is rejected.
pub fn decode_checked(buf: &[u8], ty: &Ty) -> Result<(Value, usize), WireError> {
    let mut r = Reader { buf, pos: 0 };
    let v = decode_inner(&mut r, ty, true)?;
    Ok((v, r.pos))
}

fn decode_inner(r: &mut Reader<'_>, ty: &Ty, check: bool) -> Result<Value, WireError> {
    Ok(match ty {
        Ty::Bool => Value::Bool(r.take(1)?[0] != 0),
        Ty::Byte => Value::Byte(r.take(1)?[0]),
        Ty::Int16 => {
            let b = r.take(2)?;
            Value::Int16(i16::from_le_bytes([b[0], b[1]]))
        }
        Ty::Int32 => Value::Int32(r.i32()?),
        Ty::Cardinal => {
            let raw = r.u32()?;
            // A Modula2+ CARDINAL occupies the full 32-bit unsigned range;
            // a negative INTEGER reinterpreted as CARDINAL shows up as a
            // value with the sign bit set, which is exactly what a
            // conforming *small* cardinal never is in these interfaces.
            if check && raw > i32::MAX as u32 {
                return Err(WireError::Conformance {
                    found: i64::from(raw as i32),
                });
            }
            Value::Cardinal(i64::from(raw))
        }
        Ty::ByteArray(n) => Value::Bytes(r.take(*n)?.to_vec()),
        Ty::VarBytes(max) => {
            let len = r.u32()? as usize;
            if len > *max {
                return Err(WireError::TooLong { len, max: *max });
            }
            Value::Var(r.take(len)?.to_vec())
        }
        Ty::Record(fields) => {
            let mut vals = Vec::with_capacity(fields.len());
            for (_, t) in fields {
                vals.push(decode_inner(r, t, check)?);
            }
            Value::Record(vals)
        }
        Ty::Complex(ComplexKind::LinkedList) => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(r.i32()?);
            }
            Value::List(items)
        }
        Ty::Complex(ComplexKind::Tree) => Value::Tree(decode_tree(r, 0)?),
        Ty::Complex(ComplexKind::GarbageCollected) => {
            let n = r.u32()? as usize;
            Value::Gc(r.take(n)?.to_vec())
        }
    })
}

fn decode_tree(r: &mut Reader<'_>, depth: usize) -> Result<TreeVal, WireError> {
    // Bound recursion so a malicious encoding cannot blow the host stack.
    if depth > 64 {
        return Err(WireError::BadTag(1));
    }
    match r.take(1)?[0] {
        0 => Ok(TreeVal::Leaf),
        1 => {
            let v = r.i32()?;
            let l = decode_tree(r, depth + 1)?;
            let right = decode_tree(r, depth + 1)?;
            Ok(TreeVal::Node(Box::new(l), v, Box::new(right)))
        }
        t => Err(WireError::BadTag(t)),
    }
}

/// Encodes a value to a fresh vector.
pub fn encode_vec(value: &Value, ty: &Ty) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    encode(value, ty, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value, ty: Ty) {
        let bytes = encode_vec(&v, &ty).unwrap();
        let (back, used) = decode(&bytes, &ty).unwrap();
        assert_eq!(back, v, "roundtrip of {ty}");
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(Value::Bool(true), Ty::Bool);
        roundtrip(Value::Byte(0xAB), Ty::Byte);
        roundtrip(Value::Int16(-12345), Ty::Int16);
        roundtrip(Value::Int32(i32::MIN), Ty::Int32);
        roundtrip(Value::Cardinal(77), Ty::Cardinal);
    }

    #[test]
    fn arrays_and_records_roundtrip() {
        roundtrip(Value::Bytes(vec![9; 200]), Ty::ByteArray(200));
        roundtrip(Value::Var(b"hello".to_vec()), Ty::VarBytes(16));
        roundtrip(
            Value::Record(vec![Value::Int32(4096), Value::Bool(false)]),
            Ty::Record(vec![("size".into(), Ty::Int32), ("dirty".into(), Ty::Bool)]),
        );
    }

    #[test]
    fn complex_values_roundtrip() {
        roundtrip(
            Value::List(vec![1, -2, 3]),
            Ty::Complex(ComplexKind::LinkedList),
        );
        let tree = TreeVal::Node(
            Box::new(TreeVal::Node(
                Box::new(TreeVal::Leaf),
                1,
                Box::new(TreeVal::Leaf),
            )),
            2,
            Box::new(TreeVal::Leaf),
        );
        assert_eq!(tree.node_count(), 2);
        roundtrip(Value::Tree(tree), Ty::Complex(ComplexKind::Tree));
        roundtrip(
            Value::Gc(vec![1, 2, 3]),
            Ty::Complex(ComplexKind::GarbageCollected),
        );
    }

    #[test]
    fn nonconforming_cardinal_encodes_but_checked_decode_rejects() {
        // The client "passes an unwanted negative value" (Section 3.5).
        let bytes = encode_vec(&Value::Cardinal(-1), &Ty::Cardinal).unwrap();
        assert!(
            decode(&bytes, &Ty::Cardinal).is_ok(),
            "unchecked copy lets it through"
        );
        let err = decode_checked(&bytes, &Ty::Cardinal).unwrap_err();
        assert_eq!(err, WireError::Conformance { found: -1 });
    }

    #[test]
    fn oversized_var_bytes_rejected_on_both_sides() {
        let v = Value::Var(vec![0; 20]);
        assert!(matches!(
            encode_vec(&v, &Ty::VarBytes(16)),
            Err(WireError::TooLong { len: 20, max: 16 })
        ));
        // A forged length prefix is caught on decode.
        let mut bytes = (20u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 20]);
        assert!(matches!(
            decode(&bytes, &Ty::VarBytes(16)),
            Err(WireError::TooLong { .. })
        ));
    }

    #[test]
    fn wrong_sized_fixed_array_is_a_type_mismatch() {
        let v = Value::Bytes(vec![0; 4]);
        assert!(matches!(
            encode_vec(&v, &Ty::ByteArray(8)),
            Err(WireError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn truncated_buffers_error() {
        assert!(matches!(
            decode(&[1, 2], &Ty::Int32),
            Err(WireError::Truncated)
        ));
        assert!(matches!(
            decode(&[5, 0, 0, 0, 1], &Ty::VarBytes(16)),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn bad_tree_tag_and_runaway_depth_are_rejected() {
        assert!(matches!(
            decode(&[7], &Ty::Complex(ComplexKind::Tree)),
            Err(WireError::BadTag(7))
        ));
        // A long chain of `Node` tags with no leaves exhausts the depth
        // bound rather than the host stack.
        let mut evil = Vec::new();
        for _ in 0..100 {
            evil.push(1);
            evil.extend_from_slice(&0i32.to_le_bytes());
        }
        assert!(decode(&evil, &Ty::Complex(ComplexKind::Tree)).is_err());
    }

    #[test]
    fn zero_of_conforms_to_type() {
        for ty in [
            Ty::Bool,
            Ty::Int32,
            Ty::Cardinal,
            Ty::ByteArray(8),
            Ty::VarBytes(8),
            Ty::Record(vec![("a".into(), Ty::Int16)]),
            Ty::Complex(ComplexKind::Tree),
        ] {
            let v = Value::zero_of(&ty);
            assert!(encode_vec(&v, &ty).is_ok(), "zero of {ty} must encode");
        }
    }
}
