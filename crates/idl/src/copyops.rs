//! Copy-operation taxonomy (the paper's Table 3).
//!
//! Table 3 compares, letter by letter, the copy operations performed by
//! LRPC and by message-based RPC for calls with mutable and immutable
//! parameters. Both transports in this workspace record each byte-moving
//! step as a [`CopyOp`], so the table can be regenerated from observed
//! behaviour rather than asserted.

use core::fmt;

/// One class of copy operation, named as in Table 3.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CopyOp {
    /// Copy from client stack to message (or A-stack).
    A,
    /// Copy from sender domain to kernel domain.
    B,
    /// Copy from kernel domain to receiver domain.
    C,
    /// Copy from sender/kernel space directly to receiver/kernel domain
    /// (the restricted message path's pre-mapped buffer copy).
    D,
    /// Copy from message (or A-stack) into server stack.
    E,
    /// Copy from message (or A-stack) into the client's results.
    F,
}

impl CopyOp {
    /// The Table 3 description of this operation.
    pub fn description(self) -> &'static str {
        match self {
            CopyOp::A => "copy from client stack to message (or A-stack)",
            CopyOp::B => "copy from sender domain to kernel domain",
            CopyOp::C => "copy from kernel domain to receiver domain",
            CopyOp::D => "copy from sender/kernel space to receiver/kernel domain",
            CopyOp::E => "copy from message (or A-stack) into server stack",
            CopyOp::F => "copy from message (or A-stack) into client's results",
        }
    }
}

impl fmt::Display for CopyOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// An append-only record of the copy operations one call performed.
#[derive(Clone, Debug, Default)]
pub struct CopyLog {
    ops: Vec<(CopyOp, usize)>,
}

impl CopyLog {
    /// An empty log.
    pub fn new() -> CopyLog {
        CopyLog::default()
    }

    /// Records one copy of `bytes` bytes.
    pub fn record(&mut self, op: CopyOp, bytes: usize) {
        self.ops.push((op, bytes));
    }

    /// All recorded operations in order.
    pub fn ops(&self) -> &[(CopyOp, usize)] {
        &self.ops
    }

    /// The distinct operation letters performed, in Table 3 order.
    pub fn letters(&self) -> Vec<CopyOp> {
        let mut ls: Vec<CopyOp> = self.ops.iter().map(|(op, _)| *op).collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    }

    /// Letters formatted as the paper prints them (e.g. `"ABCE"`).
    pub fn letters_string(&self) -> String {
        self.letters().iter().map(|o| format!("{o}")).collect()
    }

    /// Total copies performed (each letter occurrence counts once per
    /// parameter transfer, as the paper counts them).
    pub fn count(&self) -> usize {
        self.ops.len()
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> usize {
        self.ops.iter().map(|(_, b)| b).sum()
    }

    /// Merges another log into this one.
    pub fn absorb(&mut self, other: &CopyLog) {
        self.ops.extend_from_slice(&other.ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_are_deduped_and_sorted() {
        let mut log = CopyLog::new();
        log.record(CopyOp::E, 10);
        log.record(CopyOp::A, 10);
        log.record(CopyOp::A, 4);
        assert_eq!(log.letters(), vec![CopyOp::A, CopyOp::E]);
        assert_eq!(log.letters_string(), "AE");
        assert_eq!(log.count(), 3);
        assert_eq!(log.bytes(), 24);
    }

    #[test]
    fn absorb_merges_in_order() {
        let mut a = CopyLog::new();
        a.record(CopyOp::A, 1);
        let mut b = CopyLog::new();
        b.record(CopyOp::F, 2);
        a.absorb(&b);
        assert_eq!(a.ops().len(), 2);
        assert_eq!(a.letters_string(), "AF");
    }

    #[test]
    fn descriptions_match_table_3() {
        assert!(CopyOp::D.description().contains("sender/kernel"));
        assert!(CopyOp::F.description().contains("client's results"));
    }
}
