//! Bind-time stub specialization: compiled copy plans.
//!
//! Section 3.3: the LRPC stub generator wins its 4× over Modula2+ stubs by
//! emitting maximally specialized code — "mainly move and trap
//! instructions" — with every run-time decision already made. The stub VM
//! in [`crate::stubvm`] reproduces the *cost model* of those stubs but
//! still interprets each slot: per-parameter dispatch on slot kind,
//! per-parameter bounds arithmetic, and a fresh heap vector for every
//! frame read.
//!
//! This module is the missing compile step. [`InterfacePlans::compile`]
//! lowers each [`CompiledProc`]'s four stub halves into [`ProcPlan`]s whose
//! offsets, sizes, conformance-check decisions and cost totals are all
//! computed once, at binding time:
//!
//! * adjacent fixed-size scalar slots are coalesced into single bulk moves
//!   ([`PushStep::Run`]) when their encodings tile the frame gap-free;
//! * byte-array arguments move directly between the [`Value`] buffer and
//!   the frame with no intermediate copy;
//! * the per-operation/per-byte virtual-time charges are summed at compile
//!   time and issued as one fused [`StubVm::charge_bulk`], which by cost
//!   linearity equals the interpreter's charge sequence to the nanosecond
//!   (Table 5 and the §3.3 ratio are preserved bit-for-bit);
//! * anything the plan cannot specialize — out-of-band slots, complex or
//!   variable types, oversized records — leaves that half as `None` and
//!   the caller falls back to the interpreter, exactly the paper's
//!   "Modula2+ code for more complicated, but less frequently traveled
//!   execution paths".
//!
//! Plan execution reads frames through the borrowed
//! [`Frame::read_into`] accessor into fixed stack scratch, so the
//! fixed-argument fast path performs zero heap allocations; server
//! arguments land in an [`ArgVec`] with inline capacity for
//! [`ARGVEC_INLINE`] values.

use core::mem::MaybeUninit;

use crate::layout::SlotKind;
use crate::stubgen::{CompiledInterface, CompiledProc, StubLang};
use crate::stubvm::{needs_server_copy, FetchedResults, Frame, StubError, StubVm};
use crate::types::Ty;
use crate::wire::{decode, decode_checked, Value, WireError};

/// Stack scratch size for scalar encodes/decodes. Fixed values larger than
/// this (big records) are left to the interpreter.
pub const SCRATCH_BYTES: usize = 64;

/// Inline capacity of [`ArgVec`]: server argument vectors up to this many
/// values live entirely on the stack.
pub const ARGVEC_INLINE: usize = 8;

fn mismatch(ty: &Ty) -> WireError {
    WireError::TypeMismatch {
        expected: ty.to_string(),
    }
}

/// How a value moves between a [`Value`] and a frame slot.
enum Class {
    /// Scalar (or small record): encoded length `len`, staged through
    /// stack scratch.
    Scalar(usize),
    /// `bytes[n]`: moved directly between the value's buffer and the
    /// frame, no staging copy.
    Bytes(usize),
    /// `var bytes[max]` in an inline slot: a 4-byte length prefix plus the
    /// payload, moved directly with the bounds check hoisted to the plan
    /// (the only run-time decision left is the payload length itself).
    Var(usize),
}

/// Classifies a type for plan compilation; `None` means this half must
/// fall back to the interpreter.
fn classify(ty: &Ty) -> Option<Class> {
    match ty {
        Ty::ByteArray(n) => Some(Class::Bytes(*n)),
        Ty::VarBytes(max) => Some(Class::Var(*max)),
        _ => match ty.fixed_size() {
            Some(len) if len <= SCRATCH_BYTES => Some(Class::Scalar(len)),
            _ => None,
        },
    }
}

/// Encodes a fixed-size value into the front of `out`, returning the
/// encoded length. Mirrors [`crate::wire::encode`] exactly (including its
/// error cases) for the fixed subset of types.
fn encode_fixed(value: &Value, ty: &Ty, out: &mut [u8]) -> Result<usize, WireError> {
    match (value, ty) {
        (Value::Bool(b), Ty::Bool) => {
            out[0] = u8::from(*b);
            Ok(1)
        }
        (Value::Byte(b), Ty::Byte) => {
            out[0] = *b;
            Ok(1)
        }
        (Value::Int16(v), Ty::Int16) => {
            out[..2].copy_from_slice(&v.to_le_bytes());
            Ok(2)
        }
        (Value::Int32(v), Ty::Int32) => {
            out[..4].copy_from_slice(&v.to_le_bytes());
            Ok(4)
        }
        (Value::Cardinal(v), Ty::Cardinal) => {
            out[..4].copy_from_slice(&(*v as u32).to_le_bytes());
            Ok(4)
        }
        (Value::Bytes(b), Ty::ByteArray(n)) => {
            if b.len() != *n {
                return Err(mismatch(ty));
            }
            out[..*n].copy_from_slice(b);
            Ok(*n)
        }
        (Value::Record(vals), Ty::Record(fields)) => {
            if vals.len() != fields.len() {
                return Err(mismatch(ty));
            }
            let mut pos = 0;
            for (v, (_, t)) in vals.iter().zip(fields) {
                pos += encode_fixed(v, t, &mut out[pos..])?;
            }
            Ok(pos)
        }
        _ => Err(mismatch(ty)),
    }
}

/// Writes one fixed-size value into its frame slot: byte arrays go
/// directly from the value's buffer, everything else stages through stack
/// scratch.
fn write_fixed(
    frame: &mut dyn Frame,
    offset: usize,
    value: &Value,
    ty: &Ty,
) -> Result<(), StubError> {
    if let (Value::Bytes(b), Ty::ByteArray(n)) = (value, ty) {
        if b.len() != *n {
            return Err(StubError::Wire(mismatch(ty)));
        }
        return frame.write(offset, b);
    }
    if let Ty::VarBytes(_) = ty {
        return write_var(frame, offset, value, ty);
    }
    let mut scratch = [0u8; SCRATCH_BYTES];
    let len = encode_fixed(value, ty, &mut scratch)?;
    frame.write(offset, &scratch[..len])
}

/// Writes a `var bytes` value: 4-byte little-endian length prefix, then the
/// payload straight from the value's buffer. The two writes leave the frame
/// byte-identical to the interpreter's single contiguous `encode_vec` write
/// (the slot tail past `4 + len` is untouched in both).
fn write_var(
    frame: &mut dyn Frame,
    offset: usize,
    value: &Value,
    ty: &Ty,
) -> Result<(), StubError> {
    let (Value::Var(b), Ty::VarBytes(max)) = (value, ty) else {
        return Err(StubError::Wire(mismatch(ty)));
    };
    if b.len() > *max {
        return Err(StubError::Wire(WireError::TooLong {
            len: b.len(),
            max: *max,
        }));
    }
    frame.write(offset, &(b.len() as u32).to_le_bytes())?;
    frame.write(offset + 4, b)
}

/// Reads one fixed-size value from a frame slot. Reads the full reserved
/// `size` (so TLB page touches match the interpreter), then decodes the
/// encoded prefix.
fn read_fixed(
    frame: &dyn Frame,
    offset: usize,
    size: usize,
    ty: &Ty,
    checked: bool,
) -> Result<Value, StubError> {
    if let Ty::ByteArray(n) = ty {
        // One allocation: the value's own buffer. Oversized (aligned)
        // slots are read in full and trimmed to the array length.
        let mut buf = vec![0; size];
        frame.read_into(offset, &mut buf)?;
        buf.truncate(*n);
        return Ok(Value::Bytes(buf));
    }
    if let Ty::VarBytes(_) = ty {
        // Variable slots read the full reserved size like the interpreter
        // (TLB touches match); the decoder consumes the length-prefixed
        // payload and ignores the slot tail.
        let buf = frame.read(offset, size)?;
        let (v, _) = if checked {
            decode_checked(&buf, ty)?
        } else {
            decode(&buf, ty)?
        };
        return Ok(v);
    }
    let mut scratch = [0u8; SCRATCH_BYTES];
    frame.read_into(offset, &mut scratch[..size])?;
    let (v, _) = if checked {
        decode_checked(&scratch[..size], ty)?
    } else {
        decode(&scratch[..size], ty)?
    };
    Ok(v)
}

/// A server-argument vector with inline stack capacity.
///
/// Up to [`ARGVEC_INLINE`] values are stored in place; longer argument
/// lists (or interpreter-produced vectors adopted via [`ArgVec::from_vec`])
/// spill to the heap. The common fixed-argument procedures of the paper's
/// benchmarks (0–2 parameters) never allocate.
pub struct ArgVec {
    inline: [MaybeUninit<Value>; ARGVEC_INLINE],
    inline_len: usize,
    spill: Vec<Value>,
    spilled: bool,
}

impl ArgVec {
    /// An empty, non-allocating vector.
    pub fn new() -> ArgVec {
        ArgVec {
            inline: [const { MaybeUninit::uninit() }; ARGVEC_INLINE],
            inline_len: 0,
            spill: Vec::new(),
            spilled: false,
        }
    }

    /// Adopts an interpreter-produced vector (no copy).
    pub fn from_vec(vals: Vec<Value>) -> ArgVec {
        ArgVec {
            inline: [const { MaybeUninit::uninit() }; ARGVEC_INLINE],
            inline_len: 0,
            spill: vals,
            spilled: true,
        }
    }

    /// Appends a value, spilling to the heap past the inline capacity.
    pub fn push(&mut self, v: Value) {
        if !self.spilled {
            if self.inline_len < ARGVEC_INLINE {
                self.inline[self.inline_len].write(v);
                self.inline_len += 1;
                return;
            }
            self.spill.reserve(ARGVEC_INLINE + 1);
            for slot in &mut self.inline[..self.inline_len] {
                // SAFETY: the first `inline_len` slots are initialized;
                // each is moved out exactly once and `inline_len` is reset
                // below so neither `as_slice` nor `Drop` revisits them.
                self.spill.push(unsafe { slot.assume_init_read() });
            }
            self.inline_len = 0;
            self.spilled = true;
        }
        self.spill.push(v);
    }

    /// The values as a contiguous slice.
    pub fn as_slice(&self) -> &[Value] {
        if self.spilled {
            &self.spill
        } else {
            // SAFETY: the first `inline_len` inline slots are initialized,
            // and `MaybeUninit<Value>` has the same layout as `Value`.
            unsafe {
                core::slice::from_raw_parts(self.inline.as_ptr().cast::<Value>(), self.inline_len)
            }
        }
    }

    /// Number of values held.
    pub fn len(&self) -> usize {
        if self.spilled {
            self.spill.len()
        } else {
            self.inline_len
        }
    }

    /// True if no values are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ArgVec {
    fn default() -> ArgVec {
        ArgVec::new()
    }
}

impl Drop for ArgVec {
    fn drop(&mut self) {
        if !self.spilled {
            for slot in &mut self.inline[..self.inline_len] {
                // SAFETY: the first `inline_len` slots are initialized and
                // dropped exactly once here.
                unsafe { slot.assume_init_drop() };
            }
        }
    }
}

/// One move in a compiled client-push plan.
#[derive(Clone, Debug)]
pub enum PushStep {
    /// A coalesced run of `count` scalar parameters starting at parameter
    /// index `first`, whose encodings tile `[offset, offset + len)` with
    /// no gaps: encoded into stack scratch, written with one bulk move.
    Run {
        /// First parameter index of the run.
        first: usize,
        /// Number of consecutive parameters fused.
        count: usize,
        /// Frame offset of the run.
        offset: usize,
        /// Total encoded length of the run.
        len: usize,
    },
    /// A `bytes[len]` argument moved directly from the value's buffer.
    Bytes {
        /// Parameter index.
        param: usize,
        /// Frame offset.
        offset: usize,
        /// Array length.
        len: usize,
    },
    /// A `var bytes[max]` argument in an inline slot: length prefix plus
    /// payload moved directly from the value's buffer. Its data-op charge
    /// depends on the run-time payload length, so it is issued per step
    /// rather than folded into the plan's fused charge.
    Var {
        /// Parameter index.
        param: usize,
        /// Frame offset.
        offset: usize,
        /// Declared maximum payload length.
        max: usize,
    },
}

/// Compiled client call half: push every in-direction argument.
#[derive(Clone, Debug)]
pub struct PushPlan {
    steps: Vec<PushStep>,
    ops: u64,
    bytes: u64,
    lang: StubLang,
}

impl PushPlan {
    /// Executes the plan: one fused charge, then the coalesced moves.
    pub fn execute(
        &self,
        proc: &CompiledProc,
        args: &[Value],
        frame: &mut dyn Frame,
        vm: &mut StubVm,
    ) -> Result<(), StubError> {
        if args.len() != proc.def.params.len() {
            return Err(StubError::ArgCount {
                expected: proc.def.params.len(),
                got: args.len(),
            });
        }
        vm.charge_bulk(self.lang, self.ops, self.bytes);
        for step in &self.steps {
            match step {
                PushStep::Run {
                    first,
                    count,
                    offset,
                    len,
                } => {
                    let mut scratch = [0u8; SCRATCH_BYTES];
                    let mut pos = 0;
                    let run = args[*first..*first + *count]
                        .iter()
                        .zip(&proc.def.params[*first..*first + *count]);
                    for (arg, param) in run {
                        pos += encode_fixed(arg, &param.ty, &mut scratch[pos..])?;
                    }
                    debug_assert_eq!(pos, *len);
                    frame.write(*offset, &scratch[..*len])?;
                }
                PushStep::Bytes { param, offset, len } => match &args[*param] {
                    Value::Bytes(b) if b.len() == *len => frame.write(*offset, b)?,
                    _ => {
                        return Err(StubError::Wire(mismatch(&proc.def.params[*param].ty)));
                    }
                },
                PushStep::Var { param, offset, max } => match &args[*param] {
                    Value::Var(b) if b.len() <= *max => {
                        // Run-time-length charge: one data op over the
                        // 4-byte prefix plus the payload, exactly the
                        // interpreter's `charge_op(lang, encoded.len())`.
                        vm.charge_bulk(self.lang, 1, 4 + b.len() as u64);
                        frame.write(*offset, &(b.len() as u32).to_le_bytes())?;
                        frame.write(*offset + 4, b)?;
                    }
                    Value::Var(b) => {
                        return Err(StubError::Wire(WireError::TooLong {
                            len: b.len(),
                            max: *max,
                        }));
                    }
                    _ => {
                        return Err(StubError::Wire(mismatch(&proc.def.params[*param].ty)));
                    }
                },
            }
        }
        Ok(())
    }

    /// The compiled move steps (for disassembly/inspection).
    pub fn steps(&self) -> &[PushStep] {
        &self.steps
    }
}

/// One action in a compiled server-read plan, in parameter order.
#[derive(Clone, Debug)]
enum ReadAction {
    /// Out-only parameter: prime a zero placeholder.
    Zero(Ty),
    /// In/inout parameter: read the slot and decode (checked when the
    /// Section 3.5 rules require a server-side copy).
    Read {
        offset: usize,
        size: usize,
        ty: Ty,
        checked: bool,
    },
}

/// Compiled server entry half: read every parameter off the A-stack.
#[derive(Clone, Debug)]
pub struct ReadPlan {
    actions: Vec<ReadAction>,
    ops: u64,
    bytes: u64,
    lang: StubLang,
}

impl ReadPlan {
    /// Executes the plan into `out` (one value per parameter).
    pub fn execute(
        &self,
        frame: &dyn Frame,
        vm: &mut StubVm,
        out: &mut ArgVec,
    ) -> Result<(), StubError> {
        vm.charge_bulk(self.lang, self.ops, self.bytes);
        for action in &self.actions {
            match action {
                ReadAction::Zero(ty) => out.push(Value::zero_of(ty)),
                ReadAction::Read {
                    offset,
                    size,
                    ty,
                    checked,
                } => out.push(read_fixed(frame, *offset, *size, ty, *checked)?),
            }
        }
        Ok(())
    }
}

/// A compiled inline result slot.
#[derive(Clone, Debug)]
struct PlaceSlot {
    offset: usize,
    ty: Ty,
}

/// Compiled server return half: place the return value and out parameters.
/// Inline placement is free (the server writes results directly into the
/// A-stack/reply), so this plan only moves bytes.
#[derive(Clone, Debug)]
pub struct PlacePlan {
    ret: Option<PlaceSlot>,
    params: Vec<Option<PlaceSlot>>,
}

impl PlacePlan {
    /// Executes the plan.
    ///
    /// # Panics
    ///
    /// Panics if an `outs` entry indexes past the procedure's parameters,
    /// matching the interpreter.
    pub fn execute(
        &self,
        ret: Option<&Value>,
        outs: &[(usize, Value)],
        frame: &mut dyn Frame,
    ) -> Result<(), StubError> {
        if let Some(slot) = &self.ret {
            let v = ret.ok_or(StubError::MissingResult)?;
            write_fixed(frame, slot.offset, v, &slot.ty)?;
        }
        for (i, v) in outs {
            if let Some(slot) = &self.params[*i] {
                write_fixed(frame, slot.offset, v, &slot.ty)?;
            }
        }
        Ok(())
    }
}

/// A compiled fetch slot (`param: None` is the return value).
#[derive(Clone, Debug)]
struct FetchSlot {
    param: Option<usize>,
    offset: usize,
    size: usize,
    ty: Ty,
}

/// Compiled client return half: fetch the return value and out parameters
/// "from the A-stack into their final destination".
#[derive(Clone, Debug)]
pub struct FetchPlan {
    slots: Vec<FetchSlot>,
    ops: u64,
    bytes: u64,
    lang: StubLang,
}

impl FetchPlan {
    /// Executes the plan: one fused charge, then the reads.
    pub fn execute(&self, frame: &dyn Frame, vm: &mut StubVm) -> Result<FetchedResults, StubError> {
        vm.charge_bulk(self.lang, self.ops, self.bytes);
        let mut ret = None;
        let mut outs = Vec::new();
        for slot in &self.slots {
            let v = read_fixed(frame, slot.offset, slot.size, &slot.ty, false)?;
            match slot.param {
                None => ret = Some(v),
                Some(i) => outs.push((i, v)),
            }
        }
        Ok((ret, outs))
    }
}

/// All four compiled halves of one procedure, plus the per-call byte
/// totals the runtime needs. A `None` half falls back to the interpreter.
#[derive(Clone, Debug)]
pub struct ProcPlan {
    /// Client call half.
    pub push: Option<PushPlan>,
    /// Server entry half.
    pub read: Option<ReadPlan>,
    /// Server return half.
    pub place: Option<PlacePlan>,
    /// Client return half.
    pub fetch: Option<FetchPlan>,
    /// Total inline slot bytes travelling in (precomputed so the call path
    /// does not re-derive it per call).
    pub in_bytes: usize,
    /// Total inline slot bytes travelling out (including the return slot).
    pub out_bytes: usize,
}

impl ProcPlan {
    /// Compiles one procedure's stub halves.
    pub fn compile(proc: &CompiledProc) -> ProcPlan {
        let in_bytes = proc
            .layout
            .params
            .iter()
            .zip(&proc.def.params)
            .filter(|(_, p)| p.dir.is_in())
            .map(|(s, _)| s.size)
            .sum();
        let out_bytes = proc
            .layout
            .params
            .iter()
            .zip(&proc.def.params)
            .filter(|(_, p)| p.dir.is_out())
            .map(|(s, _)| s.size)
            .sum::<usize>()
            + proc.layout.ret.as_ref().map_or(0, |s| s.size);
        ProcPlan {
            push: compile_push(proc),
            read: compile_read(proc),
            place: compile_place(proc),
            fetch: compile_fetch(proc),
            in_bytes,
            out_bytes,
        }
    }

    /// True when every half compiled (no interpreter fallback).
    pub fn fully_compiled(&self) -> bool {
        self.push.is_some() && self.read.is_some() && self.place.is_some() && self.fetch.is_some()
    }

    /// A one-line summary of what compiled, for disassembly listings.
    pub fn describe(&self) -> String {
        let half = |b: bool| if b { "plan" } else { "interp" };
        let moves = self.push.as_ref().map_or(0, |p| p.steps.len());
        format!(
            "push={} ({moves} moves), read={}, place={}, fetch={}, in={}B, out={}B",
            half(self.push.is_some()),
            half(self.read.is_some()),
            half(self.place.is_some()),
            half(self.fetch.is_some()),
            self.in_bytes,
            self.out_bytes,
        )
    }
}

fn compile_push(proc: &CompiledProc) -> Option<PushPlan> {
    struct Run {
        first: usize,
        count: usize,
        offset: usize,
        len: usize,
    }
    let mut steps = Vec::new();
    let mut run: Option<Run> = None;
    let mut ops = 0u64;
    let mut bytes = 0u64;
    let flush = |run: &mut Option<Run>, steps: &mut Vec<PushStep>| {
        if let Some(r) = run.take() {
            steps.push(PushStep::Run {
                first: r.first,
                count: r.count,
                offset: r.offset,
                len: r.len,
            });
        }
    };
    for (i, param) in proc.def.params.iter().enumerate() {
        if !param.dir.is_in() {
            continue;
        }
        let slot = &proc.layout.params[i];
        if slot.kind != SlotKind::Inline {
            return None;
        }
        match classify(&param.ty)? {
            Class::Bytes(len) => {
                flush(&mut run, &mut steps);
                steps.push(PushStep::Bytes {
                    param: i,
                    offset: slot.offset,
                    len,
                });
                ops += 1;
                bytes += len as u64;
            }
            Class::Var(max) => {
                // Charged at run time (payload length varies per call), so
                // nothing is folded into the plan's fused charge.
                flush(&mut run, &mut steps);
                steps.push(PushStep::Var {
                    param: i,
                    offset: slot.offset,
                    max,
                });
            }
            Class::Scalar(len) => {
                ops += 1;
                bytes += len as u64;
                match &mut run {
                    // Fuse only consecutive parameters whose encodings tile
                    // the frame with no padding gap — the bulk write is
                    // then byte-identical to the per-slot writes.
                    Some(r)
                        if r.first + r.count == i
                            && r.offset + r.len == slot.offset
                            && r.len + len <= SCRATCH_BYTES =>
                    {
                        r.count += 1;
                        r.len += len;
                    }
                    _ => {
                        flush(&mut run, &mut steps);
                        run = Some(Run {
                            first: i,
                            count: 1,
                            offset: slot.offset,
                            len,
                        });
                    }
                }
            }
        }
    }
    flush(&mut run, &mut steps);
    Some(PushPlan {
        steps,
        ops,
        bytes,
        lang: proc.lang,
    })
}

fn compile_read(proc: &CompiledProc) -> Option<ReadPlan> {
    let mut actions = Vec::new();
    let mut ops = 0u64;
    let mut bytes = 0u64;
    for (i, param) in proc.def.params.iter().enumerate() {
        if !param.dir.is_in() {
            actions.push(ReadAction::Zero(param.ty.clone()));
            continue;
        }
        let slot = &proc.layout.params[i];
        if slot.kind != SlotKind::Inline {
            return None;
        }
        classify(&param.ty)?;
        let checked = needs_server_copy(param, proc.def.inplace);
        if checked {
            // Only the Section 3.5 server-side copies are charged; plain
            // reads use the value directly off the shared A-stack.
            ops += 1;
            bytes += slot.size as u64;
        }
        actions.push(ReadAction::Read {
            offset: slot.offset,
            size: slot.size,
            ty: param.ty.clone(),
            checked,
        });
    }
    Some(ReadPlan {
        actions,
        ops,
        bytes,
        lang: proc.lang,
    })
}

fn compile_place(proc: &CompiledProc) -> Option<PlacePlan> {
    let ret = match (&proc.def.ret, &proc.layout.ret) {
        (Some(ret_ty), Some(slot)) => {
            if slot.kind != SlotKind::Inline {
                return None;
            }
            classify(ret_ty)?;
            Some(PlaceSlot {
                offset: slot.offset,
                ty: ret_ty.clone(),
            })
        }
        _ => None,
    };
    let mut params = Vec::with_capacity(proc.def.params.len());
    for (i, param) in proc.def.params.iter().enumerate() {
        if param.dir.is_out() {
            let slot = &proc.layout.params[i];
            if slot.kind != SlotKind::Inline {
                return None;
            }
            classify(&param.ty)?;
            params.push(Some(PlaceSlot {
                offset: slot.offset,
                ty: param.ty.clone(),
            }));
        } else {
            params.push(None);
        }
    }
    Some(PlacePlan { ret, params })
}

fn compile_fetch(proc: &CompiledProc) -> Option<FetchPlan> {
    let mut slots = Vec::new();
    let mut ops = 0u64;
    let mut bytes = 0u64;
    if let (Some(ret_ty), Some(slot)) = (&proc.def.ret, &proc.layout.ret) {
        if slot.kind != SlotKind::Inline {
            return None;
        }
        classify(ret_ty)?;
        slots.push(FetchSlot {
            param: None,
            offset: slot.offset,
            size: slot.size,
            ty: ret_ty.clone(),
        });
        ops += 1;
        bytes += slot.size as u64;
    }
    for (i, param) in proc.def.params.iter().enumerate() {
        if !param.dir.is_out() {
            continue;
        }
        let slot = &proc.layout.params[i];
        if slot.kind != SlotKind::Inline {
            return None;
        }
        classify(&param.ty)?;
        slots.push(FetchSlot {
            param: Some(i),
            offset: slot.offset,
            size: slot.size,
            ty: param.ty.clone(),
        });
        ops += 1;
        bytes += slot.size as u64;
    }
    Some(FetchPlan {
        slots,
        ops,
        bytes,
        lang: proc.lang,
    })
}

/// Every procedure's compiled plan for one interface, index-aligned with
/// [`CompiledInterface::procs`]. Compiled once at import and cached on the
/// binding.
#[derive(Clone, Debug)]
pub struct InterfacePlans {
    /// One plan per procedure.
    pub procs: Vec<ProcPlan>,
}

impl InterfacePlans {
    /// Compiles plans for every procedure of `iface`.
    pub fn compile(iface: &CompiledInterface) -> InterfacePlans {
        InterfacePlans {
            procs: iface.procs.iter().map(ProcPlan::compile).collect(),
        }
    }

    /// Number of procedures whose four halves all compiled.
    pub fn fully_compiled_count(&self) -> usize {
        self.procs.iter().filter(|p| p.fully_compiled()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::stubgen::compile;
    use crate::stubvm::{LocalFrame, OobStore};
    use firefly::cpu::Machine;
    use firefly::meter::Meter;

    fn compiled(src: &str) -> CompiledInterface {
        compile(&parse(src).unwrap())
    }

    #[test]
    fn add_pushes_coalesce_into_one_bulk_move() {
        let iface = compiled("interface B { procedure Add(a: int32, b: int32) -> int32; }");
        let plan = ProcPlan::compile(&iface.procs[0]);
        let push = plan.push.as_ref().expect("fixed args compile");
        assert_eq!(push.steps.len(), 1, "two adjacent int32 slots fuse");
        match &push.steps[0] {
            PushStep::Run {
                first,
                count,
                offset,
                len,
            } => {
                assert_eq!((*first, *count, *offset, *len), (0, 2, 0, 8));
            }
            other => panic!("expected a run, got {other:?}"),
        }
        assert!(plan.fully_compiled());
        assert_eq!(plan.in_bytes, 8);
        assert_eq!(plan.out_bytes, 4);
    }

    #[test]
    fn padding_gaps_break_runs() {
        // bool encodes 1 byte into a 4-byte slot: the padding gap before
        // the next slot must prevent fusion (bulk writes stay
        // byte-identical to per-slot writes).
        let iface = compiled("interface B { procedure P(a: bool, b: int32); }");
        let plan = ProcPlan::compile(&iface.procs[0]);
        assert_eq!(plan.push.unwrap().steps.len(), 2);
    }

    #[test]
    fn byte_arrays_move_directly() {
        let iface = compiled("interface B { procedure BigIn(data: in bytes[200]); }");
        let plan = ProcPlan::compile(&iface.procs[0]);
        let push = plan.push.unwrap();
        assert!(matches!(
            push.steps[0],
            PushStep::Bytes {
                param: 0,
                offset: 0,
                len: 200
            }
        ));
    }

    #[test]
    fn complex_and_out_of_band_types_fall_back_to_the_interpreter() {
        // Complex types and OOB-demoted slots stay interpreted; inline
        // variable byte arrays now compile.
        let iface = compiled(
            "interface B { procedure Walk(t: tree); procedure Send(pkt: var bytes[4096]); }",
        );
        let walk = ProcPlan::compile(&iface.procs[0]);
        assert!(walk.push.is_none() && walk.read.is_none());
        let send = ProcPlan::compile(&iface.procs[1]);
        assert!(
            send.push.is_none(),
            "out-of-band slots are interpreter-only"
        );
        let plans = InterfacePlans::compile(&iface);
        assert_eq!(plans.fully_compiled_count(), 0);
    }

    #[test]
    fn inline_variable_bytes_compile() {
        let iface = compiled("interface B { procedure Log(m: var bytes[256]); }");
        let plan = ProcPlan::compile(&iface.procs[0]);
        assert!(plan.fully_compiled(), "inline var bytes lower to a plan");
        let push = plan.push.as_ref().unwrap();
        assert!(matches!(
            push.steps[0],
            PushStep::Var {
                param: 0,
                offset: 0,
                max: 256
            }
        ));
    }

    /// Runs the full four-half cycle through either the interpreter or the
    /// compiled plan and returns (frame bytes, ret, outs, virtual ns).
    #[allow(clippy::type_complexity)]
    fn cycle(
        iface: &CompiledInterface,
        args: &[Value],
        ret: Option<Value>,
        outs: &[(usize, Value)],
        use_plan: bool,
    ) -> (Vec<u8>, Option<Value>, Vec<(usize, Value)>, u64) {
        let proc = &iface.procs[0];
        let machine = Machine::cvax_uniprocessor();
        let mut meter = Meter::enabled();
        let mut frame = LocalFrame::new(proc.layout.astack_size);
        let mut oob = OobStore::new();
        let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
        let plan = ProcPlan::compile(proc);
        if use_plan {
            plan.push
                .as_ref()
                .unwrap()
                .execute(proc, args, &mut frame, &mut vm)
                .unwrap();
            let mut sargs = ArgVec::new();
            plan.read
                .as_ref()
                .unwrap()
                .execute(&frame, &mut vm, &mut sargs)
                .unwrap();
            plan.place
                .as_ref()
                .unwrap()
                .execute(ret.as_ref(), outs, &mut frame)
                .unwrap();
            let (r, o) = plan
                .fetch
                .as_ref()
                .unwrap()
                .execute(&frame, &mut vm)
                .unwrap();
            (
                frame.bytes().to_vec(),
                r,
                o,
                machine.cpu(0).now().as_nanos(),
            )
        } else {
            vm.client_push_args(proc, args, &mut frame, &mut oob)
                .unwrap();
            vm.server_read_args(proc, &frame, &oob).unwrap();
            vm.server_place_results(proc, ret.as_ref(), outs, &mut frame, &mut oob)
                .unwrap();
            let (r, o) = vm.client_fetch_results(proc, &frame, &oob).unwrap();
            (
                frame.bytes().to_vec(),
                r,
                o,
                machine.cpu(0).now().as_nanos(),
            )
        }
    }

    #[test]
    fn plan_cycle_matches_interpreter_bytes_values_and_virtual_time() {
        let iface = compiled("interface B { procedure Add(a: int32, b: int32) -> int32; }");
        let args = [Value::Int32(2), Value::Int32(3)];
        let interp = cycle(&iface, &args, Some(Value::Int32(5)), &[], false);
        let plan = cycle(&iface, &args, Some(Value::Int32(5)), &[], true);
        assert_eq!(interp, plan);
    }

    #[test]
    fn var_bytes_plan_cycle_matches_interpreter_at_every_length() {
        // The defensive-copy (checked) path: interpreted variable data.
        let iface = compiled("interface B { procedure Log(m: var bytes[256]); }");
        for len in [0usize, 1, 37, 256] {
            let args = [Value::Var(vec![0xAB; len])];
            let interp = cycle(&iface, &args, None, &[], false);
            let plan = cycle(&iface, &args, None, &[], true);
            assert_eq!(interp, plan, "len={len}");
        }
    }

    #[test]
    fn inout_var_bytes_plan_cycle_matches_interpreter() {
        let iface = compiled("interface B { procedure Echo(m: inout var bytes[128]); }");
        assert!(ProcPlan::compile(&iface.procs[0]).fully_compiled());
        let args = [Value::Var(vec![7; 99])];
        let outs = [(0usize, Value::Var(vec![9; 42]))];
        let interp = cycle(&iface, &args, None, &outs, false);
        let plan = cycle(&iface, &args, None, &outs, true);
        assert_eq!(interp, plan);
    }

    #[test]
    fn inplace_var_bytes_skip_the_checked_copy_charge() {
        // `[inplace]` waives the Section 3.3 defensive copy: the compiled
        // read half charges nothing, same as the interpreter's shared view.
        let guarded = compiled("interface B { procedure Log(m: var bytes[256]); }");
        let shared = compiled("interface B { [inplace = 1] procedure Log(m: var bytes[256]); }");
        let args = [Value::Var(vec![1; 200])];
        let g = cycle(&guarded, &args, None, &[], true);
        let s = cycle(&shared, &args, None, &[], true);
        assert!(
            s.3 < g.3,
            "shared view must be cheaper than copy-on-guard: {} vs {}",
            s.3,
            g.3
        );
        let s_interp = cycle(&shared, &args, None, &[], false);
        assert_eq!(s, s_interp, "inplace plan still matches its interpreter");
    }

    #[test]
    fn by_ref_var_bytes_still_take_the_checked_copy() {
        // `ref` forces the rebuild copy even under `[inplace]`.
        let iface = compiled("interface B { [inplace = 1] procedure P(m: in ref var bytes[64]); }");
        let args = [Value::Var(vec![3; 50])];
        let interp = cycle(&iface, &args, None, &[], false);
        let plan = cycle(&iface, &args, None, &[], true);
        assert_eq!(interp, plan);
        assert!(plan.3 > 0, "the rebuild copy is charged");
    }

    #[test]
    fn mixed_fixed_and_complex_procs_fall_back_entirely() {
        // A complex sibling parameter puts the whole procedure on the
        // Modula2+ marshaling path; its halves all stay interpreted.
        let iface = compiled("interface B { procedure P(n: int32, t: tree); }");
        let proc = &iface.procs[0];
        assert_eq!(proc.lang, StubLang::Modula2Plus);
        let plan = ProcPlan::compile(proc);
        assert!(!plan.fully_compiled());
        assert!(plan.push.is_none());
    }

    #[test]
    fn plan_read_rejects_nonconforming_cardinal() {
        let iface = compiled("interface B { procedure P(n: cardinal); }");
        let proc = &iface.procs[0];
        let machine = Machine::cvax_uniprocessor();
        let mut meter = Meter::enabled();
        let mut frame = LocalFrame::new(proc.layout.astack_size);
        let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
        let plan = ProcPlan::compile(proc);
        plan.push
            .as_ref()
            .unwrap()
            .execute(proc, &[Value::Cardinal(-5)], &mut frame, &mut vm)
            .unwrap();
        let mut sargs = ArgVec::new();
        let err = plan
            .read
            .as_ref()
            .unwrap()
            .execute(&frame, &mut vm, &mut sargs)
            .unwrap_err();
        assert!(matches!(
            err,
            StubError::Wire(WireError::Conformance { .. })
        ));
    }

    #[test]
    fn argvec_stays_inline_then_spills() {
        let mut v = ArgVec::new();
        for i in 0..ARGVEC_INLINE {
            v.push(Value::Int32(i as i32));
        }
        assert_eq!(v.len(), ARGVEC_INLINE);
        assert_eq!(v.as_slice()[0], Value::Int32(0));
        v.push(Value::Int32(99));
        assert_eq!(v.len(), ARGVEC_INLINE + 1);
        assert_eq!(v.as_slice()[ARGVEC_INLINE], Value::Int32(99));
        // Values with heap payloads drop cleanly from the inline store.
        let mut w = ArgVec::new();
        w.push(Value::Bytes(vec![1, 2, 3]));
        drop(w);
        let adopted = ArgVec::from_vec(vec![Value::Bool(true)]);
        assert_eq!(adopted.as_slice(), &[Value::Bool(true)]);
    }

    #[test]
    fn wrong_arg_count_is_rejected_before_any_charge() {
        let iface = compiled("interface B { procedure P(a: int32); }");
        let proc = &iface.procs[0];
        let machine = Machine::cvax_uniprocessor();
        let mut meter = Meter::enabled();
        let mut frame = LocalFrame::new(proc.layout.astack_size);
        let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
        let plan = ProcPlan::compile(proc);
        let err = plan
            .push
            .as_ref()
            .unwrap()
            .execute(proc, &[], &mut frame, &mut vm)
            .unwrap_err();
        assert!(matches!(err, StubError::ArgCount { .. }));
        assert_eq!(machine.cpu(0).now().as_nanos(), 0);
    }
}
