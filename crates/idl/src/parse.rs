//! Parser for interface definition files.
//!
//! The concrete syntax is a small Modula2+-flavoured IDL:
//!
//! ```text
//! interface FileServer {
//!     procedure Null();
//!     procedure Add(a: int32, b: int32) -> int32;
//!     [astacks = 8]
//!     procedure Write(handle: int32, data: in bytes[1024] noninterpreted) -> int32;
//!     procedure Stat(path: var bytes[256]) -> record { size: int32, mtime: int32 };
//!     procedure Walk(t: ref tree);
//! }
//! ```
//!
//! Parameters default to direction `in`; `out`, `inout`, `ref` and
//! `noninterpreted` are the Section 3.2/3.5 annotations the stub generator
//! acts on. The `[astacks = N]` and `[astack_size = N]` attributes are the
//! Section 5.2 overrides.

use core::fmt;

use crate::ast::{Dir, InterfaceDef, Param, ProcDef};
use crate::types::{ComplexKind, Ty};

/// A parse error with source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(u64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Colon,
    Semi,
    Comma,
    Arrow,
    Eq,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                // Line comments: `//` or `#`.
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'#') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn next(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = match c {
            b'{' => {
                self.bump();
                Tok::LBrace
            }
            b'}' => {
                self.bump();
                Tok::RBrace
            }
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'=' => {
                self.bump();
                Tok::Eq
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    Tok::Arrow
                } else {
                    return Err(self.error("expected `->`"));
                }
            }
            b'0'..=b'9' => {
                let mut n: u64 = 0;
                while let Some(d @ b'0'..=b'9') = self.peek() {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(u64::from(d - b'0')))
                        .ok_or_else(|| self.error("integer literal too large"))?;
                    self.bump();
                }
                Tok::Int(n)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                // SAFETY-free: the slice is ASCII identifier characters.
                Tok::Ident(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
            }
            other => {
                return Err(self.error(format!("unexpected character `{}`", other as char)));
            }
        };
        Ok((tok, line, col))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Parser<'a>, ParseError> {
        let mut lexer = Lexer::new(src);
        let (tok, line, col) = lexer.next()?;
        Ok(Parser {
            lexer,
            tok,
            line,
            col,
        })
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn advance(&mut self) -> Result<Tok, ParseError> {
        let (tok, line, col) = self.lexer.next()?;
        self.line = line;
        self.col = col;
        Ok(std::mem::replace(&mut self.tok, tok))
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if &self.tok == want {
            self.advance()?;
            Ok(())
        } else {
            Err(self.error(format!("expected {want}, found {}", self.tok)))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.tok.clone() {
            Tok::Ident(s) => {
                self.advance()?;
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match &self.tok {
            Tok::Ident(s) if s == kw => {
                self.advance()?;
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {other}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<bool, ParseError> {
        if matches!(&self.tok, Tok::Ident(s) if s == kw) {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_int(&mut self) -> Result<u64, ParseError> {
        match self.tok {
            Tok::Int(n) => {
                self.advance()?;
                Ok(n)
            }
            ref other => Err(self.error(format!("expected integer, found {other}"))),
        }
    }

    fn interface(&mut self) -> Result<InterfaceDef, ParseError> {
        self.expect_keyword("interface")?;
        let name = self.expect_ident()?;
        self.expect(&Tok::LBrace)?;
        let mut procs = Vec::new();
        while self.tok != Tok::RBrace {
            procs.push(self.procedure()?);
        }
        self.expect(&Tok::RBrace)?;
        if self.tok != Tok::Eof {
            return Err(self.error(format!("trailing input after interface: {}", self.tok)));
        }
        if procs.is_empty() {
            return Err(self.error("interface declares no procedures"));
        }
        // Semantic checks: procedure identifiers are the dispatch keys and
        // parameter names feed generated code, so duplicates are rejected
        // at definition time.
        let mut seen = std::collections::HashSet::new();
        for p in &procs {
            if !seen.insert(p.name.as_str()) {
                return Err(self.error(format!("duplicate procedure name `{}`", p.name)));
            }
            let mut params = std::collections::HashSet::new();
            for param in &p.params {
                if !params.insert(param.name.as_str()) {
                    return Err(self.error(format!(
                        "duplicate parameter name `{}` in procedure `{}`",
                        param.name, p.name
                    )));
                }
            }
        }
        Ok(InterfaceDef::new(name, procs))
    }

    fn procedure(&mut self) -> Result<ProcDef, ParseError> {
        let mut astack_count = None;
        let mut astack_size = None;
        let mut idempotent = false;
        let mut inplace = false;
        while self.tok == Tok::LBracket {
            self.advance()?;
            let key = self.expect_ident()?;
            self.expect(&Tok::Eq)?;
            let value = self.expect_int()?;
            self.expect(&Tok::RBracket)?;
            match key.as_str() {
                "astacks" => {
                    if value == 0 {
                        return Err(self.error("astacks must be at least 1"));
                    }
                    astack_count = Some(value as u32);
                }
                "astack_size" => astack_size = Some(value as usize),
                "idempotent" => idempotent = value != 0,
                "inplace" => inplace = value != 0,
                other => {
                    return Err(self.error(format!("unknown attribute `{other}`")));
                }
            }
        }
        self.expect_keyword("procedure")?;
        let name = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.tok != Tok::RParen {
            loop {
                params.push(self.param()?);
                if self.tok == Tok::Comma {
                    self.advance()?;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let ret = if self.tok == Tok::Arrow {
            self.advance()?;
            Some(self.ty()?)
        } else {
            None
        };
        self.expect(&Tok::Semi)?;
        Ok(ProcDef {
            name,
            params,
            ret,
            astack_count,
            astack_size,
            idempotent,
            inplace,
        })
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let name = self.expect_ident()?;
        self.expect(&Tok::Colon)?;
        let dir = if self.eat_keyword("in")? {
            Dir::In
        } else if self.eat_keyword("out")? {
            Dir::Out
        } else if self.eat_keyword("inout")? {
            Dir::InOut
        } else {
            Dir::In
        };
        let by_ref = self.eat_keyword("ref")?;
        let ty = self.ty()?;
        let mut noninterpreted = false;
        while let Tok::Ident(s) = &self.tok {
            match s.as_str() {
                "noninterpreted" => {
                    noninterpreted = true;
                    self.advance()?;
                }
                other => {
                    return Err(self.error(format!("unknown parameter annotation `{other}`")));
                }
            }
        }
        Ok(Param {
            name,
            ty,
            dir,
            noninterpreted,
            by_ref,
        })
    }

    fn ty(&mut self) -> Result<Ty, ParseError> {
        let kw = self.expect_ident()?;
        match kw.as_str() {
            "bool" => Ok(Ty::Bool),
            "byte" => Ok(Ty::Byte),
            "int16" => Ok(Ty::Int16),
            "int32" => Ok(Ty::Int32),
            "cardinal" => Ok(Ty::Cardinal),
            "bytes" => {
                self.expect(&Tok::LBracket)?;
                let n = self.expect_int()? as usize;
                self.expect(&Tok::RBracket)?;
                if n == 0 {
                    return Err(self.error("byte array size must be at least 1"));
                }
                Ok(Ty::ByteArray(n))
            }
            "var" => {
                self.expect_keyword("bytes")?;
                self.expect(&Tok::LBracket)?;
                let n = self.expect_int()? as usize;
                self.expect(&Tok::RBracket)?;
                if n == 0 {
                    return Err(self.error("variable byte array maximum must be at least 1"));
                }
                Ok(Ty::VarBytes(n))
            }
            "record" => {
                self.expect(&Tok::LBrace)?;
                let mut fields = Vec::new();
                loop {
                    let fname = self.expect_ident()?;
                    self.expect(&Tok::Colon)?;
                    let fty = self.ty()?;
                    fields.push((fname, fty));
                    if self.tok == Tok::Comma {
                        self.advance()?;
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::RBrace)?;
                Ok(Ty::Record(fields))
            }
            "list" => Ok(Ty::Complex(ComplexKind::LinkedList)),
            "tree" => Ok(Ty::Complex(ComplexKind::Tree)),
            "gc" => Ok(Ty::Complex(ComplexKind::GarbageCollected)),
            other => Err(self.error(format!("unknown type `{other}`"))),
        }
    }
}

/// Parses one interface definition.
///
/// # Examples
///
/// ```
/// let iface = idl::parse("interface Math { procedure Add(a: int32, b: int32) -> int32; }")
///     .expect("valid interface");
/// assert_eq!(iface.name, "Math");
/// assert_eq!(iface.procs.len(), 1);
/// ```
pub fn parse(src: &str) -> Result<InterfaceDef, ParseError> {
    Parser::new(src)?.interface()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_four_test_procedures() {
        // The Table 4 benchmark interface.
        let src = r#"
            interface Bench {
                procedure Null();
                procedure Add(a: int32, b: int32) -> int32;
                procedure BigIn(data: in bytes[200]);
                procedure BigInOut(data: inout bytes[200]);
            }
        "#;
        let iface = parse(src).unwrap();
        assert_eq!(iface.name, "Bench");
        assert_eq!(iface.procs.len(), 4);
        assert_eq!(iface.procs[0].params.len(), 0);
        assert_eq!(iface.procs[1].ret, Some(Ty::Int32));
        assert_eq!(iface.procs[3].params[0].dir, Dir::InOut);
    }

    #[test]
    fn parses_annotations_and_attributes() {
        let src = r#"
            interface FS {
                [astacks = 8] [astack_size = 2048]
                procedure Write(h: int32, data: in ref bytes[1024] noninterpreted) -> int32;
            }
        "#;
        let iface = parse(src).unwrap();
        let w = &iface.procs[0];
        assert_eq!(w.astack_count, Some(8));
        assert_eq!(w.astack_size, Some(2048));
        assert!(w.params[1].noninterpreted);
        assert!(w.params[1].by_ref);
    }

    #[test]
    fn parses_records_and_complex_types() {
        let src = r#"
            interface Meta {
                procedure Stat(path: var bytes[256]) -> record { size: int32, mtime: int32 };
                procedure Walk(t: tree);
                procedure Intern(l: list) -> gc;
            }
        "#;
        let iface = parse(src).unwrap();
        assert!(matches!(iface.procs[0].ret, Some(Ty::Record(_))));
        assert!(iface.procs[1].has_complex());
        assert!(iface.procs[2].has_complex());
    }

    #[test]
    fn comments_are_skipped() {
        let src = "interface C { // a comment\n # another\n procedure P(); }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("interface X {\n  procedure P(a: float);\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("unknown type"));
    }

    #[test]
    fn rejects_empty_interface_and_trailing_input() {
        assert!(parse("interface E { }").is_err());
        assert!(parse("interface E { procedure P(); } garbage").is_err());
    }

    #[test]
    fn rejects_zero_sized_arrays_and_zero_astacks() {
        assert!(parse("interface E { procedure P(x: bytes[0]); }").is_err());
        assert!(parse("interface E { [astacks = 0] procedure P(); }").is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = parse("interface D { procedure P(); procedure P(a: int32); }").unwrap_err();
        assert!(err.msg.contains("duplicate procedure name"));
        let err = parse("interface D { procedure P(a: int32, a: bool); }").unwrap_err();
        assert!(err.msg.contains("duplicate parameter name"));
    }

    #[test]
    fn rejects_oversized_integer_literal() {
        let src = "interface E { procedure P(x: bytes[99999999999999999999999]); }";
        assert!(parse(src).is_err());
    }
}
