//! The IDL type model.
//!
//! Section 2.2's measurements drive the distinctions this model makes:
//! most parameters are small and of fixed size known at compile time
//! ("four out of five parameters were of fixed size ... sixty-five percent
//! were four bytes or fewer"); complex recursively-defined types exist but
//! "were marshaled by system library procedures, rather than by
//! machine-generated code". The stub generator treats these classes very
//! differently (Section 3.3), so the type model must expose them.

use core::fmt;

/// Kinds of complex (recursively defined or garbage-collected) types that
/// force the Modula2+ marshaling path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ComplexKind {
    /// A linked list.
    LinkedList,
    /// A binary tree.
    Tree,
    /// Data that must be made known to the garbage collector.
    GarbageCollected,
}

impl ComplexKind {
    /// Keyword used in interface definitions.
    pub fn keyword(self) -> &'static str {
        match self {
            ComplexKind::LinkedList => "list",
            ComplexKind::Tree => "tree",
            ComplexKind::GarbageCollected => "gc",
        }
    }
}

/// A parameter or result type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Ty {
    /// Boolean (1 byte on the wire).
    Bool,
    /// One byte.
    Byte,
    /// 16-bit signed integer.
    Int16,
    /// 32-bit signed integer.
    Int32,
    /// Modula2+ CARDINAL: a 32-bit value restricted to non-negative
    /// integers. "A client could crash a server by passing it an unwanted
    /// negative value" — the conformance check is folded into the stub's
    /// copy (Section 3.5).
    Cardinal,
    /// Fixed-size byte array.
    ByteArray(usize),
    /// Variable-size byte array with the given maximum.
    VarBytes(usize),
    /// Record of named fields; fixed-size iff every field is.
    Record(Vec<(String, Ty)>),
    /// A complex type marshaled by library code.
    Complex(ComplexKind),
}

impl Ty {
    /// The exact wire size if it is known at compile time.
    ///
    /// Variable and complex types return `None`.
    pub fn fixed_size(&self) -> Option<usize> {
        match self {
            Ty::Bool | Ty::Byte => Some(1),
            Ty::Int16 => Some(2),
            Ty::Int32 | Ty::Cardinal => Some(4),
            Ty::ByteArray(n) => Some(*n),
            Ty::VarBytes(_) | Ty::Complex(_) => None,
            Ty::Record(fields) => {
                let mut total = 0;
                for (_, t) in fields {
                    total += t.fixed_size()?;
                }
                Some(total)
            }
        }
    }

    /// An upper bound on the wire size, used for A-stack slot sizing of
    /// variable types (a 4-byte length prefix plus the maximum payload).
    ///
    /// Complex types have no static bound; they return `None` and are
    /// marshaled into dynamically-sized buffers.
    pub fn max_size(&self) -> Option<usize> {
        match self {
            Ty::VarBytes(max) => Some(4 + *max),
            Ty::Complex(_) => None,
            Ty::Record(fields) => {
                let mut total = 0;
                for (_, t) in fields {
                    total += t.max_size()?;
                }
                Some(total)
            }
            _ => self.fixed_size(),
        }
    }

    /// True if the type (or any nested part) is complex and therefore needs
    /// the Modula2+ marshaling path.
    pub fn is_complex(&self) -> bool {
        match self {
            Ty::Complex(_) => true,
            Ty::Record(fields) => fields.iter().any(|(_, t)| t.is_complex()),
            _ => false,
        }
    }

    /// True if the value needs a conformance check on receipt (CARDINAL's
    /// non-negativity).
    pub fn needs_conformance_check(&self) -> bool {
        match self {
            Ty::Cardinal => true,
            Ty::Record(fields) => fields.iter().any(|(_, t)| t.needs_conformance_check()),
            _ => false,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Bool => write!(f, "bool"),
            Ty::Byte => write!(f, "byte"),
            Ty::Int16 => write!(f, "int16"),
            Ty::Int32 => write!(f, "int32"),
            Ty::Cardinal => write!(f, "cardinal"),
            Ty::ByteArray(n) => write!(f, "bytes[{n}]"),
            Ty::VarBytes(n) => write!(f, "var bytes[{n}]"),
            Ty::Record(fields) => {
                write!(f, "record {{ ")?;
                for (i, (name, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {t}")?;
                }
                write!(f, " }}")
            }
            Ty::Complex(k) => write!(f, "{}", k.keyword()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_sizes() {
        assert_eq!(Ty::Bool.fixed_size(), Some(1));
        assert_eq!(Ty::Int32.fixed_size(), Some(4));
        assert_eq!(Ty::Cardinal.fixed_size(), Some(4));
        assert_eq!(Ty::ByteArray(200).fixed_size(), Some(200));
        assert_eq!(Ty::VarBytes(100).fixed_size(), None);
        assert_eq!(Ty::Complex(ComplexKind::LinkedList).fixed_size(), None);
    }

    #[test]
    fn record_size_is_sum_of_fields() {
        let r = Ty::Record(vec![("size".into(), Ty::Int32), ("flag".into(), Ty::Bool)]);
        assert_eq!(r.fixed_size(), Some(5));
        let r2 = Ty::Record(vec![("data".into(), Ty::VarBytes(8))]);
        assert_eq!(r2.fixed_size(), None);
        assert_eq!(r2.max_size(), Some(12));
    }

    #[test]
    fn var_bytes_max_includes_length_prefix() {
        assert_eq!(Ty::VarBytes(100).max_size(), Some(104));
    }

    #[test]
    fn complexity_propagates_through_records() {
        let r = Ty::Record(vec![("next".into(), Ty::Complex(ComplexKind::Tree))]);
        assert!(r.is_complex());
        assert_eq!(r.max_size(), None);
        assert!(!Ty::ByteArray(4).is_complex());
    }

    #[test]
    fn cardinal_needs_conformance_check() {
        assert!(Ty::Cardinal.needs_conformance_check());
        assert!(!Ty::Int32.needs_conformance_check());
        let r = Ty::Record(vec![("count".into(), Ty::Cardinal)]);
        assert!(r.needs_conformance_check());
    }

    #[test]
    fn display_roundtrips_keywords() {
        assert_eq!(Ty::VarBytes(16).to_string(), "var bytes[16]");
        assert_eq!(Ty::Complex(ComplexKind::GarbageCollected).to_string(), "gc");
    }
}
