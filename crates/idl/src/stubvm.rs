//! The stub VM: executes generated stub data operations.
//!
//! LRPC stubs "consist mainly of move and trap instructions"; the stub VM
//! interprets the data-movement half of a [`crate::stubgen::StubProgram`]
//! against an A-stack frame, charging the calibrated per-operation and
//! per-byte costs to the executing CPU. Control operations (traps, queue
//! operations, the branch into the procedure) are performed by the LRPC
//! runtime itself — their cost is part of the fixed stub/kernel overhead
//! constants.
//!
//! Modula2+ marshaling stubs run the same logical operations at 4× the
//! per-operation cost (the paper measures "a factor of four performance
//! improvement over Modula2+ stubs created by the SRC RPC stub
//! generator").

use firefly::cost::CostModel;
use firefly::cpu::Cpu;
use firefly::error::MemFault;
use firefly::meter::{Meter, Phase};

use crate::layout::SlotKind;
use crate::stubgen::{CompiledProc, StubLang};
use crate::types::Ty;
use crate::wire::{decode, decode_checked, encode_vec, Value, WireError};

/// Cost multiplier of the Modula2+ marshaling path relative to assembly
/// stubs (Section 3.3).
pub const MODULA2_SLOWDOWN: u64 = 4;

/// An error raised by stub execution.
#[derive(Debug)]
pub enum StubError {
    /// Encoding/decoding or conformance failure.
    Wire(WireError),
    /// The underlying frame (A-stack) access faulted.
    Frame(MemFault),
    /// Wrong number of arguments supplied to the client stub.
    ArgCount {
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        got: usize,
    },
    /// An out-of-band descriptor referenced a missing segment.
    OutOfBandMissing {
        /// The dangling segment id.
        id: u32,
    },
    /// The server procedure did not produce a declared result.
    MissingResult,
}

impl core::fmt::Display for StubError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StubError::Wire(e) => write!(f, "wire error: {e}"),
            StubError::Frame(e) => write!(f, "frame fault: {e}"),
            StubError::ArgCount { expected, got } => {
                write!(f, "expected {expected} arguments, got {got}")
            }
            StubError::OutOfBandMissing { id } => {
                write!(f, "out-of-band segment {id} missing")
            }
            StubError::MissingResult => write!(f, "server produced no result"),
        }
    }
}

impl std::error::Error for StubError {}

impl From<WireError> for StubError {
    fn from(e: WireError) -> StubError {
        StubError::Wire(e)
    }
}

impl From<MemFault> for StubError {
    fn from(e: MemFault) -> StubError {
        StubError::Frame(e)
    }
}

/// Byte-level access to one call's A-stack frame.
///
/// The LRPC runtime implements this over a pairwise-shared memory region;
/// tests and the message-RPC baseline use [`LocalFrame`].
pub trait Frame {
    /// Writes `data` at `offset` within the frame.
    fn write(&mut self, offset: usize, data: &[u8]) -> Result<(), StubError>;
    /// Reads `out.len()` bytes at `offset` into `out` — the borrowed,
    /// zero-allocation accessor compiled copy plans are built on.
    fn read_into(&self, offset: usize, out: &mut [u8]) -> Result<(), StubError>;
    /// Reads `len` bytes at `offset` into a fresh vector (allocating
    /// convenience for the interpreter and for variable-size slots).
    fn read(&self, offset: usize, len: usize) -> Result<Vec<u8>, StubError> {
        let mut buf = vec![0; len];
        self.read_into(offset, &mut buf)?;
        Ok(buf)
    }
}

/// A plain in-memory frame.
#[derive(Clone, Debug)]
pub struct LocalFrame {
    bytes: Vec<u8>,
}

impl LocalFrame {
    /// A zeroed frame of `len` bytes.
    pub fn new(len: usize) -> LocalFrame {
        LocalFrame {
            bytes: vec![0; len],
        }
    }

    /// The raw frame contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl Frame for LocalFrame {
    fn write(&mut self, offset: usize, data: &[u8]) -> Result<(), StubError> {
        let end = offset
            .checked_add(data.len())
            .filter(|&e| e <= self.bytes.len())
            .ok_or(StubError::Frame(MemFault::OutOfRange {
                region: firefly::mem::RegionId(0),
                offset,
                len: data.len(),
            }))?;
        self.bytes[offset..end].copy_from_slice(data);
        Ok(())
    }

    fn read_into(&self, offset: usize, out: &mut [u8]) -> Result<(), StubError> {
        let end = offset
            .checked_add(out.len())
            .filter(|&e| e <= self.bytes.len())
            .ok_or(StubError::Frame(MemFault::OutOfRange {
                region: firefly::mem::RegionId(0),
                offset,
                len: out.len(),
            }))?;
        out.copy_from_slice(&self.bytes[offset..end]);
        Ok(())
    }
}

/// Out-of-band segments accompanying one call.
pub type OobStore = Vec<Vec<u8>>;

/// Fetched results: the return value plus `(param_index, value)` pairs for
/// out-direction parameters.
pub type FetchedResults = (Option<Value>, Vec<(usize, Value)>);

/// True if the server stub must copy this parameter off the shared A-stack
/// before use: conformance-checked types (the check is folded into the
/// copy), interpreted variable data (the client could change it mid-call),
/// and by-reference referents (the reference must be rebuilt on the private
/// E-stack).
///
/// `inplace` is the procedure's `[inplace]` attribute: a server that opts
/// into a shared view of interpreted variable data waives the defensive
/// copy (and with it the mid-call-mutation guarantee) — conformance checks
/// and reference rebuilds still apply regardless.
pub fn needs_server_copy(param: &crate::ast::Param, inplace: bool) -> bool {
    param.ty.needs_conformance_check()
        || (!inplace && !param.noninterpreted && param.ty.fixed_size().is_none())
        || param.by_ref
}

/// The stub interpreter, bound to one CPU and meter.
pub struct StubVm<'a> {
    cost: &'a CostModel,
    cpu: &'a Cpu,
    meter: &'a mut Meter,
}

impl<'a> StubVm<'a> {
    /// Creates a VM charging to `cpu` under `cost`, recording into `meter`.
    pub fn new(cost: &'a CostModel, cpu: &'a Cpu, meter: &'a mut Meter) -> StubVm<'a> {
        StubVm { cost, cpu, meter }
    }

    fn charge_op(&mut self, lang: StubLang, bytes: usize) {
        let mult = match lang {
            StubLang::Assembly => 1,
            StubLang::Modula2Plus => MODULA2_SLOWDOWN,
        };
        let cost = (self.cost.per_arg_op + self.cost.per_byte_copy * bytes as u64) * mult;
        let phase = if lang == StubLang::Assembly {
            Phase::ArgCopy
        } else {
            Phase::Marshal
        };
        self.cpu.charge(cost);
        self.meter.record_span(phase, cost, self.cpu.now());
    }

    /// Charges a *fused* run of `ops` data operations moving `bytes` total
    /// bytes as one span. By cost linearity this equals `ops` separate
    /// [`charge_op`] calls to the nanosecond — `(per_arg_op * ops +
    /// per_byte_copy * bytes) * mult` — which is what lets compiled copy
    /// plans coalesce moves without perturbing Table 5.
    pub fn charge_bulk(&mut self, lang: StubLang, ops: u64, bytes: u64) {
        if ops == 0 && bytes == 0 {
            return;
        }
        let mult = match lang {
            StubLang::Assembly => 1,
            StubLang::Modula2Plus => MODULA2_SLOWDOWN,
        };
        let cost = (self.cost.per_arg_op * ops + self.cost.per_byte_copy * bytes) * mult;
        let phase = if lang == StubLang::Assembly {
            Phase::ArgCopy
        } else {
            Phase::Marshal
        };
        self.cpu.charge(cost);
        self.meter.record_span(phase, cost, self.cpu.now());
    }

    fn write_oob_descriptor(
        &mut self,
        frame: &mut dyn Frame,
        offset: usize,
        id: u32,
        len: u32,
    ) -> Result<(), StubError> {
        let mut d = [0u8; 8];
        d[..4].copy_from_slice(&id.to_le_bytes());
        d[4..].copy_from_slice(&len.to_le_bytes());
        frame.write(offset, &d)
    }

    fn read_oob_descriptor(
        &mut self,
        frame: &dyn Frame,
        offset: usize,
    ) -> Result<(u32, u32), StubError> {
        let mut d = [0u8; 8];
        frame.read_into(offset, &mut d)?;
        Ok((
            u32::from_le_bytes([d[0], d[1], d[2], d[3]]),
            u32::from_le_bytes([d[4], d[5], d[6], d[7]]),
        ))
    }

    /// Client call half: pushes every in-direction argument onto the frame
    /// (inline slots) or into out-of-band segments, charging stub costs.
    pub fn client_push_args(
        &mut self,
        proc: &CompiledProc,
        args: &[Value],
        frame: &mut dyn Frame,
        oob: &mut OobStore,
    ) -> Result<(), StubError> {
        if args.len() != proc.def.params.len() {
            return Err(StubError::ArgCount {
                expected: proc.def.params.len(),
                got: args.len(),
            });
        }
        for (i, param) in proc.def.params.iter().enumerate() {
            if !param.dir.is_in() {
                continue;
            }
            let slot = &proc.layout.params[i];
            let encoded = encode_vec(&args[i], &param.ty)?;
            match slot.kind {
                SlotKind::Inline => {
                    self.charge_op(proc.lang, encoded.len());
                    frame.write(slot.offset, &encoded)?;
                }
                SlotKind::OutOfBand => {
                    // Marshaling into the out-of-band segment is always on
                    // the Modula2+ path.
                    self.charge_op(StubLang::Modula2Plus, encoded.len());
                    let id = oob.len() as u32;
                    let len = encoded.len() as u32;
                    oob.push(encoded);
                    self.write_oob_descriptor(frame, slot.offset, id, len)?;
                }
            }
        }
        Ok(())
    }

    /// Server entry half: reads every parameter out of the frame, applying
    /// the Section 3.5 rules — conformance checks folded into the copy,
    /// defensive copies for interpreted variable data, reference rebuild
    /// for by-ref parameters, unmarshaling for out-of-band values.
    ///
    /// Out-direction parameters get zero placeholders.
    pub fn server_read_args(
        &mut self,
        proc: &CompiledProc,
        frame: &dyn Frame,
        oob: &OobStore,
    ) -> Result<Vec<Value>, StubError> {
        let mut vals = Vec::with_capacity(proc.def.params.len());
        for (i, param) in proc.def.params.iter().enumerate() {
            if !param.dir.is_in() {
                vals.push(Value::zero_of(&param.ty));
                continue;
            }
            let slot = &proc.layout.params[i];
            let value = match slot.kind {
                SlotKind::Inline => {
                    let raw = frame.read(slot.offset, slot.size)?;
                    if needs_server_copy(param, proc.def.inplace) {
                        // Defensive copy / checked copy / reference rebuild:
                        // one more pass over the bytes.
                        self.charge_op(proc.lang, slot.size.min(raw.len()));
                        let (v, _) = decode_checked(&raw, &param.ty)?;
                        v
                    } else {
                        // The server uses the value directly off the shared
                        // A-stack ("the server procedure can directly
                        // access the parameters as though it had been
                        // called directly").
                        let (v, _) = decode(&raw, &param.ty)?;
                        v
                    }
                }
                SlotKind::OutOfBand => {
                    let (id, len) = self.read_oob_descriptor(frame, slot.offset)?;
                    let seg = oob
                        .get(id as usize)
                        .ok_or(StubError::OutOfBandMissing { id })?;
                    if seg.len() < len as usize {
                        return Err(StubError::Wire(WireError::Truncated));
                    }
                    self.charge_op(StubLang::Modula2Plus, len as usize);
                    let (v, _) = decode_checked(&seg[..len as usize], &param.ty)?;
                    v
                }
            };
            vals.push(value);
        }
        Ok(vals)
    }

    /// Server return half: places the return value and every out-direction
    /// parameter into the frame.
    ///
    /// Inline placement is *free*: the server procedure writes its results
    /// directly into the A-stack, which doubles as the reply message ("the
    /// server places the results directly into the reply message",
    /// Section 3.5) — only out-of-band results pay marshaling.
    pub fn server_place_results(
        &mut self,
        proc: &CompiledProc,
        ret: Option<&Value>,
        outs: &[(usize, Value)],
        frame: &mut dyn Frame,
        oob: &mut OobStore,
    ) -> Result<(), StubError> {
        if let Some(ret_ty) = &proc.def.ret {
            let ret_slot = proc.layout.ret.as_ref().expect("layout has a ret slot");
            let v = ret.ok_or(StubError::MissingResult)?;
            let encoded = encode_vec(v, ret_ty)?;
            match ret_slot.kind {
                SlotKind::Inline => {
                    frame.write(ret_slot.offset, &encoded)?;
                }
                SlotKind::OutOfBand => {
                    self.charge_op(StubLang::Modula2Plus, encoded.len());
                    let id = oob.len() as u32;
                    let len = encoded.len() as u32;
                    oob.push(encoded);
                    self.write_oob_descriptor(frame, ret_slot.offset, id, len)?;
                }
            }
        }
        for (i, v) in outs {
            let param = &proc.def.params[*i];
            if !param.dir.is_out() {
                continue;
            }
            let slot = &proc.layout.params[*i];
            let encoded = encode_vec(v, &param.ty)?;
            match slot.kind {
                SlotKind::Inline => {
                    frame.write(slot.offset, &encoded)?;
                }
                SlotKind::OutOfBand => {
                    self.charge_op(StubLang::Modula2Plus, encoded.len());
                    let id = oob.len() as u32;
                    let len = encoded.len() as u32;
                    oob.push(encoded);
                    self.write_oob_descriptor(frame, slot.offset, id, len)?;
                }
            }
        }
        Ok(())
    }

    /// Client return half: copies returned values "from the A-stack into
    /// their final destination" (Section 3.5) — there is no intermediate
    /// copy.
    pub fn client_fetch_results(
        &mut self,
        proc: &CompiledProc,
        frame: &dyn Frame,
        oob: &OobStore,
    ) -> Result<FetchedResults, StubError> {
        let ret = match (&proc.def.ret, &proc.layout.ret) {
            (Some(ret_ty), Some(slot)) => Some(self.fetch_slot(proc, frame, oob, slot, ret_ty)?),
            _ => None,
        };
        let mut outs = Vec::new();
        for (i, param) in proc.def.params.iter().enumerate() {
            if param.dir.is_out() {
                let slot = &proc.layout.params[i];
                outs.push((i, self.fetch_slot(proc, frame, oob, slot, &param.ty)?));
            }
        }
        Ok((ret, outs))
    }

    fn fetch_slot(
        &mut self,
        proc: &CompiledProc,
        frame: &dyn Frame,
        oob: &OobStore,
        slot: &crate::layout::Slot,
        ty: &Ty,
    ) -> Result<Value, StubError> {
        match slot.kind {
            SlotKind::Inline => {
                let raw = frame.read(slot.offset, slot.size)?;
                self.charge_op(proc.lang, slot.size);
                let (v, _) = decode(&raw, ty)?;
                Ok(v)
            }
            SlotKind::OutOfBand => {
                let (id, len) = self.read_oob_descriptor(frame, slot.offset)?;
                let seg = oob
                    .get(id as usize)
                    .ok_or(StubError::OutOfBandMissing { id })?;
                if seg.len() < len as usize {
                    return Err(StubError::Wire(WireError::Truncated));
                }
                self.charge_op(StubLang::Modula2Plus, len as usize);
                let (v, _) = decode(&seg[..len as usize], ty)?;
                Ok(v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::stubgen::compile;
    use firefly::cpu::Machine;

    fn vm_env() -> (std::sync::Arc<Machine>, Meter) {
        (Machine::cvax_uniprocessor(), Meter::enabled())
    }

    fn compile_one(src: &str) -> crate::stubgen::CompiledInterface {
        compile(&parse(src).unwrap())
    }

    #[test]
    fn add_arguments_roundtrip_through_the_frame() {
        let iface = compile_one("interface B { procedure Add(a: int32, b: int32) -> int32; }");
        let proc = &iface.procs[0];
        let (machine, mut meter) = vm_env();
        let mut frame = LocalFrame::new(proc.layout.astack_size);
        let mut oob = OobStore::new();

        let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
        vm.client_push_args(
            proc,
            &[Value::Int32(3), Value::Int32(4)],
            &mut frame,
            &mut oob,
        )
        .unwrap();
        let args = vm.server_read_args(proc, &frame, &oob).unwrap();
        assert_eq!(args, vec![Value::Int32(3), Value::Int32(4)]);

        vm.server_place_results(proc, Some(&Value::Int32(7)), &[], &mut frame, &mut oob)
            .unwrap();
        let (ret, outs) = vm.client_fetch_results(proc, &frame, &oob).unwrap();
        assert_eq!(ret, Some(Value::Int32(7)));
        assert!(outs.is_empty());
    }

    #[test]
    fn data_op_costs_are_charged() {
        let iface = compile_one("interface B { procedure BigIn(data: bytes[200]); }");
        let proc = &iface.procs[0];
        let (machine, mut meter) = vm_env();
        let mut frame = LocalFrame::new(proc.layout.astack_size);
        let mut oob = OobStore::new();
        let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
        vm.client_push_args(proc, &[Value::Bytes(vec![5; 200])], &mut frame, &mut oob)
            .unwrap();
        let expected = machine.cost().per_arg_op + machine.cost().per_byte_copy * 200;
        assert_eq!(machine.cpu(0).now(), expected);
        assert_eq!(meter.total_for(Phase::ArgCopy), expected);
    }

    #[test]
    fn modula2_stubs_cost_four_times_more() {
        let fast = compile_one("interface B { procedure P(d: bytes[100]); }");
        let (machine, mut meter) = vm_env();
        {
            let mut frame = LocalFrame::new(fast.procs[0].layout.astack_size);
            let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
            vm.client_push_args(
                &fast.procs[0],
                &[Value::Bytes(vec![0; 100])],
                &mut frame,
                &mut OobStore::new(),
            )
            .unwrap();
        }
        let fast_cost = machine.cpu(0).now();

        // The same bytes through a complex-typed interface (gc blob).
        let slow = compile_one("interface B { procedure P(d: gc); }");
        machine.cpu(0).reset_clock();
        {
            let mut frame = LocalFrame::new(slow.procs[0].layout.astack_size);
            let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
            vm.client_push_args(
                &slow.procs[0],
                &[Value::Gc(vec![0; 100])],
                &mut frame,
                &mut OobStore::new(),
            )
            .unwrap();
        }
        let slow_cost = machine.cpu(0).now();
        let ratio = slow_cost.as_nanos() as f64 / fast_cost.as_nanos() as f64;
        assert!(
            (3.5..=4.5).contains(&ratio),
            "marshaling path must be about 4x: {ratio:.2}"
        );
    }

    #[test]
    fn nonconforming_cardinal_is_rejected_by_the_server_copy() {
        let iface = compile_one("interface B { procedure P(n: cardinal); }");
        let proc = &iface.procs[0];
        let (machine, mut meter) = vm_env();
        let mut frame = LocalFrame::new(proc.layout.astack_size);
        let mut oob = OobStore::new();
        let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
        vm.client_push_args(proc, &[Value::Cardinal(-5)], &mut frame, &mut oob)
            .unwrap();
        let err = vm.server_read_args(proc, &frame, &oob).unwrap_err();
        assert!(matches!(
            err,
            StubError::Wire(WireError::Conformance { .. })
        ));
    }

    #[test]
    fn out_of_band_values_travel_through_segments() {
        let iface = compile_one("interface B { procedure Send(pkt: var bytes[4096]); }");
        let proc = &iface.procs[0];
        assert!(proc.layout.uses_out_of_band);
        let (machine, mut meter) = vm_env();
        let mut frame = LocalFrame::new(proc.layout.astack_size);
        let mut oob = OobStore::new();
        let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
        let payload = vec![0xCD; 3000];
        vm.client_push_args(proc, &[Value::Var(payload.clone())], &mut frame, &mut oob)
            .unwrap();
        assert_eq!(oob.len(), 1);
        let args = vm.server_read_args(proc, &frame, &oob).unwrap();
        assert_eq!(args, vec![Value::Var(payload)]);
    }

    #[test]
    fn missing_oob_segment_is_detected() {
        let iface = compile_one("interface B { procedure Send(pkt: var bytes[4096]); }");
        let proc = &iface.procs[0];
        let (machine, mut meter) = vm_env();
        let mut frame = LocalFrame::new(proc.layout.astack_size);
        let mut oob = OobStore::new();
        let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
        vm.client_push_args(proc, &[Value::Var(vec![1; 2000])], &mut frame, &mut oob)
            .unwrap();
        let empty = OobStore::new();
        assert!(matches!(
            vm.server_read_args(proc, &frame, &empty),
            Err(StubError::OutOfBandMissing { id: 0 })
        ));
    }

    #[test]
    fn inout_parameters_return_updated_values() {
        let iface = compile_one("interface B { procedure Inc(x: inout int32); }");
        let proc = &iface.procs[0];
        let (machine, mut meter) = vm_env();
        let mut frame = LocalFrame::new(proc.layout.astack_size);
        let mut oob = OobStore::new();
        let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
        vm.client_push_args(proc, &[Value::Int32(41)], &mut frame, &mut oob)
            .unwrap();
        let args = vm.server_read_args(proc, &frame, &oob).unwrap();
        assert_eq!(args[0], Value::Int32(41));
        vm.server_place_results(proc, None, &[(0, Value::Int32(42))], &mut frame, &mut oob)
            .unwrap();
        let (ret, outs) = vm.client_fetch_results(proc, &frame, &oob).unwrap();
        assert_eq!(ret, None);
        assert_eq!(outs, vec![(0, Value::Int32(42))]);
    }

    #[test]
    fn wrong_arg_count_is_rejected() {
        let iface = compile_one("interface B { procedure P(a: int32); }");
        let (machine, mut meter) = vm_env();
        let mut frame = LocalFrame::new(16);
        let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
        assert!(matches!(
            vm.client_push_args(&iface.procs[0], &[], &mut frame, &mut OobStore::new()),
            Err(StubError::ArgCount {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn missing_declared_result_is_an_error() {
        let iface = compile_one("interface B { procedure F() -> int32; }");
        let (machine, mut meter) = vm_env();
        let mut frame = LocalFrame::new(16);
        let mut vm = StubVm::new(machine.cost(), machine.cpu(0), &mut meter);
        assert!(matches!(
            vm.server_place_results(&iface.procs[0], None, &[], &mut frame, &mut OobStore::new()),
            Err(StubError::MissingResult)
        ));
    }
}
