//! Pretty-printing of interface definitions.
//!
//! [`print_interface`] emits the concrete IDL syntax accepted by
//! [`crate::parse::parse`]; printing and re-parsing round-trips exactly,
//! which the property tests rely on. This is also what a "definition file
//! exporter" would emit when lifting interfaces out of an existing system.

use core::fmt::Write as _;

use crate::ast::{Dir, InterfaceDef, Param, ProcDef};

fn print_param(out: &mut String, p: &Param) {
    out.push_str(&p.name);
    out.push_str(": ");
    match p.dir {
        Dir::In => {} // The default; omitted for idiomatic output.
        Dir::Out => out.push_str("out "),
        Dir::InOut => out.push_str("inout "),
    }
    if p.by_ref {
        out.push_str("ref ");
    }
    let _ = write!(out, "{}", p.ty);
    if p.noninterpreted {
        out.push_str(" noninterpreted");
    }
}

fn print_proc(out: &mut String, p: &ProcDef) {
    if let Some(n) = p.astack_count {
        let _ = writeln!(out, "    [astacks = {n}]");
    }
    if let Some(n) = p.astack_size {
        let _ = writeln!(out, "    [astack_size = {n}]");
    }
    if p.idempotent {
        out.push_str("    [idempotent = 1]\n");
    }
    if p.inplace {
        out.push_str("    [inplace = 1]\n");
    }
    out.push_str("    procedure ");
    out.push_str(&p.name);
    out.push('(');
    for (i, param) in p.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        print_param(out, param);
    }
    out.push(')');
    if let Some(ret) = &p.ret {
        let _ = write!(out, " -> {ret}");
    }
    out.push_str(";\n");
}

/// Renders an interface definition in the concrete IDL syntax.
///
/// # Examples
///
/// ```
/// let src = "interface M { procedure Add(a: int32, b: int32) -> int32; }";
/// let iface = idl::parse(src).unwrap();
/// let printed = idl::print_interface(&iface);
/// assert_eq!(idl::parse(&printed).unwrap(), iface);
/// ```
pub fn print_interface(iface: &InterfaceDef) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "interface {} {{", iface.name);
    for p in &iface.procs {
        print_proc(&mut out, p);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::types::{ComplexKind, Ty};
    use proptest::prelude::*;

    #[test]
    fn prints_the_bench_interface() {
        let src = r#"
            interface Bench {
                procedure Null();
                [astacks = 8]
                procedure Write(h: int32, data: in ref bytes[1024] noninterpreted) -> int32;
                procedure Stat(p: var bytes[64]) -> record { size: int32, ok: bool };
                procedure Walk(t: out tree);
            }
        "#;
        let iface = parse(src).unwrap();
        let printed = print_interface(&iface);
        assert!(printed.contains("[astacks = 8]"));
        assert!(printed.contains("data: ref bytes[1024] noninterpreted"));
        assert!(printed.contains("t: out tree"));
        assert_eq!(parse(&printed).unwrap(), iface, "print/parse round-trip");
    }

    fn ident() -> impl Strategy<Value = String> {
        "[A-Za-z][A-Za-z0-9_]{0,8}".prop_map(|s| s)
    }

    fn arb_ty() -> impl Strategy<Value = Ty> {
        let leaf = prop_oneof![
            Just(Ty::Bool),
            Just(Ty::Byte),
            Just(Ty::Int16),
            Just(Ty::Int32),
            Just(Ty::Cardinal),
            (1usize..2048).prop_map(Ty::ByteArray),
            (1usize..2048).prop_map(Ty::VarBytes),
            Just(Ty::Complex(ComplexKind::LinkedList)),
            Just(Ty::Complex(ComplexKind::Tree)),
            Just(Ty::Complex(ComplexKind::GarbageCollected)),
        ];
        leaf.prop_recursive(2, 8, 3, |inner| {
            proptest::collection::vec((ident(), inner), 1..4)
                .prop_map(Ty::Record)
                .boxed()
        })
    }

    fn arb_param() -> impl Strategy<Value = Param> {
        (
            ident(),
            arb_ty(),
            prop_oneof![Just(Dir::In), Just(Dir::Out), Just(Dir::InOut)],
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(|(name, ty, dir, noninterpreted, by_ref)| Param {
                name,
                ty,
                dir,
                noninterpreted,
                by_ref,
            })
    }

    fn arb_iface() -> impl Strategy<Value = InterfaceDef> {
        let proc = (
            ident(),
            proptest::collection::vec(arb_param(), 0..4),
            proptest::option::of(arb_ty()),
            proptest::option::of(1u32..32),
            proptest::option::of(4usize..4096),
            (any::<bool>(), any::<bool>()),
        )
            .prop_map(
                |(name, params, ret, astacks, asize, (idempotent, inplace))| ProcDef {
                    name,
                    params,
                    ret,
                    astack_count: astacks,
                    astack_size: asize,
                    idempotent,
                    inplace,
                },
            );
        (ident(), proptest::collection::vec(proc, 1..6)).prop_map(|(name, mut procs)| {
            // The parser rejects duplicate procedure/parameter names, so
            // uniquify the generated ones by suffixing their index.
            for (i, p) in procs.iter_mut().enumerate() {
                p.name = format!("{}_{i}", p.name);
                for (j, param) in p.params.iter_mut().enumerate() {
                    param.name = format!("{}_{j}", param.name);
                }
            }
            InterfaceDef::new(name, procs)
        })
    }

    proptest! {
        #[test]
        fn print_parse_roundtrip(iface in arb_iface()) {
            let printed = print_interface(&iface);
            let reparsed = parse(&printed)
                .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{printed}")))?;
            prop_assert_eq!(reparsed, iface);
        }
    }
}
