//! Shared experiment scaffolding: benchmark environments and helpers.

use std::sync::Arc;

use firefly::cost::CostModel;
use firefly::cpu::Machine;
use firefly::time::Nanos;
use firefly::tlb::TlbMode;
use idl::wire::Value;
use kernel::kernel::Kernel;
use kernel::thread::Thread;
use kernel::Domain;
use lrpc::{Binding, CallError, CallOutcome, Handler, LrpcRuntime, Reply, ServerCtx, TestRuntime};
use msgrpc::{MsgHandler, MsgRpcCost, MsgRpcSystem, MsgServer};

/// The four Table 4 test procedures.
pub const BENCH_IDL: &str = r#"
    interface Bench {
        procedure Null();
        procedure Add(a: int32, b: int32) -> int32;
        procedure BigIn(data: in bytes[200] noninterpreted);
        procedure BigInOut(data: inout bytes[200] noninterpreted);
    }
"#;

/// The names and argument builders of the four tests.
pub fn four_tests() -> Vec<(&'static str, Vec<Value>)> {
    vec![
        ("Null", vec![]),
        ("Add", vec![Value::Int32(2), Value::Int32(3)]),
        ("BigIn", vec![Value::Bytes(vec![0xAB; 200])]),
        ("BigInOut", vec![Value::Bytes(vec![0xAB; 200])]),
    ]
}

/// Handlers for [`BENCH_IDL`].
pub fn lrpc_bench_handlers() -> Vec<Handler> {
    vec![
        Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())),
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
                return Err(CallError::ServerFault("bad types".into()));
            };
            Ok(Reply::value(Value::Int32(a + b)))
        }),
        Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())),
        Box::new(|_: &ServerCtx, args: &[Value]| Ok(Reply::none().with_out(0, args[0].clone()))),
    ]
}

/// Message-RPC handlers for [`BENCH_IDL`].
pub fn msg_bench_handlers() -> Vec<MsgHandler> {
    vec![
        Box::new(|_: &[Value]| Ok(Reply::none())),
        Box::new(|args: &[Value]| {
            let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
                return Err(CallError::ServerFault("bad types".into()));
            };
            Ok(Reply::value(Value::Int32(a + b)))
        }),
        Box::new(|_: &[Value]| Ok(Reply::none())),
        Box::new(|args: &[Value]| Ok(Reply::none().with_out(0, args[0].clone()))),
    ]
}

/// A ready-to-call LRPC environment.
pub struct LrpcEnv {
    /// The runtime.
    pub rt: Arc<LrpcRuntime>,
    /// Client domain.
    pub client: Arc<Domain>,
    /// Server domain.
    pub server: Arc<Domain>,
    /// Calling thread.
    pub thread: Arc<Thread>,
    /// The bench binding.
    pub binding: Binding,
}

impl LrpcEnv {
    /// Builds an environment on an `n_cpus` C-VAX Firefly.
    pub fn new(n_cpus: usize, domain_caching: bool) -> LrpcEnv {
        LrpcEnv::with_machine(
            Machine::new(n_cpus, CostModel::cvax_firefly()),
            domain_caching,
        )
    }

    /// Builds an environment on an explicit machine.
    pub fn with_machine(machine: Arc<Machine>, domain_caching: bool) -> LrpcEnv {
        let rt = TestRuntime::new()
            .machine(machine)
            .domain_caching(domain_caching)
            .build();
        let server = rt.kernel().create_domain("bench-server");
        rt.export(&server, BENCH_IDL, lrpc_bench_handlers())
            .expect("export");
        let client = rt.kernel().create_domain("bench-client");
        let thread = rt.kernel().spawn_thread(&client);
        let binding = rt.import(&client, "Bench").expect("import");
        LrpcEnv {
            rt,
            client,
            server,
            thread,
            binding,
        }
    }

    /// Builds a tagged-TLB environment (the Section 3.4 ablation).
    pub fn tagged_tlb(n_cpus: usize) -> LrpcEnv {
        LrpcEnv::with_machine(
            Machine::with_tlb_mode(n_cpus, CostModel::cvax_firefly(), TlbMode::Tagged),
            false,
        )
    }

    /// Steady-state metered call (one warmup first).
    pub fn steady_call(&self, proc: &str, args: &[Value]) -> CallOutcome {
        self.binding
            .call(0, &self.thread, proc, args)
            .expect("warmup");
        self.binding
            .call(0, &self.thread, proc, args)
            .expect("measured")
    }

    /// Steady-state latency.
    pub fn steady_latency(&self, proc: &str, args: &[Value]) -> Nanos {
        self.steady_call(proc, args).elapsed
    }

    /// Steady-state latency with the idle-processor optimization hitting
    /// on both transfers (requires `n_cpus >= 2` and `domain_caching`).
    pub fn steady_latency_mp(&self, proc: &str, args: &[Value]) -> Nanos {
        self.rt
            .kernel()
            .machine()
            .cpu(1)
            .set_idle_in(Some(self.server.ctx().id()));
        let w = self
            .binding
            .call(0, &self.thread, proc, args)
            .expect("warmup");
        let out = self
            .binding
            .call(w.end_cpu, &self.thread, proc, args)
            .expect("measured");
        assert!(
            out.exchanged_on_call && out.exchanged_on_return,
            "MP measurement requires both exchanges to hit"
        );
        out.elapsed
    }
}

/// A ready-to-call message-RPC environment.
pub struct MsgEnv {
    /// The system.
    pub system: Arc<MsgRpcSystem>,
    /// Client domain.
    pub client: Arc<Domain>,
    /// Calling thread.
    pub thread: Arc<Thread>,
    /// The bench server.
    pub server: Arc<MsgServer>,
}

impl MsgEnv {
    /// Builds an environment for one Table 2 system model.
    pub fn new(cost: MsgRpcCost) -> MsgEnv {
        let machine = Machine::new(1, CostModel::with_hw(cost.hw));
        let kernel = Kernel::new(machine);
        let system = MsgRpcSystem::new(kernel, cost);
        let server_domain = system.kernel().create_domain("msg-server");
        let server = system
            .export(&server_domain, BENCH_IDL, msg_bench_handlers(), 2)
            .unwrap();
        let client = system.kernel().create_domain("msg-client");
        let thread = system.kernel().spawn_thread(&client);
        MsgEnv {
            system,
            client,
            thread,
            server,
        }
    }

    /// Steady-state metered call.
    pub fn steady_call(&self, proc: &str, args: &[Value]) -> msgrpc::MsgCallOutcome {
        self.system
            .call(&self.client, &self.thread, &self.server, 0, proc, args)
            .expect("warmup");
        self.system
            .call(&self.client, &self.thread, &self.server, 0, proc, args)
            .expect("measured")
    }

    /// Steady-state latency.
    pub fn steady_latency(&self, proc: &str, args: &[Value]) -> Nanos {
        self.steady_call(proc, args).elapsed
    }
}

/// Serializes users of the process-wide flight recorder. Anything that
/// toggles [`obs::flight`] or captures spans by trace-id watermark (the
/// phase experiments, the record/replay drivers, their tests) holds this
/// lock for the whole toggle-run-snapshot window, so parallel tests can
/// neither interleave captures nor steal trace ids inside another
/// capture's watermark range.
pub fn flight_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Formats a simple aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", c, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}
