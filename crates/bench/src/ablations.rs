//! Ablations of LRPC's design choices.
//!
//! Each ablation flips one of the design decisions the paper argues for
//! and measures the consequence:
//!
//! * idle-processor domain caching on/off (Section 3.4);
//! * a process-tagged TLB versus invalidate-on-switch (Section 3.4);
//! * lazy A-stack/E-stack association versus static preallocation
//!   (Section 3.2's address-space argument);
//! * contiguous primary A-stacks versus overflow A-stacks (Section 5.2's
//!   validation fast path);
//! * `noninterpreted` annotations versus defensive server copies
//!   (Section 3.5).

use firefly::cost::CostModel;
use idl::wire::Value;
use lrpc::AStackPolicy;

use crate::common::LrpcEnv;

/// Domain caching on/off.
#[derive(Clone, Debug)]
pub struct CachingAblation {
    /// Serial Null (µs).
    pub serial_us: f64,
    /// Exchanged Null (µs).
    pub cached_us: f64,
    /// Saving (µs).
    pub saving_us: f64,
}

/// Measures the idle-processor optimization's effect on the Null call.
pub fn domain_caching() -> CachingAblation {
    let serial = LrpcEnv::new(1, false)
        .steady_latency("Null", &[])
        .as_micros_f64();
    let cached = LrpcEnv::new(2, true)
        .steady_latency_mp("Null", &[])
        .as_micros_f64();
    CachingAblation {
        serial_us: serial,
        cached_us: cached,
        saving_us: serial - cached,
    }
}

/// Renders the caching ablation.
pub fn render_domain_caching(a: &CachingAblation) -> String {
    format!(
        "Ablation: idle-processor domain caching\n\
         serial Null:    {:.0}us (two context switches)\n\
         exchanged Null: {:.0}us (two processor exchanges)\n\
         saving: {:.0}us per call (paper: 157 -> 125)\n",
        a.serial_us, a.cached_us, a.saving_us
    )
}

/// Tagged-TLB ablation.
#[derive(Clone, Debug)]
pub struct TaggedTlbAblation {
    /// Misses per Null call, invalidate-on-switch.
    pub untagged_misses: u64,
    /// Misses per Null call, tagged TLB.
    pub tagged_misses: u64,
    /// Refill time avoided (µs).
    pub saving_us: f64,
    /// Estimated Null with a tagged TLB (µs).
    pub estimated_null_us: f64,
}

/// Measures the TLB misses a process-tagged TLB would avoid.
///
/// "The high cost of frequent domain crossing can also be reduced by
/// using a TLB that includes a process tag." The measured per-phase costs
/// include refill time, so the tagged estimate subtracts the avoided
/// refills; the mapping-register reload itself remains ("a single-
/// processor domain switch still requires that hardware mapping registers
/// be modified on the critical transfer path").
pub fn tagged_tlb() -> TaggedTlbAblation {
    let untagged = LrpcEnv::new(1, false);
    let tagged = LrpcEnv::tagged_tlb(1);
    // Extra warmup so both TLBs reach steady state.
    for env in [&untagged, &tagged] {
        env.binding.call(0, &env.thread, "Null", &[]).unwrap();
        env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    }
    let u = untagged
        .binding
        .call(0, &untagged.thread, "Null", &[])
        .unwrap();
    let t = tagged.binding.call(0, &tagged.thread, "Null", &[]).unwrap();
    let miss_cost = CostModel::cvax_firefly().hw.tlb_miss.as_micros_f64();
    let saving = (u.meter.tlb_misses().saturating_sub(t.meter.tlb_misses())) as f64 * miss_cost;
    TaggedTlbAblation {
        untagged_misses: u.meter.tlb_misses(),
        tagged_misses: t.meter.tlb_misses(),
        saving_us: saving,
        estimated_null_us: u.elapsed.as_micros_f64() - saving,
    }
}

/// Renders the tagged-TLB ablation.
pub fn render_tagged_tlb(a: &TaggedTlbAblation) -> String {
    format!(
        "Ablation: process-tagged TLB\n\
         invalidate-on-switch: {} misses per Null call\n\
         tagged:               {} misses per Null call\n\
         refill time avoided: {:.1}us -> estimated Null {:.0}us \
         (register reload still required on the transfer path)\n",
        a.untagged_misses, a.tagged_misses, a.saving_us, a.estimated_null_us
    )
}

/// E-stack management ablation.
#[derive(Clone, Debug)]
pub struct EStackAblation {
    /// A-stacks allocated by the binding.
    pub astacks: usize,
    /// E-stacks a static one-per-A-stack scheme would allocate.
    pub static_estacks: usize,
    /// E-stacks the lazy scheme actually allocated after the workload.
    pub lazy_estacks: usize,
    /// Bytes of server address space each scheme consumes.
    pub static_bytes: usize,
    /// Bytes under the lazy scheme.
    pub lazy_bytes: usize,
    /// Calls that reused an existing association.
    pub lazy_hits: u64,
}

/// Measures lazy E-stack association against static preallocation.
pub fn estack_management() -> EStackAblation {
    let env = LrpcEnv::new(1, false);
    // A serial workload over all four procedures: LIFO A-stack reuse means
    // very few E-stacks are ever needed.
    for _ in 0..50 {
        for (proc, args) in crate::common::four_tests() {
            env.binding.call(0, &env.thread, proc, &args).unwrap();
        }
    }
    let pool = env.rt.estack_pool(&env.server);
    let stats = pool.stats();
    let astacks = env.binding.state().astacks.total_count();
    let estack_size = pool.estack_size();
    EStackAblation {
        astacks,
        static_estacks: astacks,
        lazy_estacks: stats.allocated,
        static_bytes: astacks * estack_size,
        lazy_bytes: stats.allocated * estack_size,
        lazy_hits: stats.lazy_hits,
    }
}

/// Renders the E-stack ablation.
pub fn render_estack(a: &EStackAblation) -> String {
    format!(
        "Ablation: lazy E-stack association vs static preallocation\n\
         binding allocates {} A-stacks; static E-stack allocation would pin {} E-stacks \
         ({} KiB of server address space)\n\
         lazy association allocated {} E-stack(s) ({} KiB), {} calls reused an association\n\
         (paper: \"E-stacks can be large (tens of kilobytes) and must be managed \
         conservatively; otherwise a server's address space could be exhausted\")\n",
        a.astacks,
        a.static_estacks,
        a.static_bytes / 1024,
        a.lazy_estacks,
        a.lazy_bytes / 1024,
        a.lazy_hits
    )
}

/// Contiguous vs overflow A-stack validation.
#[derive(Clone, Debug)]
pub struct ValidationAblation {
    /// Null latency through a primary (contiguous) A-stack (µs).
    pub primary_us: f64,
    /// Null latency through an overflow A-stack (µs).
    pub overflow_us: f64,
}

/// Measures the slower validation path of non-contiguous A-stacks.
pub fn astack_validation() -> ValidationAblation {
    // Primary path.
    let env = LrpcEnv::new(1, false);
    let primary = env.steady_latency("Null", &[]).as_micros_f64();

    // Overflow path: a one-A-stack procedure with the Grow policy, with
    // the primary stack held so every call lands on an overflow stack.
    use lrpc::{Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx};
    let kernel = kernel::kernel::Kernel::new(firefly::cpu::Machine::cvax_uniprocessor());
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            astack_policy: AStackPolicy::Grow,
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("s");
    rt.export(
        &server,
        "interface One { [astacks = 1] procedure P(); }",
        vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "One").unwrap();
    let _held = binding
        .state()
        .astacks
        .acquire(0, AStackPolicy::Fail, rt.kernel(), &client, &server)
        .unwrap();
    binding.call(0, &thread, "P", &[]).unwrap();
    let overflow = binding
        .call(0, &thread, "P", &[])
        .unwrap()
        .elapsed
        .as_micros_f64();
    ValidationAblation {
        primary_us: primary,
        overflow_us: overflow,
    }
}

/// Renders the validation ablation.
pub fn render_validation(a: &ValidationAblation) -> String {
    format!(
        "Ablation: contiguous vs overflow A-stack validation\n\
         primary (range check): {:.0}us\n\
         overflow (table look-up): {:.0}us (+{:.0}us — \"slightly more time to validate\")\n",
        a.primary_us,
        a.overflow_us,
        a.overflow_us - a.primary_us
    )
}

/// `noninterpreted` annotation ablation.
#[derive(Clone, Debug)]
pub struct CopyAblation {
    /// 200-byte call with `noninterpreted` data (µs).
    pub noninterpreted_us: f64,
    /// 200-byte call with interpreted data (defensive copy) (µs).
    pub interpreted_us: f64,
    /// Copy letters observed for each.
    pub letters: (String, String),
}

/// Measures the cost of the defensive server copy that `noninterpreted`
/// arguments avoid.
pub fn noninterpreted_copy() -> CopyAblation {
    use lrpc::{Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx};
    let kernel = kernel::kernel::Kernel::new(firefly::cpu::Machine::cvax_uniprocessor());
    let rt = LrpcRuntime::with_config(
        kernel,
        RuntimeConfig {
            domain_caching: false,
            ..RuntimeConfig::default()
        },
    );
    let server = rt.kernel().create_domain("s");
    rt.export(
        &server,
        r#"interface W {
            procedure WriteRaw(data: in var bytes[200] noninterpreted);
            procedure WriteChecked(data: in var bytes[200]);
        }"#,
        vec![
            Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler,
            Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler,
        ],
    )
    .unwrap();
    let client = rt.kernel().create_domain("c");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "W").unwrap();
    let args = vec![Value::Var(vec![7; 200])];
    let steady = |proc: &str| {
        binding.call(0, &thread, proc, &args).unwrap();
        binding.call(0, &thread, proc, &args).unwrap()
    };
    let raw = steady("WriteRaw");
    let checked = steady("WriteChecked");
    CopyAblation {
        noninterpreted_us: raw.elapsed.as_micros_f64(),
        interpreted_us: checked.elapsed.as_micros_f64(),
        letters: (raw.copies.letters_string(), checked.copies.letters_string()),
    }
}

/// Renders the copy ablation.
pub fn render_noninterpreted(a: &CopyAblation) -> String {
    format!(
        "Ablation: noninterpreted annotation (Section 3.5's Write example)\n\
         noninterpreted 200-byte write: {:.0}us (copies: {})\n\
         interpreted 200-byte write:    {:.0}us (copies: {}, defensive server copy)\n\
         the annotation saves {:.0}us per call\n",
        a.noninterpreted_us,
        a.letters.0,
        a.interpreted_us,
        a.letters.1,
        a.interpreted_us - a.noninterpreted_us
    )
}

/// Pairwise vs globally-shared A-stack mapping.
#[derive(Clone, Debug)]
pub struct MappingAblation {
    /// Null latency with pairwise mapping (µs).
    pub pairwise_us: f64,
    /// Null latency with globally-shared mapping (µs).
    pub global_us: f64,
    /// Whether a third-party domain can read the channel under each mode.
    pub pairwise_exposed: bool,
    /// See `pairwise_exposed`.
    pub global_exposed: bool,
}

/// Measures the Section 3.5 Firefly caveat: globally-shared A-stacks have
/// "identical performance, but \[less\] safety" than pairwise mapping.
pub fn astack_mapping() -> MappingAblation {
    use lrpc::{AStackMapping, Handler, LrpcRuntime, Reply, RuntimeConfig, ServerCtx};
    let run = |mapping: AStackMapping| {
        let rt = LrpcRuntime::with_config(
            kernel::kernel::Kernel::new(firefly::cpu::Machine::cvax_uniprocessor()),
            RuntimeConfig {
                domain_caching: false,
                astack_mapping: mapping,
                ..RuntimeConfig::default()
            },
        );
        let server = rt.kernel().create_domain("s");
        rt.export(
            &server,
            "interface M { procedure P(); }",
            vec![Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::none())) as Handler],
        )
        .expect("export");
        let snoop = rt.kernel().create_domain("snoop");
        let client = rt.kernel().create_domain("c");
        let thread = rt.kernel().spawn_thread(&client);
        let binding = rt.import(&client, "M").expect("import");
        binding.call(0, &thread, "P", &[]).expect("warmup");
        let elapsed = binding.call(0, &thread, "P", &[]).expect("call").elapsed;
        let exposed = snoop
            .ctx()
            .check(binding.state().astacks.primary_region().id(), false, false)
            .is_ok();
        (elapsed.as_micros_f64(), exposed)
    };
    let (pairwise_us, pairwise_exposed) = run(AStackMapping::Pairwise);
    let (global_us, global_exposed) = run(AStackMapping::GloballyShared);
    MappingAblation {
        pairwise_us,
        global_us,
        pairwise_exposed,
        global_exposed,
    }
}

/// Renders the mapping ablation.
pub fn render_astack_mapping(a: &MappingAblation) -> String {
    format!(
        "Ablation: pairwise vs globally-shared A-stack mapping (Section 3.5)\n\
         pairwise:        Null {:.0}us, channel readable by third parties: {}\n\
         globally shared: Null {:.0}us, channel readable by third parties: {}\n\
         \"identical performance, but greater safety\" for the pairwise design\n",
        a.pairwise_us, a.pairwise_exposed, a.global_us, a.global_exposed
    )
}

/// Runs every ablation and concatenates the reports.
pub fn all() -> String {
    let mut out = String::new();
    out.push_str(&render_domain_caching(&domain_caching()));
    out.push('\n');
    out.push_str(&render_tagged_tlb(&tagged_tlb()));
    out.push('\n');
    out.push_str(&render_estack(&estack_management()));
    out.push('\n');
    out.push_str(&render_validation(&astack_validation()));
    out.push('\n');
    out.push_str(&render_noninterpreted(&noninterpreted_copy()));
    out.push('\n');
    out.push_str(&render_astack_mapping(&astack_mapping()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_saves_32_microseconds() {
        let a = domain_caching();
        assert_eq!(a.serial_us.round() as u64, 157);
        assert_eq!(a.cached_us.round() as u64, 125);
        assert_eq!(a.saving_us.round() as u64, 32);
    }

    #[test]
    fn tagged_tlb_eliminates_steady_state_misses() {
        let a = tagged_tlb();
        assert_eq!(a.untagged_misses, 43);
        assert_eq!(
            a.tagged_misses, 0,
            "tagged entries survive context switches"
        );
        assert!((a.saving_us - 38.7).abs() < 0.5);
        assert!(a.estimated_null_us < 120.0);
    }

    #[test]
    fn lazy_estacks_use_a_fraction_of_static_space() {
        let a = estack_management();
        assert!(
            a.astacks >= 10,
            "four procedures x five A-stacks, shared classes"
        );
        assert!(
            a.lazy_estacks <= 4,
            "serial LIFO reuse needs few E-stacks: {}",
            a.lazy_estacks
        );
        assert!(a.lazy_bytes * 4 <= a.static_bytes);
        assert!(a.lazy_hits > 150);
    }

    #[test]
    fn overflow_validation_costs_three_microseconds_more() {
        let a = astack_validation();
        assert_eq!((a.overflow_us - a.primary_us).round() as i64, 3);
    }

    #[test]
    fn mapping_modes_perform_identically() {
        let a = astack_mapping();
        assert_eq!(a.pairwise_us, a.global_us);
        assert!(!a.pairwise_exposed);
        assert!(a.global_exposed);
    }

    #[test]
    fn noninterpreted_saves_the_defensive_copy() {
        let a = noninterpreted_copy();
        assert_eq!(a.letters.0, "A");
        assert_eq!(a.letters.1, "AE");
        let saving = a.interpreted_us - a.noninterpreted_us;
        // One stub op plus ~204 encoded bytes at 0.165 us/byte.
        assert!((30.0..=40.0).contains(&saving), "saving {saving}");
    }
}
