//! Batched-call benchmark: the submission/completion ring's doorbell
//! amortization, swept over batch size.
//!
//! A serial LRPC pays two kernel traps (call and return) plus two kernel
//! transfers and two context switches on *every* call. The call ring
//! moves exactly those crossing phases onto a batch-shared meter: the
//! client enqueues N descriptors, rings one doorbell (one trap), the
//! server drains the whole ring per wakeup, and one return trap carries
//! all N completions back. Per-call work — stub interpretation, argument
//! copies, dispatch — is untouched and charges bit-identically to the
//! serial path; what each call gains is its share of the crossing, at the
//! price of three lock-free ring-descriptor operations (enqueue, drain,
//! reap).
//!
//! Two things are measured per batch size:
//!
//! * **Virtual ns/call**: the simulated cost model's time for one
//!   steady-state batch, divided by its size. This is the honest Table-5
//!   quantity the gate pins: at batch 16 the ring must beat a batch of 1
//!   by at least [`MIN_SPEEDUP`]× (it lands near 4× on the C-VAX model).
//! * **Host calls/sec**: wall-clock throughput of the same batches on the
//!   host, reported for trend-watching but not gated — the host runs a
//!   simulator, so its clock does not measure trap amortization.
//!
//! Every sweep point also re-asserts the batching contract: exactly one
//! `Phase::Trap` charge per doorbell/return trap on the shared meter,
//! zero amortized phases on any per-call meter, and per-call copy logs
//! and phase charges bit-identical to a steady-state serial call.

use std::sync::Arc;
use std::time::Instant;

use firefly::cost::CostModel;
use firefly::meter::Phase;
use firefly::time::Nanos;
use idl::wire::Value;
use kernel::thread::Thread;
use lrpc::{Binding, CallOutcome, Handler, Reply, ServerCtx, TestRuntime};

/// Default timed batch rounds per sweep point.
pub const DEFAULT_ITERS: usize = 200;

/// Virtual-throughput floor the gate enforces at [`GATE_BATCH`].
pub const MIN_SPEEDUP: f64 = 2.0;

/// Batch size at which the speedup gate applies.
pub const GATE_BATCH: usize = 16;

/// The batch-size sweep; 64 fills the submission ring exactly.
pub const BATCHES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The crossing phases the ring amortizes onto the batch-shared meter.
const AMORTIZED: [Phase; 4] = [
    Phase::Trap,
    Phase::KernelTransfer,
    Phase::ContextSwitch,
    Phase::ProcessorExchange,
];

const BATCH_IDL: &str = r#"
    interface BatchBench {
        [astacks = 64] procedure Add(a: int32, b: int32) -> int32;
    }
"#;

/// One batch-size point of the sweep.
#[derive(Clone, Debug)]
pub struct BatchPoint {
    /// Calls per doorbell.
    pub batch: usize,
    /// Virtual ns one call costs inside a steady-state batch of this size.
    pub virtual_ns_per_call: u64,
    /// Virtual throughput gain over the batch-of-1 baseline.
    pub speedup: f64,
    /// Host ns per call across the timed rounds (best round).
    pub host_ns_per_call: f64,
    /// Host calls per second (best round).
    pub calls_per_sec: f64,
    /// Doorbell traps one steady-state batch rang.
    pub doorbells: u64,
    /// Kernel traps one steady-state batch paid in total.
    pub traps: u64,
}

/// The full batch-size sweep.
#[derive(Clone, Debug)]
pub struct BatchBenchReport {
    /// Virtual ns of one steady-state *serial* call, for reference: the
    /// pre-ring cost every batched call is amortizing away from.
    pub serial_virtual_ns: u64,
    /// Per-batch-size measurements.
    pub points: Vec<BatchPoint>,
}

impl BatchBenchReport {
    /// The acceptance gate: at [`GATE_BATCH`] calls per doorbell the ring
    /// must deliver at least [`MIN_SPEEDUP`]× the virtual throughput of a
    /// batch of 1. (The per-call phase/copy identity and the
    /// one-trap-per-doorbell accounting are asserted inside [`run`].)
    pub fn passes(&self) -> bool {
        self.gate_failures().is_empty()
    }

    /// Every gate violation, human-readable.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for p in &self.points {
            if p.batch >= GATE_BATCH && p.speedup < MIN_SPEEDUP {
                problems.push(format!(
                    "batch {}: only {:.2}x the virtual throughput of batch 1 \
                     (gate {MIN_SPEEDUP}x)",
                    p.batch, p.speedup
                ));
            }
        }
        problems
    }
}

struct BatchEnv {
    thread: Arc<Thread>,
    binding: Binding,
}

fn env() -> BatchEnv {
    let rt = TestRuntime::new().domain_caching(false).build();
    let server = rt.kernel().create_domain("batch-server");
    rt.export(
        &server,
        BATCH_IDL,
        vec![Box::new(|_: &ServerCtx, args: &[Value]| {
            let (Value::Int32(a), Value::Int32(b)) = (&args[0], &args[1]) else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(a.wrapping_add(*b))))
        }) as Handler],
    )
    .expect("export");
    let client = rt.kernel().create_domain("batch-client");
    let thread = rt.kernel().spawn_thread(&client);
    let binding = rt.import(&client, "BatchBench").expect("import");
    BatchEnv { thread, binding }
}

fn requests(n: usize) -> Vec<(usize, Vec<Value>)> {
    // Every call is the same Add so each per-call meter and copy log can
    // be compared against the one steady-state serial call directly.
    (0..n)
        .map(|_| (0usize, vec![Value::Int32(0), Value::Int32(7)]))
        .collect()
}

/// Pins the contract one steady-state batch must honor against one
/// steady-state serial call.
fn assert_contract(hw: &CostModel, serial: &CallOutcome, out: &lrpc::BatchOutcome, batch: usize) {
    assert_eq!(
        out.degraded, 0,
        "batch {batch}: steady state must not degrade"
    );
    assert_eq!(out.doorbells, 1, "batch {batch}: one doorbell per flush");
    assert_eq!(out.traps, 2, "batch {batch}: doorbell trap + return trap");
    assert_eq!(
        out.batch_meter.total_for(Phase::Trap),
        hw.hw.kernel_trap * out.traps,
        "batch {batch}: the shared meter must charge exactly one \
         Phase::Trap per trap"
    );
    for (i, r) in out.results.iter().enumerate() {
        let o = r
            .as_ref()
            .unwrap_or_else(|e| panic!("batch {batch} call {i}: {e}"));
        assert_eq!(o.ret, serial.ret, "batch {batch} call {i}: result differs");
        assert_eq!(
            format!("{:?}", o.copies),
            format!("{:?}", serial.copies),
            "batch {batch} call {i}: per-call copy log differs from serial"
        );
        for phase in Phase::ALL {
            if AMORTIZED.contains(&phase) {
                assert_eq!(
                    o.meter.total_for(phase),
                    Nanos::ZERO,
                    "batch {batch} call {i}: charged amortized phase {phase:?}"
                );
            } else {
                assert_eq!(
                    o.meter.total_for(phase),
                    serial.meter.total_for(phase),
                    "batch {batch} call {i}: phase {phase:?} diverged from serial"
                );
            }
        }
    }
}

/// Runs the batch-size sweep.
///
/// Panics if any sweep point breaks the batching contract: more than one
/// trap per doorbell plus one per return, any amortized phase charged on
/// a per-call meter, or any per-call phase/copy divergence from a
/// steady-state serial call.
pub fn run(iters: usize) -> BatchBenchReport {
    let hw = CostModel::cvax_firefly();

    // The serial baseline, steady state (second call: E-stack allocated,
    // TLB warm).
    let serial_env = env();
    let serial_args = [Value::Int32(0), Value::Int32(7)];
    serial_env
        .binding
        .call(0, &serial_env.thread, "Add", &serial_args)
        .expect("serial warm-up");
    let serial = serial_env
        .binding
        .call(0, &serial_env.thread, "Add", &serial_args)
        .expect("serial measured");
    let serial_virtual_ns = serial.elapsed.as_nanos();

    let mut points = Vec::new();
    let mut baseline_ns = 0u64;
    for batch in BATCHES {
        // A fresh environment per point keeps every measurement at the
        // same steady state: warm once (allocates the batch's E-stacks
        // and warms its A-stack pages), then measure.
        let e = env();
        e.binding
            .call_batch(0, &e.thread, requests(batch))
            .expect("batch warm-up");
        let out = e
            .binding
            .call_batch(0, &e.thread, requests(batch))
            .expect("batch measured");
        assert_contract(&hw, &serial, &out, batch);
        let virtual_ns_per_call = out.elapsed.as_nanos() / batch as u64;
        if batch == 1 {
            baseline_ns = virtual_ns_per_call;
        }

        // Host wall clock: best of 5 rounds of `iters` batches.
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..iters {
                e.binding
                    .call_batch(0, &e.thread, requests(batch))
                    .expect("timed batch");
            }
            let per_call = start.elapsed().as_secs_f64() * 1e9 / (iters * batch) as f64;
            best = best.min(per_call);
        }

        points.push(BatchPoint {
            batch,
            virtual_ns_per_call,
            speedup: baseline_ns as f64 / virtual_ns_per_call as f64,
            host_ns_per_call: best,
            calls_per_sec: 1e9 / best,
            doorbells: out.doorbells,
            traps: out.traps,
        });
    }
    BatchBenchReport {
        serial_virtual_ns,
        points,
    }
}

/// Renders the report.
pub fn render(r: &BatchBenchReport) -> String {
    let mut out = format!(
        "Call-ring doorbell batching (serial call: {} virtual ns)\n\
         batch  virt-ns/call  speedup  host-ns/call  calls/sec  doorbells  traps\n\
         ----------------------------------------------------------------------\n",
        r.serial_virtual_ns
    );
    for p in &r.points {
        out.push_str(&format!(
            "{:>5} {:>13} {:>7.2}x {:>13.0} {:>10.0} {:>10} {:>6}\n",
            p.batch,
            p.virtual_ns_per_call,
            p.speedup,
            p.host_ns_per_call,
            p.calls_per_sec,
            p.doorbells,
            p.traps
        ));
    }
    for f in r.gate_failures() {
        out.push_str(&format!("GATE: {f}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_honors_the_contract_and_the_gate() {
        // A tiny run exercises the contract assertions inside `run` on
        // every sweep point; the virtual-time gate is deterministic, so
        // it must already hold here.
        let r = run(1);
        assert_eq!(r.points.len(), BATCHES.len());
        assert!(r.passes(), "virtual gate failed: {:?}", r.gate_failures());
        // Amortization is monotone in this sweep: bigger batches never
        // cost more per call.
        for w in r.points.windows(2) {
            assert!(w[1].virtual_ns_per_call <= w[0].virtual_ns_per_call);
        }
        // And the batch-of-1 ring call costs more than a serial call
        // (ring ops are not free) — the win is amortization, not magic.
        assert!(r.points[0].virtual_ns_per_call >= r.serial_virtual_ns);
    }
}
