//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p bench --bin tables            # everything
//! cargo run -p bench --bin tables -- table4  # one experiment
//! ```
//!
//! Experiments: `table1`, `figure1`, `sec22`, `table2`, `table3`,
//! `table4`, `table5`, `figure2`, `stubs`, `locking`, `ablations`.

use bench::ablations;
use bench::experiments as exp;

fn run_fmt(name: &str, csv: bool) -> Option<String> {
    if csv {
        let out = match name {
            "figure1" => exp::render_figure1_csv(&exp::figure1()),
            "figure2" => exp::render_figure2_csv(&exp::figure2()),
            "registers" => exp::render_registers_csv(&exp::registers()),
            "sensitivity" => exp::render_sensitivity_csv(&exp::sensitivity()),
            _ => return None,
        };
        return Some(out);
    }
    let out = match name {
        "table1" => exp::render_table1(&exp::table1()),
        "figure1" => exp::render_figure1(&exp::figure1()),
        "sec22" => exp::render_sec22(&exp::sec22()),
        "table2" => exp::render_table2(&exp::table2()),
        "table3" => exp::render_table3(&exp::table3()),
        "table4" => exp::render_table4(&exp::table4()),
        "table5" => exp::render_table5(&exp::table5()),
        "figure2" => exp::render_figure2(&exp::figure2()),
        // Three-way stub comparison: the section-3.3 virtual-time claim
        // (assembly vs Modula2+ marshaling) plus the host-speed split of
        // the assembly side into interpreter vs bind-time compiled plans.
        "stubs" => format!(
            "{}\n{}",
            exp::render_stubs(&exp::stubs()),
            bench::stubs::render(&bench::stubs::run(10_000))
        ),
        "locking" => exp::render_locking(&exp::locking()),
        "registers" => exp::render_registers(&exp::registers()),
        "replay" => exp::render_replay(&exp::replay(2_000)),
        "blended" => exp::render_blended(&exp::blended(2_000)),
        "coalescing" => exp::render_coalescing(&exp::coalescing()),
        "sensitivity" => exp::render_sensitivity(&exp::sensitivity()),
        "ablations" => ablations::all(),
        _ => return None,
    };
    Some(out)
}

const ALL: &[&str] = &[
    "table1",
    "figure1",
    "sec22",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure2",
    "stubs",
    "locking",
    "registers",
    "replay",
    "blended",
    "coalescing",
    "sensitivity",
    "ablations",
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    args.retain(|a| a != "--csv");
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    if !csv {
        println!("Lightweight Remote Procedure Call (SOSP 1989) — reproduction report");
        println!("====================================================================\n");
    }
    let mut failed = false;
    for name in &selected {
        match run_fmt(name, csv) {
            Some(report) => {
                println!("{report}");
            }
            None => {
                if csv {
                    eprintln!("experiment `{name}` has no CSV form (figure1, figure2, registers, sensitivity do)");
                } else {
                    eprintln!("unknown experiment `{name}`; known: {}", ALL.join(", "));
                }
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
