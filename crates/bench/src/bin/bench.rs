//! `bench` — runs the host-parallel Figure-2 experiment and persists the
//! measured trajectory.
//!
//! ```text
//! bench [--calls N] [--threads K]    run the sweep; append one entry to
//!                                    BENCH_throughput.json and
//!                                    BENCH_latency.json at the repo root
//! bench --phases [--check]           flight-record a Null call and print
//!                                    its Table-5 phase breakdown diffed
//!                                    against the cost model; with
//!                                    --check, exit non-zero if the total
//!                                    drifts >1% or the recorder adds >5%
//!                                    virtual time
//! bench --validate FILE...           check that each file is a
//!                                    well-formed BENCH trajectory
//! ```
//!
//! Each run *appends* to the `trajectory` array of both files, so the
//! repo accumulates a measured history keyed by git revision; CI
//! validates the files on every push. Every entry also carries the
//! flight-recorded phase breakdown of a serial Null call and the host
//! wall-clock time of the whole sweep.

use std::process::ExitCode;

use bench::batch;
use bench::bulk;
use bench::host_parallel;
use bench::json::Json;
use bench::phases;
use bench::rr;
use bench::stubs;

const THROUGHPUT_SCHEMA: &str = "lrpc-bench-throughput/v1";
const LATENCY_SCHEMA: &str = "lrpc-bench-latency/v1";
const STUBS_SCHEMA: &str = "lrpc-bench-stubs/v1";
const BULK_SCHEMA: &str = "lrpc-bench-bulk/v1";
const BATCH_SCHEMA: &str = "lrpc-bench-batch/v1";

fn usage() -> ! {
    eprintln!(
        "usage: bench [--calls N] [--threads K]\n       \
         bench --phases [--check]\n       \
         bench --stubs [--check]\n       \
         bench --bulk [--check]\n       \
         bench --batch [--check]\n       \
         bench --record FILE [--scenario chaos|fig2|batch] [--seed N] [--rcalls N]\n       \
         bench --replay FILE [--check]\n       \
         bench --rr-overhead [--rcalls N] [--check]\n       \
         bench --shrink [--seed N] [--rcalls N]\n       \
         bench --validate FILE..."
    );
    std::process::exit(2);
}

fn git_output(args: &[&str]) -> Option<String> {
    let out = std::process::Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let text = text.trim();
    if text.is_empty() {
        None
    } else {
        Some(text.to_string())
    }
}

/// The repo root (so the BENCH files land in a fixed place no matter the
/// working directory), falling back to `.` outside a checkout.
fn repo_root() -> std::path::PathBuf {
    git_output(&["rev-parse", "--show-toplevel"])
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."))
}

fn git_rev() -> String {
    git_output(&["rev-parse", "--short=12", "HEAD"]).unwrap_or_else(|| "unknown".to_string())
}

/// Loads an existing trajectory file, or starts a fresh document.
fn load_or_init(path: &std::path::Path, schema: &str, experiment: &str) -> Json {
    match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!(
                    "bench: {} exists but is not valid JSON ({e}); starting fresh",
                    path.display()
                );
                init_doc(schema, experiment)
            }
        },
        Err(_) => init_doc(schema, experiment),
    }
}

fn init_doc(schema: &str, experiment: &str) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(schema.into())),
        ("experiment".into(), Json::Str(experiment.into())),
        ("trajectory".into(), Json::Arr(Vec::new())),
    ])
}

fn push_entry(doc: &mut Json, entry: Json) {
    if let Json::Obj(members) = doc {
        for (k, v) in members.iter_mut() {
            if k == "trajectory" {
                if let Json::Arr(items) = v {
                    items.push(entry);
                    return;
                }
            }
        }
        members.push(("trajectory".into(), Json::Arr(vec![entry])));
    }
}

/// Runs the flight-recorder replay; with `check`, the exit code reflects
/// the drift and overhead gates.
fn run_phases(check: bool) -> ExitCode {
    let t = phases::run_null_flight();
    print!("{}", phases::render(&t));
    if check && !t.passes() {
        eprintln!(
            "bench: phase check failed (drift {:.3}% > {:.0}% or overhead {:.3}% > {:.0}%)",
            t.total_drift * 100.0,
            phases::MAX_TOTAL_DRIFT * 100.0,
            t.recorder_overhead * 100.0,
            phases::MAX_RECORDER_OVERHEAD * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Runs the interpreter-vs-compiled-plan stub comparison, appends the
/// measurements to `BENCH_stubs.json`, and (with `check`) fails on any
/// gate violation: <2x host speedup on `Null`/`BigIn`, a virtual-cost
/// mismatch (asserted inside the run), or a §3.3 ratio off the paper's 4x.
fn run_stubs(check: bool) -> ExitCode {
    let report = stubs::run(stubs::DEFAULT_ITERS);
    print!("{}", stubs::render(&report));

    let classes: Vec<Json> = report
        .classes
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("name".into(), Json::Str(c.name.into())),
                ("interpreted_ns".into(), Json::Num(c.interpreted_ns)),
                ("compiled_ns".into(), Json::Num(c.compiled_ns)),
                ("speedup".into(), Json::Num(c.speedup)),
                ("virtual_ns".into(), Json::Num(c.virtual_ns as f64)),
            ])
        })
        .collect();
    let entry = Json::Obj(vec![
        ("git_rev".into(), Json::Str(git_rev())),
        ("experiment".into(), Json::Str("stub-compilation".into())),
        ("classes".into(), Json::Arr(classes)),
        ("assembly_us".into(), Json::Num(report.assembly_us)),
        ("modula2_us".into(), Json::Num(report.modula2_us)),
        ("ratio".into(), Json::Num(report.ratio)),
    ]);
    let path = repo_root().join("BENCH_stubs.json");
    let mut doc = load_or_init(&path, STUBS_SCHEMA, "stub-compilation");
    push_entry(&mut doc, entry);
    if let Err(e) = std::fs::write(&path, doc.pretty()) {
        eprintln!("bench: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());

    if check && !report.passes() {
        for p in report.gate_failures() {
            eprintln!("bench: stub gate failed: {p}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Runs the bulk-plane payload sweep, appends the measurements to
/// `BENCH_bulk.json`, and (with `check`) fails on any gate violation:
/// <2x host speedup over the per-call segment path at >=8 KB payloads.
/// Virtual-charge identity and the zero-fallback steady state are
/// asserted inside the run itself.
fn run_bulk(check: bool) -> ExitCode {
    let report = bulk::run(bulk::DEFAULT_ITERS);
    print!("{}", bulk::render(&report));

    let points: Vec<Json> = report
        .points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("proc".into(), Json::Str(p.proc.into())),
                ("payload".into(), Json::Num(p.payload as f64)),
                ("arena_ns".into(), Json::Num(p.arena_ns)),
                ("fallback_ns".into(), Json::Num(p.fallback_ns)),
                ("speedup".into(), Json::Num(p.speedup)),
                (
                    "arena_virtual_ns".into(),
                    Json::Num(p.arena_virtual_ns as f64),
                ),
                (
                    "fallback_virtual_ns".into(),
                    Json::Num(p.fallback_virtual_ns as f64),
                ),
            ])
        })
        .collect();
    let entry = Json::Obj(vec![
        ("git_rev".into(), Json::Str(git_rev())),
        ("experiment".into(), Json::Str("bulk-arena".into())),
        ("points".into(), Json::Arr(points)),
    ]);
    let path = repo_root().join("BENCH_bulk.json");
    let mut doc = load_or_init(&path, BULK_SCHEMA, "bulk-arena");
    push_entry(&mut doc, entry);
    if let Err(e) = std::fs::write(&path, doc.pretty()) {
        eprintln!("bench: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());

    if check && !report.passes() {
        for p in report.gate_failures() {
            eprintln!("bench: bulk gate failed: {p}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Runs the call-ring batch-size sweep, appends the measurements to
/// `BENCH_batch.json`, and (with `check`) fails on any gate violation:
/// <2x the batch-of-1 virtual throughput at batch 16. The per-call
/// phase/copy identity with the serial path and the one-trap-per-doorbell
/// accounting are asserted inside the run itself.
fn run_batch(check: bool) -> ExitCode {
    let report = batch::run(batch::DEFAULT_ITERS);
    print!("{}", batch::render(&report));

    let points: Vec<Json> = report
        .points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("batch".into(), Json::Num(p.batch as f64)),
                (
                    "virtual_ns_per_call".into(),
                    Json::Num(p.virtual_ns_per_call as f64),
                ),
                ("speedup".into(), Json::Num(p.speedup)),
                ("host_ns_per_call".into(), Json::Num(p.host_ns_per_call)),
                ("calls_per_sec".into(), Json::Num(p.calls_per_sec)),
                ("doorbells".into(), Json::Num(p.doorbells as f64)),
                ("traps".into(), Json::Num(p.traps as f64)),
            ])
        })
        .collect();
    let entry = Json::Obj(vec![
        ("git_rev".into(), Json::Str(git_rev())),
        ("experiment".into(), Json::Str("call-ring-batching".into())),
        (
            "serial_virtual_ns".into(),
            Json::Num(report.serial_virtual_ns as f64),
        ),
        ("points".into(), Json::Arr(points)),
    ]);
    let path = repo_root().join("BENCH_batch.json");
    let mut doc = load_or_init(&path, BATCH_SCHEMA, "call-ring-batching");
    push_entry(&mut doc, entry);
    if let Err(e) = std::fs::write(&path, doc.pretty()) {
        eprintln!("bench: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());

    if check && !report.passes() {
        for p in report.gate_failures() {
            eprintln!("bench: batch gate failed: {p}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Silences backtraces from chaos-injected server panics (they are
/// caught and turned into call errors); any other panic still reaches
/// the default hook.
fn quiet_injected_panics() {
    // Force the fault-plane diagnostics hook to install first, so the
    // filter below is outermost and injected panics print nothing at
    // all (neither backtrace nor the seed-reproduction line).
    drop(firefly::fault::FaultPlan::new(
        firefly::fault::FaultConfig {
            dispatch_delay_us: 1,
            ..firefly::fault::FaultConfig::with_seed(0)
        },
    ));
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected fault"))
            .or_else(|| {
                payload
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected fault"))
            })
            .unwrap_or(false);
        if !injected {
            prev(info);
        }
    }));
}

/// Records a scenario into a replay log file.
fn run_record(path: &str, scenario: rr::ScenarioKind, seed: u64, calls: usize) -> ExitCode {
    quiet_injected_panics();
    let sc = match scenario {
        rr::ScenarioKind::Chaos => rr::Scenario::chaos(seed, calls),
        rr::ScenarioKind::Fig2 => rr::Scenario::fig2(calls),
        rr::ScenarioKind::Batch => rr::Scenario::batch(seed, calls),
    };
    let rec = rr::record(sc);
    let bytes = rec.log.encode();
    if let Err(e) = std::fs::write(path, &bytes) {
        eprintln!("bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "recorded {} (seed {}, {} calls): {} events across {} streams, {} bytes -> {path}",
        sc.kind.name(),
        sc.seed,
        sc.calls,
        rec.log.total_events(),
        rec.log.streams.len(),
        bytes.len()
    );
    println!(
        "  ok {} / err {} / fault events {} / vtime {} ns",
        rec.artifacts.ok, rec.artifacts.err, rec.artifacts.fault_events, rec.artifacts.vtime_ns
    );
    ExitCode::SUCCESS
}

/// Replays a log file; with `check`, exit code reflects byte-identity.
fn run_replay(path: &str, check: bool) -> ExitCode {
    quiet_injected_panics();
    let log = match replay::RecordLog::read_from(std::path::Path::new(path)) {
        Ok(Ok(log)) => log,
        Ok(Err(e)) => {
            eprintln!("bench: {path}: {e}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("bench: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match rr::replay(&log) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replayed {} ({} events): ok {} / err {} / vtime {} ns",
        path,
        log.total_events(),
        report.artifacts.ok,
        report.artifacts.err,
        report.artifacts.vtime_ns
    );
    if let Some(d) = &report.divergence {
        println!("  DIVERGED: {d}");
    }
    if report.unconsumed > 0 {
        println!(
            "  {} logged decisions were never consumed",
            report.unconsumed
        );
    }
    for m in &report.mismatches {
        println!("  artifact mismatch: {m}");
    }
    if report.is_identical() {
        println!("  verdict: byte-identical to the recording");
        ExitCode::SUCCESS
    } else if check {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Measures live-vs-record host overhead; with `check`, gate at 10%.
fn run_rr_overhead(calls: usize, check: bool) -> ExitCode {
    let r = rr::measure_overhead(calls);
    println!(
        "record/replay overhead over {} serial Null calls:\n  \
         live   {:.1} ns/call\n  record {:.1} ns/call ({} decision events)\n  \
         overhead {:.2}% (gate {:.0}%)",
        r.calls,
        r.live_ns_per_call,
        r.record_ns_per_call,
        r.events,
        r.overhead * 100.0,
        rr::MAX_RECORD_OVERHEAD * 100.0
    );
    if check && !r.passes() {
        eprintln!("bench: recording overhead gate failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Shrinks the built-in failing chaos schedule for `seed`.
fn run_shrink(seed: u64, calls: usize) -> ExitCode {
    quiet_injected_panics();
    let initial = rr::chaos_fault_config(seed);
    println!("shrinking chaos seed {seed}, {calls} calls, initial {initial:?}");
    match rr::shrink_chaos(seed, &initial, calls, &rr::client_saw_errors) {
        Some(outcome) => {
            println!(
                "minimized to {} calls after {} probe runs:\n  {:?}\n  \
                 replay-verified: {}",
                outcome.calls, outcome.steps, outcome.config, outcome.replay_verified
            );
            if outcome.replay_verified {
                ExitCode::SUCCESS
            } else {
                eprintln!("bench: minimized run failed replay verification");
                ExitCode::FAILURE
            }
        }
        None => {
            eprintln!("bench: the initial schedule does not fail; nothing to shrink");
            ExitCode::FAILURE
        }
    }
}

fn run(calls_per_thread: usize, max_threads: usize) -> ExitCode {
    let wall_start = std::time::Instant::now();
    let report = host_parallel::run_null_throughput(max_threads, calls_per_thread);
    let host_wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    print!("{}", host_parallel::render(&report));

    // One flight-recorded Null call per run: its Table-5 phase breakdown
    // rides along in every trajectory entry.
    let flight = phases::run_null_flight();
    let phases_json = phases::to_json(&flight);

    let rev = git_rev();
    let throughput_points: Vec<Json> = report
        .points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("threads".into(), Json::Num(p.threads as f64)),
                ("total_calls".into(), Json::Num(p.total_calls as f64)),
                ("calls_per_sec".into(), Json::Num(p.calls_per_sec)),
                ("wall_ns_per_call".into(), Json::Num(p.wall_ns_per_call)),
            ])
        })
        .collect();
    let latency_points: Vec<Json> = report
        .points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("threads".into(), Json::Num(p.threads as f64)),
                ("ns_per_call".into(), Json::Num(p.virtual_ns_per_call)),
                ("wall_ns_per_call".into(), Json::Num(p.wall_ns_per_call)),
            ])
        })
        .collect();

    let root = repo_root();
    let files = [
        (
            root.join("BENCH_throughput.json"),
            THROUGHPUT_SCHEMA,
            throughput_points,
        ),
        (
            root.join("BENCH_latency.json"),
            LATENCY_SCHEMA,
            latency_points,
        ),
    ];
    for (path, schema, points) in files {
        let mut doc = load_or_init(&path, schema, "figure2-host-parallel-null");
        let entry = Json::Obj(vec![
            ("git_rev".into(), Json::Str(rev.clone())),
            (
                "experiment".into(),
                Json::Str("figure2-host-parallel-null".into()),
            ),
            (
                "calls_per_thread".into(),
                Json::Num(calls_per_thread as f64),
            ),
            ("points".into(), Json::Arr(points)),
            ("speedup_at_max".into(), Json::Num(report.speedup_at_max)),
            ("host_wall_ms".into(), Json::Num(host_wall_ms)),
            ("phases".into(), phases_json.clone()),
        ]);
        push_entry(&mut doc, entry);
        if let Err(e) = std::fs::write(&path, doc.pretty()) {
            eprintln!("bench: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Validates one trajectory file; returns every problem found.
fn validate_doc(doc: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    let schema = doc.get("schema").and_then(Json::as_str);
    if !matches!(
        schema,
        Some(THROUGHPUT_SCHEMA)
            | Some(LATENCY_SCHEMA)
            | Some(STUBS_SCHEMA)
            | Some(BULK_SCHEMA)
            | Some(BATCH_SCHEMA)
    ) {
        problems.push(format!("unknown or missing schema {schema:?}"));
    }
    if doc.get("experiment").and_then(Json::as_str).is_none() {
        problems.push("missing `experiment`".into());
    }
    let Some(trajectory) = doc.get("trajectory").and_then(Json::as_arr) else {
        problems.push("missing `trajectory` array".into());
        return problems;
    };
    if trajectory.is_empty() {
        problems.push("empty trajectory (no runs recorded)".into());
    }
    for (i, entry) in trajectory.iter().enumerate() {
        for key in ["git_rev", "experiment"] {
            if entry.get(key).and_then(Json::as_str).is_none() {
                problems.push(format!("entry {i}: missing string `{key}`"));
            }
        }
        if schema == Some(STUBS_SCHEMA) {
            for key in ["assembly_us", "modula2_us", "ratio"] {
                if entry.get(key).and_then(Json::as_f64).is_none() {
                    problems.push(format!("entry {i}: missing number `{key}`"));
                }
            }
            let Some(classes) = entry.get("classes").and_then(Json::as_arr) else {
                problems.push(format!("entry {i}: missing `classes` array"));
                continue;
            };
            if classes.is_empty() {
                problems.push(format!("entry {i}: empty `classes`"));
            }
            for (j, c) in classes.iter().enumerate() {
                if c.get("name").and_then(Json::as_str).is_none() {
                    problems.push(format!("entry {i} class {j}: missing `name`"));
                }
                for key in ["interpreted_ns", "compiled_ns", "speedup"] {
                    match c.get(key).and_then(Json::as_f64) {
                        Some(v) if v > 0.0 => {}
                        _ => problems.push(format!(
                            "entry {i} class {j}: missing or non-positive `{key}`"
                        )),
                    }
                }
            }
            continue;
        }
        if schema == Some(BULK_SCHEMA) {
            let Some(points) = entry.get("points").and_then(Json::as_arr) else {
                problems.push(format!("entry {i}: missing `points` array"));
                continue;
            };
            if points.is_empty() {
                problems.push(format!("entry {i}: empty `points`"));
            }
            for (j, p) in points.iter().enumerate() {
                if p.get("proc").and_then(Json::as_str).is_none() {
                    problems.push(format!("entry {i} point {j}: missing `proc`"));
                }
                for key in ["payload", "arena_ns", "fallback_ns", "speedup"] {
                    match p.get(key).and_then(Json::as_f64) {
                        Some(v) if v > 0.0 => {}
                        _ => problems.push(format!(
                            "entry {i} point {j}: missing or non-positive `{key}`"
                        )),
                    }
                }
            }
            continue;
        }
        if schema == Some(BATCH_SCHEMA) {
            if entry
                .get("serial_virtual_ns")
                .and_then(Json::as_f64)
                .is_none()
            {
                problems.push(format!("entry {i}: missing number `serial_virtual_ns`"));
            }
            let Some(points) = entry.get("points").and_then(Json::as_arr) else {
                problems.push(format!("entry {i}: missing `points` array"));
                continue;
            };
            if points.is_empty() {
                problems.push(format!("entry {i}: empty `points`"));
            }
            for (j, p) in points.iter().enumerate() {
                for key in ["batch", "virtual_ns_per_call", "speedup", "calls_per_sec"] {
                    match p.get(key).and_then(Json::as_f64) {
                        Some(v) if v > 0.0 => {}
                        _ => problems.push(format!(
                            "entry {i} point {j}: missing or non-positive `{key}`"
                        )),
                    }
                }
            }
            continue;
        }
        if entry.get("speedup_at_max").and_then(Json::as_f64).is_none() {
            problems.push(format!("entry {i}: missing number `speedup_at_max`"));
        }
        let Some(points) = entry.get("points").and_then(Json::as_arr) else {
            problems.push(format!("entry {i}: missing `points` array"));
            continue;
        };
        if points.is_empty() {
            problems.push(format!("entry {i}: empty `points`"));
        }
        let metric = if schema == Some(LATENCY_SCHEMA) {
            "ns_per_call"
        } else {
            "calls_per_sec"
        };
        for (j, p) in points.iter().enumerate() {
            if p.get("threads").and_then(Json::as_f64).is_none() {
                problems.push(format!("entry {i} point {j}: missing `threads`"));
            }
            match p.get(metric).and_then(Json::as_f64) {
                Some(v) if v > 0.0 => {}
                _ => problems.push(format!(
                    "entry {i} point {j}: missing or non-positive `{metric}`"
                )),
            }
        }
    }
    problems
}

fn validate(paths: &[String]) -> ExitCode {
    let mut failed = false;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path}: invalid JSON: {e}");
                failed = true;
                continue;
            }
        };
        let problems = validate_doc(&doc);
        if problems.is_empty() {
            let runs = doc
                .get("trajectory")
                .and_then(Json::as_arr)
                .map(|t| t.len())
                .unwrap_or(0);
            println!("{path}: ok ({runs} recorded runs)");
        } else {
            for p in &problems {
                eprintln!("{path}: {p}");
            }
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut calls_per_thread = 2_000usize;
    let mut max_threads = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--phases" => {
                let rest = &args[i + 1..];
                let check = match rest {
                    [] => false,
                    [flag] if flag == "--check" => true,
                    _ => usage(),
                };
                return run_phases(check);
            }
            "--stubs" => {
                let rest = &args[i + 1..];
                let check = match rest {
                    [] => false,
                    [flag] if flag == "--check" => true,
                    _ => usage(),
                };
                return run_stubs(check);
            }
            "--bulk" => {
                let rest = &args[i + 1..];
                let check = match rest {
                    [] => false,
                    [flag] if flag == "--check" => true,
                    _ => usage(),
                };
                return run_bulk(check);
            }
            "--batch" => {
                let rest = &args[i + 1..];
                let check = match rest {
                    [] => false,
                    [flag] if flag == "--check" => true,
                    _ => usage(),
                };
                return run_batch(check);
            }
            "--record" => {
                let path = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                let mut scenario = rr::ScenarioKind::Chaos;
                let mut seed = 1234u64;
                let mut calls = 120usize;
                let mut j = i + 2;
                while j < args.len() {
                    match args[j].as_str() {
                        "--scenario" => {
                            j += 1;
                            scenario = args
                                .get(j)
                                .and_then(|v| rr::ScenarioKind::parse(v))
                                .unwrap_or_else(|| usage());
                        }
                        "--seed" => {
                            j += 1;
                            seed = args
                                .get(j)
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage());
                        }
                        "--rcalls" => {
                            j += 1;
                            calls = args
                                .get(j)
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage());
                        }
                        _ => usage(),
                    }
                    j += 1;
                }
                return run_record(&path, scenario, seed, calls);
            }
            "--replay" => {
                let path = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                let check = match &args[i + 2..] {
                    [] => false,
                    [flag] if flag == "--check" => true,
                    _ => usage(),
                };
                return run_replay(&path, check);
            }
            "--rr-overhead" => {
                let mut calls = 5_000usize;
                let mut check = false;
                let mut j = i + 1;
                while j < args.len() {
                    match args[j].as_str() {
                        "--check" => check = true,
                        "--rcalls" => {
                            j += 1;
                            calls = args
                                .get(j)
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage());
                        }
                        _ => usage(),
                    }
                    j += 1;
                }
                return run_rr_overhead(calls, check);
            }
            "--shrink" => {
                let mut seed = 1234u64;
                let mut calls = 120usize;
                let mut j = i + 1;
                while j < args.len() {
                    match args[j].as_str() {
                        "--seed" => {
                            j += 1;
                            seed = args
                                .get(j)
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage());
                        }
                        "--rcalls" => {
                            j += 1;
                            calls = args
                                .get(j)
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage());
                        }
                        _ => usage(),
                    }
                    j += 1;
                }
                return run_shrink(seed, calls);
            }
            "--validate" => {
                let rest = &args[i + 1..];
                if rest.is_empty() {
                    usage();
                }
                return validate(rest);
            }
            "--calls" => {
                i += 1;
                calls_per_thread = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                max_threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    if calls_per_thread == 0 || max_threads == 0 {
        usage();
    }
    run(calls_per_thread, max_threads)
}
