//! `bench` — runs the host-parallel Figure-2 experiment and persists the
//! measured trajectory.
//!
//! ```text
//! bench [--calls N] [--threads K]    run the sweep; append one entry to
//!                                    BENCH_throughput.json and
//!                                    BENCH_latency.json at the repo root
//! bench --phases [--check]           flight-record a Null call and print
//!                                    its Table-5 phase breakdown diffed
//!                                    against the cost model; with
//!                                    --check, exit non-zero if the total
//!                                    drifts >1% or the recorder adds >5%
//!                                    virtual time
//! bench --validate FILE...           check that each file is a
//!                                    well-formed BENCH trajectory
//! ```
//!
//! Each run *appends* to the `trajectory` array of both files, so the
//! repo accumulates a measured history keyed by git revision; CI
//! validates the files on every push. Every entry also carries the
//! flight-recorded phase breakdown of a serial Null call and the host
//! wall-clock time of the whole sweep.

use std::process::ExitCode;

use bench::batch;
use bench::bulk;
use bench::host_parallel;
use bench::json::Json;
use bench::phases;
use bench::rr;
use bench::stubs;
use bench::tail;

const THROUGHPUT_SCHEMA: &str = "lrpc-bench-throughput/v1";
const LATENCY_SCHEMA: &str = "lrpc-bench-latency/v1";
const STUBS_SCHEMA: &str = "lrpc-bench-stubs/v1";
const BULK_SCHEMA: &str = "lrpc-bench-bulk/v1";
const BATCH_SCHEMA: &str = "lrpc-bench-batch/v1";
const TAIL_SCHEMA: &str = "lrpc-bench-tail/v1";

fn usage() -> ! {
    eprintln!(
        "usage: bench [--calls N] [--threads K]\n       \
         bench --phases [--check]\n       \
         bench --stubs [--check]\n       \
         bench --bulk [--check]\n       \
         bench --batch [--check]\n       \
         bench --tail [--check] [--tail-fault-us N] [--tail-cpus K]\n             \
         [--tail-site ci|full] [--tail-no-adaptive] [--tail-force-no-cache]\n       \
         bench --all\n       \
         bench --record FILE [--scenario chaos|fig2|batch|site] [--seed N] [--rcalls N]\n       \
         bench --replay FILE [--check]\n       \
         bench --rr-overhead [--rcalls N] [--check]\n       \
         bench --shrink [--seed N] [--rcalls N]\n       \
         bench --validate FILE..."
    );
    std::process::exit(2);
}

fn exit(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn git_output(args: &[&str]) -> Option<String> {
    let out = std::process::Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let text = text.trim();
    if text.is_empty() {
        None
    } else {
        Some(text.to_string())
    }
}

/// The repo root (so the BENCH files land in a fixed place no matter the
/// working directory), falling back to `.` outside a checkout.
fn repo_root() -> std::path::PathBuf {
    git_output(&["rev-parse", "--show-toplevel"])
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."))
}

fn git_rev() -> String {
    git_output(&["rev-parse", "--short=12", "HEAD"]).unwrap_or_else(|| "unknown".to_string())
}

/// Loads an existing trajectory file, or starts a fresh document.
fn load_or_init(path: &std::path::Path, schema: &str, experiment: &str) -> Json {
    match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!(
                    "bench: {} exists but is not valid JSON ({e}); starting fresh",
                    path.display()
                );
                init_doc(schema, experiment)
            }
        },
        Err(_) => init_doc(schema, experiment),
    }
}

fn init_doc(schema: &str, experiment: &str) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(schema.into())),
        ("experiment".into(), Json::Str(experiment.into())),
        ("trajectory".into(), Json::Arr(Vec::new())),
    ])
}

fn push_entry(doc: &mut Json, entry: Json) {
    if let Json::Obj(members) = doc {
        for (k, v) in members.iter_mut() {
            if k == "trajectory" {
                if let Json::Arr(items) = v {
                    items.push(entry);
                    return;
                }
            }
        }
        members.push(("trajectory".into(), Json::Arr(vec![entry])));
    }
}

/// Runs the flight-recorder replay; with `check`, the exit code reflects
/// the drift and overhead gates.
fn run_phases(check: bool) -> bool {
    let t = phases::run_null_flight();
    print!("{}", phases::render(&t));
    if check && !t.passes() {
        eprintln!(
            "bench: phase check failed (drift {:.3}% > {:.0}% or overhead {:.3}% > {:.0}%)",
            t.total_drift * 100.0,
            phases::MAX_TOTAL_DRIFT * 100.0,
            t.recorder_overhead * 100.0,
            phases::MAX_RECORDER_OVERHEAD * 100.0
        );
        return false;
    }
    true
}

/// Runs the interpreter-vs-compiled-plan stub comparison, appends the
/// measurements to `BENCH_stubs.json`, and (with `check`) fails on any
/// gate violation: <2x host speedup on `Null`/`BigIn`, a virtual-cost
/// mismatch (asserted inside the run), or a §3.3 ratio off the paper's 4x.
fn run_stubs(check: bool) -> bool {
    let report = stubs::run(stubs::DEFAULT_ITERS);
    print!("{}", stubs::render(&report));

    let classes: Vec<Json> = report
        .classes
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("name".into(), Json::Str(c.name.into())),
                ("interpreted_ns".into(), Json::Num(c.interpreted_ns)),
                ("compiled_ns".into(), Json::Num(c.compiled_ns)),
                ("speedup".into(), Json::Num(c.speedup)),
                ("virtual_ns".into(), Json::Num(c.virtual_ns as f64)),
            ])
        })
        .collect();
    let entry = Json::Obj(vec![
        ("git_rev".into(), Json::Str(git_rev())),
        ("experiment".into(), Json::Str("stub-compilation".into())),
        ("classes".into(), Json::Arr(classes)),
        ("assembly_us".into(), Json::Num(report.assembly_us)),
        ("modula2_us".into(), Json::Num(report.modula2_us)),
        ("ratio".into(), Json::Num(report.ratio)),
    ]);
    let path = repo_root().join("BENCH_stubs.json");
    let mut doc = load_or_init(&path, STUBS_SCHEMA, "stub-compilation");
    push_entry(&mut doc, entry);
    if let Err(e) = std::fs::write(&path, doc.pretty()) {
        eprintln!("bench: cannot write {}: {e}", path.display());
        return false;
    }
    println!("wrote {}", path.display());

    if check && !report.passes() {
        for p in report.gate_failures() {
            eprintln!("bench: stub gate failed: {p}");
        }
        return false;
    }
    true
}

/// Runs the bulk-plane payload sweep, appends the measurements to
/// `BENCH_bulk.json`, and (with `check`) fails on any gate violation:
/// <2x host speedup over the per-call segment path at >=8 KB payloads.
/// Virtual-charge identity and the zero-fallback steady state are
/// asserted inside the run itself.
fn run_bulk(check: bool) -> bool {
    let report = bulk::run(bulk::DEFAULT_ITERS);
    print!("{}", bulk::render(&report));

    let points: Vec<Json> = report
        .points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("proc".into(), Json::Str(p.proc.into())),
                ("payload".into(), Json::Num(p.payload as f64)),
                ("arena_ns".into(), Json::Num(p.arena_ns)),
                ("fallback_ns".into(), Json::Num(p.fallback_ns)),
                ("speedup".into(), Json::Num(p.speedup)),
                (
                    "arena_virtual_ns".into(),
                    Json::Num(p.arena_virtual_ns as f64),
                ),
                (
                    "fallback_virtual_ns".into(),
                    Json::Num(p.fallback_virtual_ns as f64),
                ),
            ])
        })
        .collect();
    let entry = Json::Obj(vec![
        ("git_rev".into(), Json::Str(git_rev())),
        ("experiment".into(), Json::Str("bulk-arena".into())),
        ("points".into(), Json::Arr(points)),
    ]);
    let path = repo_root().join("BENCH_bulk.json");
    let mut doc = load_or_init(&path, BULK_SCHEMA, "bulk-arena");
    push_entry(&mut doc, entry);
    if let Err(e) = std::fs::write(&path, doc.pretty()) {
        eprintln!("bench: cannot write {}: {e}", path.display());
        return false;
    }
    println!("wrote {}", path.display());

    if check && !report.passes() {
        for p in report.gate_failures() {
            eprintln!("bench: bulk gate failed: {p}");
        }
        return false;
    }
    true
}

/// Runs the call-ring batch-size sweep, appends the measurements to
/// `BENCH_batch.json`, and (with `check`) fails on any gate violation:
/// <2x the batch-of-1 virtual throughput at batch 16. The per-call
/// phase/copy identity with the serial path and the one-trap-per-doorbell
/// accounting are asserted inside the run itself.
fn run_batch(check: bool) -> bool {
    let report = batch::run(batch::DEFAULT_ITERS);
    print!("{}", batch::render(&report));

    let points: Vec<Json> = report
        .points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("batch".into(), Json::Num(p.batch as f64)),
                (
                    "virtual_ns_per_call".into(),
                    Json::Num(p.virtual_ns_per_call as f64),
                ),
                ("speedup".into(), Json::Num(p.speedup)),
                ("host_ns_per_call".into(), Json::Num(p.host_ns_per_call)),
                ("calls_per_sec".into(), Json::Num(p.calls_per_sec)),
                ("doorbells".into(), Json::Num(p.doorbells as f64)),
                ("traps".into(), Json::Num(p.traps as f64)),
            ])
        })
        .collect();
    let entry = Json::Obj(vec![
        ("git_rev".into(), Json::Str(git_rev())),
        ("experiment".into(), Json::Str("call-ring-batching".into())),
        (
            "serial_virtual_ns".into(),
            Json::Num(report.serial_virtual_ns as f64),
        ),
        ("points".into(), Json::Arr(points)),
    ]);
    let path = repo_root().join("BENCH_batch.json");
    let mut doc = load_or_init(&path, BATCH_SCHEMA, "call-ring-batching");
    push_entry(&mut doc, entry);
    if let Err(e) = std::fs::write(&path, doc.pretty()) {
        eprintln!("bench: cannot write {}: {e}", path.display());
        return false;
    }
    println!("wrote {}", path.display());

    if check && !report.passes() {
        for p in report.gate_failures() {
            eprintln!("bench: batch gate failed: {p}");
        }
        return false;
    }
    true
}

/// One mix's quantile stats as a JSON object.
fn mix_stats_json(s: &tail::MixStats) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::Num(s.count as f64)),
        ("p50".into(), Json::Num(s.p50 as f64)),
        ("p90".into(), Json::Num(s.p90 as f64)),
        ("p99".into(), Json::Num(s.p99 as f64)),
        ("p999".into(), Json::Num(s.p999 as f64)),
        ("max".into(), Json::Num(s.max as f64)),
        ("mean".into(), Json::Num(s.mean)),
    ])
}

fn site_json(site: &workload::site::SiteSpec) -> Json {
    Json::Obj(vec![
        ("seed".into(), Json::Num(site.seed as f64)),
        ("interfaces".into(), Json::Num(site.interfaces as f64)),
        ("bindings".into(), Json::Num(site.bindings as f64)),
        ("arrivals".into(), Json::Num(site.arrivals as f64)),
        (
            "mean_interarrival_ns".into(),
            Json::Num(site.mean_interarrival_ns as f64),
        ),
        ("batch_share".into(), Json::Num(site.batch_share)),
        ("bulk_share".into(), Json::Num(site.bulk_share)),
        ("batch_size".into(), Json::Num(site.batch_size as f64)),
        ("window_ns".into(), Json::Num(site.window_ns as f64)),
    ])
}

/// Whether a persisted entry was produced by the same site parameters
/// and machine shape (the regression gate only compares like with
/// like). Legacy rows carry no `cpus`/`domain_caching`/`adaptive` keys
/// and therefore never match a multi-CPU spec — they start a fresh
/// baseline lineage rather than gating apples against oranges.
fn site_matches(entry: &Json, spec: &tail::TailSpec) -> bool {
    let Some(s) = entry.get("site") else {
        return false;
    };
    let site = &spec.site;
    let num = |key: &str| s.get(key).and_then(Json::as_f64);
    let close = |key: &str, want: f64| num(key).is_some_and(|v| (v - want).abs() < 1e-9);
    let flag = |key: &str, want: bool| {
        entry
            .get(key)
            .and_then(Json::as_bool)
            .is_some_and(|v| v == want)
    };
    close("seed", site.seed as f64)
        && close("interfaces", site.interfaces as f64)
        && close("bindings", site.bindings as f64)
        && close("arrivals", site.arrivals as f64)
        && close("mean_interarrival_ns", site.mean_interarrival_ns as f64)
        && close("batch_share", site.batch_share)
        && close("bulk_share", site.bulk_share)
        && close("batch_size", site.batch_size as f64)
        && close("window_ns", site.window_ns as f64)
        && entry
            .get("cpus")
            .and_then(Json::as_f64)
            .is_some_and(|v| v as usize == spec.cpus)
        && flag("domain_caching", spec.domain_caching)
        && flag("adaptive", spec.adaptive)
}

/// The newest persisted baseline with the same site parameters and
/// machine shape: the overall virtual p99 and the caching mean delta
/// the cross-run gates compare against.
fn last_matching_baseline(doc: &Json, spec: &tail::TailSpec) -> (Option<u64>, Option<i64>) {
    let Some(entry) = doc
        .get("trajectory")
        .and_then(Json::as_arr)
        .into_iter()
        .flatten()
        .rfind(|e| site_matches(e, spec))
    else {
        return (None, None);
    };
    let p99 = entry
        .get("virtual")
        .and_then(|v| v.get("all"))
        .and_then(|a| a.get("p99"))
        .and_then(Json::as_f64)
        .map(|v| v as u64);
    let delta = entry
        .get("caching_delta_ns")
        .and_then(Json::as_f64)
        .map(|v| v as i64);
    (p99, delta)
}

fn tail_entry(e: &tail::TailExperiment) -> Json {
    let r = &e.main;
    let mixes = |stats: &[(&'static str, tail::MixStats)]| {
        Json::Obj(
            stats
                .iter()
                .map(|(m, s)| ((*m).into(), mix_stats_json(s)))
                .collect(),
        )
    };
    let windows: Vec<Json> = r
        .windows
        .iter()
        .map(|w| {
            Json::Obj(vec![
                ("start_ns".into(), Json::Num(w.start_ns as f64)),
                ("count".into(), Json::Num(w.count as f64)),
                ("p50".into(), Json::Num(w.p50 as f64)),
                ("p99".into(), Json::Num(w.p99 as f64)),
                ("max".into(), Json::Num(w.max as f64)),
            ])
        })
        .collect();
    let attribution: Vec<Json> = r
        .attribution
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("group".into(), Json::Str(p.group.into())),
                ("ns".into(), Json::Num(p.ns as f64)),
                ("share".into(), Json::Num(p.share)),
            ])
        })
        .collect();
    let opt_num = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
    Json::Obj(vec![
        ("git_rev".into(), Json::Str(git_rev())),
        ("experiment".into(), Json::Str("site-tail-latency".into())),
        ("site".into(), site_json(&r.spec.site)),
        ("cpus".into(), Json::Num(r.cpus as f64)),
        ("domain_caching".into(), Json::Bool(r.domain_caching)),
        ("adaptive".into(), Json::Bool(r.spec.adaptive)),
        ("calls".into(), Json::Num(r.calls as f64)),
        ("errors".into(), Json::Num(r.errors as f64)),
        (
            "domain_cache_hits".into(),
            Json::Num(r.domain_cache_hits as f64),
        ),
        (
            "domain_cache_misses".into(),
            Json::Num(r.domain_cache_misses as f64),
        ),
        (
            "astack_wait_events".into(),
            Json::Num(r.astack_wait_events as f64),
        ),
        ("k1_p99".into(), opt_num(e.k1_p99.map(|v| v as f64))),
        (
            "caching_off_p99".into(),
            opt_num(e.caching_off_p99.map(|v| v as f64)),
        ),
        (
            "caching_off_serial_mean".into(),
            opt_num(e.caching_off_serial_mean),
        ),
        (
            "caching_delta_ns".into(),
            opt_num(e.caching_delta().map(|v| v as f64)),
        ),
        (
            "caching_p99_delta_ns".into(),
            opt_num(e.caching_p99_delta().map(|v| v as f64)),
        ),
        (
            "adaptive_p99".into(),
            opt_num(e.adaptive_p99.map(|v| v as f64)),
        ),
        (
            "adaptive_wait_events".into(),
            opt_num(e.adaptive_wait_events.map(|v| v as f64)),
        ),
        (
            "total_virtual_ns".into(),
            Json::Num(r.total_virtual_ns as f64),
        ),
        ("virtual".into(), mixes(&r.virt)),
        ("windows".into(), Json::Arr(windows)),
        ("attribution".into(), Json::Arr(attribution)),
        ("tail_calls".into(), Json::Num(r.tail_calls as f64)),
        (
            "accounted_tail_calls".into(),
            Json::Num(r.accounted_tail_calls as f64),
        ),
        ("span_coverage".into(), Json::Num(r.span_coverage)),
        ("dropped_spans".into(), Json::Num(r.dropped_spans as f64)),
        ("host".into(), mixes(&r.host)),
        ("host_wall_ms".into(), Json::Num(r.host_wall_ms)),
    ])
}

/// Knobs of a `--tail` invocation beyond `--check`.
struct TailOpts {
    fault_us: u64,
    cpus: usize,
    ci_site: bool,
    adaptive: bool,
    force_no_cache: bool,
}

impl Default for TailOpts {
    fn default() -> TailOpts {
        TailOpts {
            fault_us: 0,
            cpus: 4,
            ci_site: false,
            adaptive: true,
            force_no_cache: false,
        }
    }
}

/// Runs the site-scale open-loop tail experiment. Clean runs append to
/// `BENCH_tail.json`; runs with an injected fault or with caching
/// forced off never persist (they exist to prove the gates trip). With
/// `check`, the exit code reflects the run-local and experiment gates
/// plus the cross-run p99 and caching-delta gates against the newest
/// persisted entry with identical site parameters and machine shape.
fn run_tail(check: bool, opts: &TailOpts) -> bool {
    let mut spec = if opts.ci_site {
        tail::TailSpec::ci()
    } else {
        tail::TailSpec::full()
    };
    spec.dispatch_delay_us = opts.fault_us;
    spec.cpus = opts.cpus;
    spec.adaptive = opts.adaptive;
    if opts.force_no_cache {
        spec.domain_caching = false;
    }
    let experiment = tail::run_experiment(&spec);
    print!("{}", tail::render_experiment(&experiment));

    let path = repo_root().join("BENCH_tail.json");
    let mut doc = load_or_init(&path, TAIL_SCHEMA, "site-tail-latency");
    let (prev_p99, prev_delta) = last_matching_baseline(&doc, &spec);

    if opts.fault_us == 0 && !opts.force_no_cache {
        push_entry(&mut doc, tail_entry(&experiment));
        if let Err(e) = std::fs::write(&path, doc.pretty()) {
            eprintln!("bench: cannot write {}: {e}", path.display());
            return false;
        }
        println!("wrote {}", path.display());
    } else {
        println!("fault-injected or forced-off run: not persisted");
    }

    if check {
        let mut failures = experiment.gate_failures();
        failures.extend(experiment.regression_failures(prev_p99, prev_delta));
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("bench: tail gate failed: {f}");
            }
            return false;
        }
        if prev_p99.is_none() {
            println!("note: no previous run with these parameters; cross-run gates vacuous");
        }
    }
    true
}

/// Runs every suite's `--check` gate back to back, then validates every
/// BENCH trajectory file present at the repo root.
fn run_all() -> bool {
    let mut ok = true;
    let mut gate = |name: &str, passed: bool| {
        println!("\n== {name}: {} ==", if passed { "ok" } else { "FAILED" });
        ok &= passed;
    };
    gate("phases", run_phases(true));
    gate("stubs", run_stubs(true));
    gate("bulk", run_bulk(true));
    gate("batch", run_batch(true));
    gate("tail", run_tail(true, &TailOpts::default()));
    gate("rr-overhead", run_rr_overhead(5_000, true));
    let bench_files: Vec<String> = [
        "BENCH_throughput.json",
        "BENCH_latency.json",
        "BENCH_stubs.json",
        "BENCH_bulk.json",
        "BENCH_batch.json",
        "BENCH_tail.json",
    ]
    .iter()
    .map(|f| repo_root().join(f))
    .filter(|p| p.exists())
    .map(|p| p.display().to_string())
    .collect();
    gate("validate", validate(&bench_files));
    println!("\n== bench --all: {} ==", if ok { "ok" } else { "FAILED" });
    ok
}

/// Silences backtraces from chaos-injected server panics (they are
/// caught and turned into call errors); any other panic still reaches
/// the default hook.
fn quiet_injected_panics() {
    // Force the fault-plane diagnostics hook to install first, so the
    // filter below is outermost and injected panics print nothing at
    // all (neither backtrace nor the seed-reproduction line).
    drop(firefly::fault::FaultPlan::new(
        firefly::fault::FaultConfig {
            dispatch_delay_us: 1,
            ..firefly::fault::FaultConfig::with_seed(0)
        },
    ));
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected fault"))
            .or_else(|| {
                payload
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected fault"))
            })
            .unwrap_or(false);
        if !injected {
            prev(info);
        }
    }));
}

/// Records a scenario into a replay log file.
fn run_record(path: &str, scenario: rr::ScenarioKind, seed: u64, calls: usize) -> ExitCode {
    quiet_injected_panics();
    let sc = match scenario {
        rr::ScenarioKind::Chaos => rr::Scenario::chaos(seed, calls),
        rr::ScenarioKind::Fig2 => rr::Scenario::fig2(calls),
        rr::ScenarioKind::Batch => rr::Scenario::batch(seed, calls),
        rr::ScenarioKind::Site => rr::Scenario::site(seed, calls),
    };
    let rec = rr::record(sc);
    let bytes = rec.log.encode();
    if let Err(e) = std::fs::write(path, &bytes) {
        eprintln!("bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "recorded {} (seed {}, {} calls): {} events across {} streams, {} bytes -> {path}",
        sc.kind.name(),
        sc.seed,
        sc.calls,
        rec.log.total_events(),
        rec.log.streams.len(),
        bytes.len()
    );
    println!(
        "  ok {} / err {} / fault events {} / vtime {} ns",
        rec.artifacts.ok, rec.artifacts.err, rec.artifacts.fault_events, rec.artifacts.vtime_ns
    );
    ExitCode::SUCCESS
}

/// Replays a log file; with `check`, exit code reflects byte-identity.
fn run_replay(path: &str, check: bool) -> ExitCode {
    quiet_injected_panics();
    let log = match replay::RecordLog::read_from(std::path::Path::new(path)) {
        Ok(Ok(log)) => log,
        Ok(Err(e)) => {
            eprintln!("bench: {path}: {e}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("bench: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match rr::replay(&log) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replayed {} ({} events): ok {} / err {} / vtime {} ns",
        path,
        log.total_events(),
        report.artifacts.ok,
        report.artifacts.err,
        report.artifacts.vtime_ns
    );
    if let Some(d) = &report.divergence {
        println!("  DIVERGED: {d}");
    }
    if report.unconsumed > 0 {
        println!(
            "  {} logged decisions were never consumed",
            report.unconsumed
        );
    }
    for m in &report.mismatches {
        println!("  artifact mismatch: {m}");
    }
    if report.is_identical() {
        println!("  verdict: byte-identical to the recording");
        ExitCode::SUCCESS
    } else if check {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Measures live-vs-record host overhead; with `check`, gate at 10%.
fn run_rr_overhead(calls: usize, check: bool) -> bool {
    let r = rr::measure_overhead(calls);
    println!(
        "record/replay overhead over {} serial Null calls:\n  \
         live   {:.1} ns/call\n  record {:.1} ns/call ({} decision events)\n  \
         overhead {:.2}% (gate {:.0}%)",
        r.calls,
        r.live_ns_per_call,
        r.record_ns_per_call,
        r.events,
        r.overhead * 100.0,
        rr::MAX_RECORD_OVERHEAD * 100.0
    );
    if check && !r.passes() {
        eprintln!("bench: recording overhead gate failed");
        return false;
    }
    true
}

/// Shrinks the built-in failing chaos schedule for `seed`.
fn run_shrink(seed: u64, calls: usize) -> ExitCode {
    quiet_injected_panics();
    let initial = rr::chaos_fault_config(seed);
    println!("shrinking chaos seed {seed}, {calls} calls, initial {initial:?}");
    match rr::shrink_chaos(seed, &initial, calls, &rr::client_saw_errors) {
        Some(outcome) => {
            println!(
                "minimized to {} calls after {} probe runs:\n  {:?}\n  \
                 replay-verified: {}",
                outcome.calls, outcome.steps, outcome.config, outcome.replay_verified
            );
            if outcome.replay_verified {
                ExitCode::SUCCESS
            } else {
                eprintln!("bench: minimized run failed replay verification");
                ExitCode::FAILURE
            }
        }
        None => {
            eprintln!("bench: the initial schedule does not fail; nothing to shrink");
            ExitCode::FAILURE
        }
    }
}

fn run(calls_per_thread: usize, max_threads: usize) -> ExitCode {
    let wall_start = std::time::Instant::now();
    let report = host_parallel::run_null_throughput(max_threads, calls_per_thread);
    let host_wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    print!("{}", host_parallel::render(&report));

    // One flight-recorded Null call per run: its Table-5 phase breakdown
    // rides along in every trajectory entry.
    let flight = phases::run_null_flight();
    let phases_json = phases::to_json(&flight);

    let rev = git_rev();
    let throughput_points: Vec<Json> = report
        .points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("threads".into(), Json::Num(p.threads as f64)),
                ("total_calls".into(), Json::Num(p.total_calls as f64)),
                ("calls_per_sec".into(), Json::Num(p.calls_per_sec)),
                ("wall_ns_per_call".into(), Json::Num(p.wall_ns_per_call)),
            ])
        })
        .collect();
    let latency_points: Vec<Json> = report
        .points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("threads".into(), Json::Num(p.threads as f64)),
                ("ns_per_call".into(), Json::Num(p.virtual_ns_per_call)),
                ("wall_ns_per_call".into(), Json::Num(p.wall_ns_per_call)),
            ])
        })
        .collect();

    let root = repo_root();
    let files = [
        (
            root.join("BENCH_throughput.json"),
            THROUGHPUT_SCHEMA,
            throughput_points,
        ),
        (
            root.join("BENCH_latency.json"),
            LATENCY_SCHEMA,
            latency_points,
        ),
    ];
    for (path, schema, points) in files {
        let mut doc = load_or_init(&path, schema, "figure2-host-parallel-null");
        let entry = Json::Obj(vec![
            ("git_rev".into(), Json::Str(rev.clone())),
            (
                "experiment".into(),
                Json::Str("figure2-host-parallel-null".into()),
            ),
            (
                "calls_per_thread".into(),
                Json::Num(calls_per_thread as f64),
            ),
            ("points".into(), Json::Arr(points)),
            ("speedup_at_max".into(), Json::Num(report.speedup_at_max)),
            ("host_wall_ms".into(), Json::Num(host_wall_ms)),
            ("phases".into(), phases_json.clone()),
        ]);
        push_entry(&mut doc, entry);
        if let Err(e) = std::fs::write(&path, doc.pretty()) {
            eprintln!("bench: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Validates one trajectory file; returns every problem found.
fn validate_doc(doc: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    let schema = doc.get("schema").and_then(Json::as_str);
    if !matches!(
        schema,
        Some(THROUGHPUT_SCHEMA)
            | Some(LATENCY_SCHEMA)
            | Some(STUBS_SCHEMA)
            | Some(BULK_SCHEMA)
            | Some(BATCH_SCHEMA)
            | Some(TAIL_SCHEMA)
    ) {
        problems.push(format!("unknown or missing schema {schema:?}"));
    }
    if doc.get("experiment").and_then(Json::as_str).is_none() {
        problems.push("missing `experiment`".into());
    }
    let Some(trajectory) = doc.get("trajectory").and_then(Json::as_arr) else {
        problems.push("missing `trajectory` array".into());
        return problems;
    };
    if trajectory.is_empty() {
        problems.push("empty trajectory (no runs recorded)".into());
    }
    for (i, entry) in trajectory.iter().enumerate() {
        for key in ["git_rev", "experiment"] {
            if entry.get(key).and_then(Json::as_str).is_none() {
                problems.push(format!("entry {i}: missing string `{key}`"));
            }
        }
        if schema == Some(STUBS_SCHEMA) {
            for key in ["assembly_us", "modula2_us", "ratio"] {
                if entry.get(key).and_then(Json::as_f64).is_none() {
                    problems.push(format!("entry {i}: missing number `{key}`"));
                }
            }
            let Some(classes) = entry.get("classes").and_then(Json::as_arr) else {
                problems.push(format!("entry {i}: missing `classes` array"));
                continue;
            };
            if classes.is_empty() {
                problems.push(format!("entry {i}: empty `classes`"));
            }
            for (j, c) in classes.iter().enumerate() {
                if c.get("name").and_then(Json::as_str).is_none() {
                    problems.push(format!("entry {i} class {j}: missing `name`"));
                }
                for key in ["interpreted_ns", "compiled_ns", "speedup"] {
                    match c.get(key).and_then(Json::as_f64) {
                        Some(v) if v > 0.0 => {}
                        _ => problems.push(format!(
                            "entry {i} class {j}: missing or non-positive `{key}`"
                        )),
                    }
                }
            }
            continue;
        }
        if schema == Some(BULK_SCHEMA) {
            let Some(points) = entry.get("points").and_then(Json::as_arr) else {
                problems.push(format!("entry {i}: missing `points` array"));
                continue;
            };
            if points.is_empty() {
                problems.push(format!("entry {i}: empty `points`"));
            }
            for (j, p) in points.iter().enumerate() {
                if p.get("proc").and_then(Json::as_str).is_none() {
                    problems.push(format!("entry {i} point {j}: missing `proc`"));
                }
                for key in ["payload", "arena_ns", "fallback_ns", "speedup"] {
                    match p.get(key).and_then(Json::as_f64) {
                        Some(v) if v > 0.0 => {}
                        _ => problems.push(format!(
                            "entry {i} point {j}: missing or non-positive `{key}`"
                        )),
                    }
                }
            }
            continue;
        }
        if schema == Some(BATCH_SCHEMA) {
            if entry
                .get("serial_virtual_ns")
                .and_then(Json::as_f64)
                .is_none()
            {
                problems.push(format!("entry {i}: missing number `serial_virtual_ns`"));
            }
            let Some(points) = entry.get("points").and_then(Json::as_arr) else {
                problems.push(format!("entry {i}: missing `points` array"));
                continue;
            };
            if points.is_empty() {
                problems.push(format!("entry {i}: empty `points`"));
            }
            for (j, p) in points.iter().enumerate() {
                for key in ["batch", "virtual_ns_per_call", "speedup", "calls_per_sec"] {
                    match p.get(key).and_then(Json::as_f64) {
                        Some(v) if v > 0.0 => {}
                        _ => problems.push(format!(
                            "entry {i} point {j}: missing or non-positive `{key}`"
                        )),
                    }
                }
            }
            continue;
        }
        if schema == Some(TAIL_SCHEMA) {
            if entry.get("site").is_none() {
                problems.push(format!("entry {i}: missing `site` object"));
            }
            let Some(virt) = entry.get("virtual") else {
                problems.push(format!("entry {i}: missing `virtual` object"));
                continue;
            };
            for mix in ["all", "serial", "batch", "bulk"] {
                let Some(m) = virt.get(mix) else {
                    problems.push(format!("entry {i}: missing `virtual.{mix}`"));
                    continue;
                };
                let q = |key: &str| m.get(key).and_then(Json::as_f64);
                let (Some(count), Some(p50), Some(p99), Some(p999)) =
                    (q("count"), q("p50"), q("p99"), q("p999"))
                else {
                    problems.push(format!("entry {i}: `virtual.{mix}` missing quantiles"));
                    continue;
                };
                if count > 0.0 && !(p50 <= p99 && p99 <= p999) {
                    problems.push(format!(
                        "entry {i}: `virtual.{mix}` quantiles not monotone \
                         (p50={p50} p99={p99} p999={p999})"
                    ));
                }
            }
            match entry.get("span_coverage").and_then(Json::as_f64) {
                Some(c) if (0.0..=1.0).contains(&c) => {}
                _ => problems.push(format!(
                    "entry {i}: missing or out-of-range `span_coverage`"
                )),
            }
            if entry.get("attribution").and_then(Json::as_arr).is_none() {
                problems.push(format!("entry {i}: missing `attribution` array"));
            }
            // Multi-CPU experiment keys (absent on legacy rows): when a
            // row declares a machine shape, its experiment columns must
            // be coherent.
            if let Some(cpus) = entry.get("cpus").and_then(Json::as_f64) {
                if cpus < 1.0 {
                    problems.push(format!("entry {i}: `cpus` must be >= 1"));
                }
                for key in ["domain_caching", "adaptive"] {
                    if entry.get(key).and_then(Json::as_bool).is_none() {
                        problems.push(format!("entry {i}: missing boolean `{key}`"));
                    }
                }
                for key in [
                    "domain_cache_hits",
                    "domain_cache_misses",
                    "astack_wait_events",
                ] {
                    if entry.get(key).and_then(Json::as_f64).is_none() {
                        problems.push(format!("entry {i}: missing number `{key}`"));
                    }
                }
                let caching = entry
                    .get("domain_caching")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
                if cpus > 1.0 && caching {
                    for key in [
                        "k1_p99",
                        "caching_off_p99",
                        "caching_off_serial_mean",
                        "caching_delta_ns",
                        "caching_p99_delta_ns",
                    ] {
                        if entry.get(key).and_then(Json::as_f64).is_none() {
                            problems.push(format!("entry {i}: missing number `{key}`"));
                        }
                    }
                    if entry
                        .get("caching_delta_ns")
                        .and_then(Json::as_f64)
                        .is_some_and(|d| d <= 0.0)
                    {
                        problems.push(format!(
                            "entry {i}: persisted `caching_delta_ns` must be positive"
                        ));
                    }
                }
            }
            continue;
        }
        if entry.get("speedup_at_max").and_then(Json::as_f64).is_none() {
            problems.push(format!("entry {i}: missing number `speedup_at_max`"));
        }
        let Some(points) = entry.get("points").and_then(Json::as_arr) else {
            problems.push(format!("entry {i}: missing `points` array"));
            continue;
        };
        if points.is_empty() {
            problems.push(format!("entry {i}: empty `points`"));
        }
        let metric = if schema == Some(LATENCY_SCHEMA) {
            "ns_per_call"
        } else {
            "calls_per_sec"
        };
        for (j, p) in points.iter().enumerate() {
            if p.get("threads").and_then(Json::as_f64).is_none() {
                problems.push(format!("entry {i} point {j}: missing `threads`"));
            }
            match p.get(metric).and_then(Json::as_f64) {
                Some(v) if v > 0.0 => {}
                _ => problems.push(format!(
                    "entry {i} point {j}: missing or non-positive `{metric}`"
                )),
            }
        }
    }
    problems
}

fn validate(paths: &[String]) -> bool {
    let mut failed = false;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path}: invalid JSON: {e}");
                failed = true;
                continue;
            }
        };
        let problems = validate_doc(&doc);
        if problems.is_empty() {
            let runs = doc
                .get("trajectory")
                .and_then(Json::as_arr)
                .map(|t| t.len())
                .unwrap_or(0);
            println!("{path}: ok ({runs} recorded runs)");
        } else {
            for p in &problems {
                eprintln!("{path}: {p}");
            }
            failed = true;
        }
    }
    !failed
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut calls_per_thread = 2_000usize;
    let mut max_threads = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--phases" => {
                let rest = &args[i + 1..];
                let check = match rest {
                    [] => false,
                    [flag] if flag == "--check" => true,
                    _ => usage(),
                };
                return exit(run_phases(check));
            }
            "--stubs" => {
                let rest = &args[i + 1..];
                let check = match rest {
                    [] => false,
                    [flag] if flag == "--check" => true,
                    _ => usage(),
                };
                return exit(run_stubs(check));
            }
            "--bulk" => {
                let rest = &args[i + 1..];
                let check = match rest {
                    [] => false,
                    [flag] if flag == "--check" => true,
                    _ => usage(),
                };
                return exit(run_bulk(check));
            }
            "--batch" => {
                let rest = &args[i + 1..];
                let check = match rest {
                    [] => false,
                    [flag] if flag == "--check" => true,
                    _ => usage(),
                };
                return exit(run_batch(check));
            }
            "--tail" => {
                let mut check = false;
                let mut opts = TailOpts::default();
                let mut j = i + 1;
                while j < args.len() {
                    match args[j].as_str() {
                        "--check" => check = true,
                        "--tail-fault-us" => {
                            j += 1;
                            opts.fault_us = args
                                .get(j)
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage());
                        }
                        "--tail-cpus" => {
                            j += 1;
                            opts.cpus = args
                                .get(j)
                                .and_then(|v| v.parse().ok())
                                .filter(|&k: &usize| k >= 1)
                                .unwrap_or_else(|| usage());
                        }
                        "--tail-site" => {
                            j += 1;
                            opts.ci_site = match args.get(j).map(String::as_str) {
                                Some("ci") => true,
                                Some("full") => false,
                                _ => usage(),
                            };
                        }
                        "--tail-no-adaptive" => opts.adaptive = false,
                        "--tail-force-no-cache" => opts.force_no_cache = true,
                        _ => usage(),
                    }
                    j += 1;
                }
                return exit(run_tail(check, &opts));
            }
            "--all" => {
                if args.len() != 1 {
                    usage();
                }
                return exit(run_all());
            }
            "--record" => {
                let path = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                let mut scenario = rr::ScenarioKind::Chaos;
                let mut seed = 1234u64;
                let mut calls = 120usize;
                let mut j = i + 2;
                while j < args.len() {
                    match args[j].as_str() {
                        "--scenario" => {
                            j += 1;
                            scenario = args
                                .get(j)
                                .and_then(|v| rr::ScenarioKind::parse(v))
                                .unwrap_or_else(|| usage());
                        }
                        "--seed" => {
                            j += 1;
                            seed = args
                                .get(j)
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage());
                        }
                        "--rcalls" => {
                            j += 1;
                            calls = args
                                .get(j)
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage());
                        }
                        _ => usage(),
                    }
                    j += 1;
                }
                return run_record(&path, scenario, seed, calls);
            }
            "--replay" => {
                let path = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                let check = match &args[i + 2..] {
                    [] => false,
                    [flag] if flag == "--check" => true,
                    _ => usage(),
                };
                return run_replay(&path, check);
            }
            "--rr-overhead" => {
                let mut calls = 5_000usize;
                let mut check = false;
                let mut j = i + 1;
                while j < args.len() {
                    match args[j].as_str() {
                        "--check" => check = true,
                        "--rcalls" => {
                            j += 1;
                            calls = args
                                .get(j)
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage());
                        }
                        _ => usage(),
                    }
                    j += 1;
                }
                return exit(run_rr_overhead(calls, check));
            }
            "--shrink" => {
                let mut seed = 1234u64;
                let mut calls = 120usize;
                let mut j = i + 1;
                while j < args.len() {
                    match args[j].as_str() {
                        "--seed" => {
                            j += 1;
                            seed = args
                                .get(j)
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage());
                        }
                        "--rcalls" => {
                            j += 1;
                            calls = args
                                .get(j)
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage());
                        }
                        _ => usage(),
                    }
                    j += 1;
                }
                return run_shrink(seed, calls);
            }
            "--validate" => {
                let rest = &args[i + 1..];
                if rest.is_empty() {
                    usage();
                }
                return exit(validate(rest));
            }
            "--calls" => {
                i += 1;
                calls_per_thread = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                max_threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    if calls_per_thread == 0 || max_threads == 0 {
        usage();
    }
    run(calls_per_thread, max_threads)
}
