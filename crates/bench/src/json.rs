//! A minimal JSON value type with a parser and pretty-printer.
//!
//! The bench binary persists its measured trajectory as JSON so external
//! tooling can consume it, but the build environment has no access to
//! crates.io (no `serde`), so this module carries the ~200 lines of JSON
//! the harness actually needs: parse, pretty-print, and path accessors.
//! Object keys preserve insertion order to keep the emitted files stable
//! under append-and-rewrite.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; the harness emits counts and rates).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                // Emit integers without a fractional part so counts look
                // like counts.
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates are not needed by the harness's own
                        // files; map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar; the input is a &str so the
                // encoding is already valid.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("lrpc-bench/v1".into())),
            (
                "points".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("threads".into(), Json::Num(4.0)),
                    ("calls_per_sec".into(), Json::Num(23_262.5)),
                ])]),
            ),
            ("ok".into(), Json::Bool(true)),
            ("note".into(), Json::Null),
        ]);
        let text = doc.pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn preserves_key_order() {
        let parsed = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let Json::Obj(members) = &parsed else {
            panic!("not an object")
        };
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
    }

    #[test]
    fn escapes_survive() {
        let doc = Json::Str("line\nbreak \"quoted\" \\ tab\t".into());
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).pretty(), "42\n");
        assert_eq!(Json::Num(2.5).pretty(), "2.5\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors_navigate() {
        let doc = Json::parse(r#"{"points": [{"threads": 2}]}"#).unwrap();
        let threads = doc.get("points").unwrap().as_arr().unwrap()[0]
            .get("threads")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(threads, 2.0);
    }
}
