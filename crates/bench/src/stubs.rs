//! Host wall-clock benchmark of the stub phase: interpreter vs compiled
//! copy plans.
//!
//! The bind-time stub compiler (`idl::plan`) exists to make the simulator
//! *run* faster without changing what it *simulates*. This module measures
//! exactly that trade: for each Table-4 size class it times the per-call
//! stub-path work — the four stub halves plus the per-call scaffolding the
//! old interpreter path performed in stub context (byte-total iterator
//! sums, the stub-side touch-set page vectors rebuilt on every call, the
//! unconditional copy-log records) — once through the stub interpreter and
//! once through the compiled plan, and checks that the charged virtual
//! time is bit-identical between the two.
//!
//! The TLB charge for touching those pages is identical on both paths
//! (kernel simulation, not stub work) and stays out of the cycle; what the
//! plans removed is *building* the page sets per call, so the interpreted
//! leg materializes them the way `TouchPlan` used to while the compiled
//! leg walks the bind-time slices.
//!
//! The third column of the comparison is the Modula2+ marshaling path,
//! whose virtual cost is pinned at 4× the assembly stubs by the §3.3
//! experiment (`experiments::stubs`); cost linearity makes that ratio
//! independent of whether the assembly side runs interpreted or compiled.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use firefly::cost::CostModel;
use firefly::cpu::{Cpu, Machine};
use firefly::mem::{PageId, Region, PAGE_SIZE};
use firefly::meter::Meter;
use idl::plan::{ArgVec, ProcPlan};
use idl::stubgen::{compile, CompiledProc};
use idl::stubvm::{LocalFrame, OobStore, StubVm};
use idl::wire::Value;

use crate::common::BENCH_IDL;
use crate::experiments;

/// Default cycles per measurement leg.
pub const DEFAULT_ITERS: usize = 50_000;

/// Host-speedup floor the gate enforces on `Null`, `BigIn` and `BigInOut`.
pub const MIN_SPEEDUP: f64 = 2.0;

/// Stub-context touch-set sizes, from the binding's `TouchPlan` page
/// budget (`lrpc::touch`): the sets referenced while executing stub code.
/// The kernel-phase sets (kernel call/return) are dispatch work, not stub
/// work, and are excluded from both legs.
const CLIENT_CALL_PAGES: usize = 8;
const SERVER_SIDE_PAGES: usize = 12;
const CLIENT_RETURN_PAGES: usize = 5;

/// One size class, both ways.
#[derive(Clone, Debug)]
pub struct StubCycle {
    /// Procedure name (`Null`, `Add`, `BigIn`, `BigInOut`).
    pub name: &'static str,
    /// Host ns per interpreted stub cycle.
    pub interpreted_ns: f64,
    /// Host ns per compiled-plan stub cycle.
    pub compiled_ns: f64,
    /// interpreted / compiled.
    pub speedup: f64,
    /// Virtual ns one cycle charges (identical on both paths).
    pub virtual_ns: u64,
}

/// The full three-way stub comparison.
#[derive(Clone, Debug)]
pub struct StubBenchReport {
    /// Per-class host measurements.
    pub classes: Vec<StubCycle>,
    /// §3.3 assembly-stub virtual time (µs, 100-byte argument).
    pub assembly_us: f64,
    /// §3.3 Modula2+ marshaling virtual time (µs, same bytes).
    pub modula2_us: f64,
    /// Modula2+ / assembly — the paper's "factor of four".
    pub ratio: f64,
}

impl StubBenchReport {
    /// The acceptance gates: virtual cost preserved exactly, the host
    /// fast path at least [`MIN_SPEEDUP`]× quicker on `Null`, `BigIn` and
    /// `BigInOut`, and the §3.3 ratio still the paper's 4×.
    pub fn passes(&self) -> bool {
        self.gate_failures().is_empty()
    }

    /// Every gate violation, human-readable.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for c in &self.classes {
            if matches!(c.name, "Null" | "BigIn" | "BigInOut") && c.speedup < MIN_SPEEDUP {
                problems.push(format!(
                    "{}: compiled plan only {:.2}x faster than the interpreter \
                     (gate {MIN_SPEEDUP}x)",
                    c.name, c.speedup
                ));
            }
        }
        if !(3.5..=4.5).contains(&self.ratio) {
            problems.push(format!(
                "stub ratio {:.2}x outside the paper's ~4x (3.5..4.5)",
                self.ratio
            ));
        }
        problems
    }
}

/// The four Table-4 workloads: `(name, args, ret, outs)`.
#[allow(clippy::type_complexity)]
fn workloads() -> Vec<(&'static str, Vec<Value>, Option<Value>, Vec<(usize, Value)>)> {
    vec![
        ("Null", vec![], None, vec![]),
        (
            "Add",
            vec![Value::Int32(2), Value::Int32(3)],
            Some(Value::Int32(5)),
            vec![],
        ),
        ("BigIn", vec![Value::Bytes(vec![0xAB; 200])], None, vec![]),
        (
            "BigInOut",
            vec![Value::Bytes(vec![0xAB; 200])],
            None,
            vec![(0, Value::Bytes(vec![0xCD; 200]))],
        ),
    ]
}

/// The per-binding working-set pages the stub halves reference, mirroring
/// the binding's `TouchPlan`: the regions the page IDs come from, plus the
/// bind-time slices the compiled path walks instead of rebuilding them.
struct BenchRt {
    astack: Arc<Region>,
    client_rt: Arc<Region>,
    server_rt: Arc<Region>,
    client_call: Vec<PageId>,
    server_side: Vec<PageId>,
    client_return: Vec<PageId>,
}

impl BenchRt {
    fn new(machine: &Machine) -> BenchRt {
        let astack = machine.mem().alloc("stub-bench-astack", 4096);
        let client_rt = machine.mem().alloc(
            "stub-bench-client-rt",
            (CLIENT_CALL_PAGES + CLIENT_RETURN_PAGES) * PAGE_SIZE,
        );
        let server_rt = machine
            .mem()
            .alloc("stub-bench-server-rt", SERVER_SIDE_PAGES * PAGE_SIZE);
        let client_call = Self::pages(&client_rt, 0, CLIENT_CALL_PAGES);
        let server_side = Self::pages(&server_rt, 0, SERVER_SIDE_PAGES);
        let client_return = Self::pages(&client_rt, CLIENT_CALL_PAGES, CLIENT_RETURN_PAGES);
        BenchRt {
            astack,
            client_rt,
            server_rt,
            client_call,
            server_side,
            client_return,
        }
    }

    /// Builds one touch set the way the pre-plan `TouchPlan` did on every
    /// call (the compiled path does this once, at bind time).
    fn pages(region: &Region, first: usize, count: usize) -> Vec<PageId> {
        (first..first + count)
            .map(|p| PageId::of(region.id(), p * PAGE_SIZE))
            .collect()
    }
}

/// One interpreted stub cycle: the four interpreter halves plus the
/// per-call scaffolding the pre-plan call path executed every call —
/// byte-total sums over the layout, stub-context touch sets rebuilt as
/// fresh page vectors, and unconditional copy-log records.
#[allow(clippy::too_many_arguments)]
fn interpreted_cycle(
    proc: &CompiledProc,
    args: &[Value],
    ret: Option<&Value>,
    outs: &[(usize, Value)],
    frame: &mut LocalFrame,
    cost: &CostModel,
    cpu: &Cpu,
    meter: &mut Meter,
    rt: &BenchRt,
) {
    let in_bytes: usize = proc
        .layout
        .params
        .iter()
        .zip(&proc.def.params)
        .filter(|(_, p)| p.dir.is_in())
        .map(|(s, _)| s.size)
        .sum();
    let out_bytes: usize = proc
        .layout
        .params
        .iter()
        .zip(&proc.def.params)
        .filter(|(_, p)| p.dir.is_out())
        .map(|(s, _)| s.size)
        .sum::<usize>()
        + proc.layout.ret.as_ref().map_or(0, |s| s.size);
    black_box((in_bytes, out_bytes));

    let mut copies = idl::copyops::CopyLog::new();
    let mut oob = OobStore::new();
    let machine_cost = cpu.now(); // anchor so charges stay ordered
    black_box(machine_cost);

    // Client-call touch set and the A-stack page, materialized the way the
    // pre-plan path did on every call. Walking the pages happens inside
    // `touch_pages` on both paths and stays out of the cycle; the build is
    // what the plans removed.
    black_box(BenchRt::pages(&rt.client_rt, 0, CLIENT_CALL_PAGES));
    black_box(rt.astack.pages_for(0, 1).collect::<Vec<PageId>>());

    {
        let mut vm = StubVm::new(cost, cpu, meter);
        vm.client_push_args(proc, args, frame, &mut oob).unwrap();
    }
    for (slot, p) in proc.layout.params.iter().zip(&proc.def.params) {
        if p.dir.is_in() {
            copies.record(idl::copyops::CopyOp::A, slot.size);
        }
    }

    // Server-side touch set and the A-stack page again.
    black_box(BenchRt::pages(&rt.server_rt, 0, SERVER_SIDE_PAGES));
    black_box(rt.astack.pages_for(0, 1).collect::<Vec<PageId>>());

    {
        let mut vm = StubVm::new(cost, cpu, meter);
        let sargs = vm.server_read_args(proc, frame, &oob).unwrap();
        black_box(&sargs);
    }
    for (slot, p) in proc.layout.params.iter().zip(&proc.def.params) {
        if p.dir.is_in() && idl::stubvm::needs_server_copy(p, proc.def.inplace) {
            copies.record(idl::copyops::CopyOp::E, slot.size);
        }
    }
    {
        let mut vm = StubVm::new(cost, cpu, meter);
        vm.server_place_results(proc, ret, outs, frame, &mut oob)
            .unwrap();
        let _ = &mut vm;
    }

    // Client-return touch set and the A-stack page on the way back.
    black_box(BenchRt::pages(
        &rt.client_rt,
        CLIENT_CALL_PAGES,
        CLIENT_RETURN_PAGES,
    ));
    black_box(rt.astack.pages_for(0, 1).collect::<Vec<PageId>>());

    {
        let mut vm = StubVm::new(cost, cpu, meter);
        let fetched = vm.client_fetch_results(proc, frame, &oob).unwrap();
        black_box(&fetched);
    }
    if proc.layout.ret.is_some() {
        copies.record(
            idl::copyops::CopyOp::F,
            proc.layout.ret.as_ref().map_or(0, |s| s.size),
        );
    }
    for (slot, p) in proc.layout.params.iter().zip(&proc.def.params) {
        if p.dir.is_out() {
            copies.record(idl::copyops::CopyOp::F, slot.size);
        }
    }
    black_box(&copies);
}

/// One compiled stub cycle: exactly what the steady-state call path now
/// does — hoisted byte totals, bind-time touch sets walked as borrowed
/// slices, the A-stack page streamed from the region iterator, fused bulk
/// moves, no copy log on the unmetered path.
#[allow(clippy::too_many_arguments)]
fn compiled_cycle(
    proc: &CompiledProc,
    plan: &ProcPlan,
    args: &[Value],
    ret: Option<&Value>,
    outs: &[(usize, Value)],
    frame: &mut LocalFrame,
    cost: &CostModel,
    cpu: &Cpu,
    meter: &mut Meter,
    rt: &BenchRt,
) {
    black_box((plan.in_bytes, plan.out_bytes));

    black_box(rt.client_call.as_slice());
    drop(black_box(rt.astack.pages_for(0, 1)));
    {
        let mut vm = StubVm::new(cost, cpu, meter);
        plan.push
            .as_ref()
            .unwrap()
            .execute(proc, args, frame, &mut vm)
            .unwrap();
    }

    black_box(rt.server_side.as_slice());
    drop(black_box(rt.astack.pages_for(0, 1)));
    {
        let mut vm = StubVm::new(cost, cpu, meter);
        let mut sargs = ArgVec::new();
        plan.read
            .as_ref()
            .unwrap()
            .execute(frame, &mut vm, &mut sargs)
            .unwrap();
        black_box(sargs.as_slice());
    }
    plan.place
        .as_ref()
        .unwrap()
        .execute(ret, outs, frame)
        .unwrap();

    black_box(rt.client_return.as_slice());
    drop(black_box(rt.astack.pages_for(0, 1)));
    {
        let mut vm = StubVm::new(cost, cpu, meter);
        let fetched = plan
            .fetch
            .as_ref()
            .unwrap()
            .execute(frame, &mut vm)
            .unwrap();
        black_box(&fetched);
    }
}

/// Which leg a timing round runs.
#[derive(Clone, Copy, PartialEq)]
enum Leg {
    Interpreted,
    Compiled,
}

/// Times `iters` cycles of each leg, alternating the legs across rounds
/// so frequency scaling and scheduler noise land on both equally, and
/// returns the best (minimum) ns per cycle seen for each.
fn time_legs(iters: usize, mut f: impl FnMut(Leg)) -> (f64, f64) {
    const ROUNDS: usize = 5;
    let mut best = [f64::INFINITY; 2];
    for _ in 0..ROUNDS {
        for (i, leg) in [Leg::Interpreted, Leg::Compiled].into_iter().enumerate() {
            let start = Instant::now();
            for _ in 0..iters {
                f(leg);
            }
            best[i] = best[i].min(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
    (best[0], best[1])
}

/// Runs the full three-way comparison.
///
/// Panics if the compiled plan and the interpreter ever disagree on the
/// charged virtual time — the comparison is only meaningful while the
/// fast path is observationally identical.
pub fn run(iters: usize) -> StubBenchReport {
    let iface = compile(&idl::parse(BENCH_IDL).expect("bench idl"));
    let machine = Machine::cvax_uniprocessor();
    let rt = BenchRt::new(&machine);
    let cost = machine.cost();
    let cpu = machine.cpu(0);

    let mut classes = Vec::new();
    for (name, args, ret, outs) in workloads() {
        let proc = iface.proc_by_name(name).expect("bench proc");
        let plan = ProcPlan::compile(proc);
        assert!(
            plan.fully_compiled(),
            "every Table-4 class must compile: {}",
            plan.describe()
        );
        let mut frame = LocalFrame::new(proc.layout.astack_size);
        let mut meter = Meter::disabled();

        // Warm up, then pin down virtual-cost identity: one cycle on each
        // path from the same clock must charge the same nanoseconds.
        interpreted_cycle(
            proc,
            &args,
            ret.as_ref(),
            &outs,
            &mut frame,
            cost,
            cpu,
            &mut meter,
            &rt,
        );
        cpu.reset_clock();
        interpreted_cycle(
            proc,
            &args,
            ret.as_ref(),
            &outs,
            &mut frame,
            cost,
            cpu,
            &mut meter,
            &rt,
        );
        let interp_virtual = cpu.now().as_nanos();
        cpu.reset_clock();
        compiled_cycle(
            proc,
            &plan,
            &args,
            ret.as_ref(),
            &outs,
            &mut frame,
            cost,
            cpu,
            &mut meter,
            &rt,
        );
        let plan_virtual = cpu.now().as_nanos();
        assert_eq!(
            interp_virtual, plan_virtual,
            "{name}: compiled plan must charge the interpreter's exact virtual time"
        );

        let (interpreted_ns, compiled_ns) = time_legs(iters, |leg| match leg {
            Leg::Interpreted => interpreted_cycle(
                proc,
                &args,
                ret.as_ref(),
                &outs,
                &mut frame,
                cost,
                cpu,
                &mut meter,
                &rt,
            ),
            Leg::Compiled => compiled_cycle(
                proc,
                &plan,
                &args,
                ret.as_ref(),
                &outs,
                &mut frame,
                cost,
                cpu,
                &mut meter,
                &rt,
            ),
        });
        cpu.reset_clock();
        classes.push(StubCycle {
            name,
            interpreted_ns,
            compiled_ns,
            speedup: interpreted_ns / compiled_ns,
            virtual_ns: interp_virtual,
        });
    }

    let s = experiments::stubs();
    StubBenchReport {
        classes,
        assembly_us: s.assembly_us,
        modula2_us: s.modula2_us,
        ratio: s.ratio,
    }
}

/// Renders the report.
pub fn render(r: &StubBenchReport) -> String {
    let mut out = String::from(
        "Stub phase: interpreter vs compiled copy plans (host wall-clock)\n\
         class      interp(ns)  compiled(ns)  speedup  virtual(ns)\n\
         ----------------------------------------------------------\n",
    );
    for c in &r.classes {
        out.push_str(&format!(
            "{:<10} {:>10.1} {:>13.1} {:>7.2}x {:>12}\n",
            c.name, c.interpreted_ns, c.compiled_ns, c.speedup, c.virtual_ns
        ));
    }
    out.push_str(&format!(
        "\nSection 3.3 (virtual time, 100-byte argument): assembly {:.2}us, \
         Modula2+ {:.2}us, ratio {:.2}x\n",
        r.assembly_us, r.modula2_us, r.ratio
    ));
    for p in r.gate_failures() {
        out.push_str(&format!("GATE: {p}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_classes_compile_and_charge_identically() {
        // A tiny run exercises the virtual-identity assertions inside.
        let r = run(16);
        assert_eq!(r.classes.len(), 4);
        for c in &r.classes {
            assert!(c.interpreted_ns > 0.0 && c.compiled_ns > 0.0);
        }
        assert!((3.5..=4.5).contains(&r.ratio));
    }
}
