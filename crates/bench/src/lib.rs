//! Experiment harness for the LRPC reproduction.
//!
//! One function per table and figure of the paper, each running the
//! functional reproduction and comparing measured values against the
//! published ones. The `tables` binary prints every report; the Criterion
//! benches in `benches/` additionally measure the real (wall-clock)
//! behaviour of the Rust implementation.

pub mod ablations;
pub mod batch;
pub mod bulk;
pub mod common;
pub mod experiments;
pub mod host_parallel;
pub mod json;
pub mod phases;
pub mod rr;
pub mod stubs;
pub mod tail;
