//! Record/replay drivers: scenarios, artifact capture, the byte-equality
//! oracle, recording-overhead measurement, and the fault-knob shrinker.
//!
//! [`record`] runs a named scenario under a [`replay::Session`] in record
//! mode and packages every nondeterministic decision into a
//! [`RecordLog`], together with digests of the run's observable
//! artifacts: the normalized flight trace (`spans_to_json`), the metrics
//! snapshot, the final virtual clock, and the fault-event digest.
//! [`replay`] re-executes the scenario *from the log alone* — the fault
//! plan it installs is an all-zero dummy; every draw is answered from the
//! log — and checks the replayed artifacts byte-for-byte against the
//! recorded digests. [`shrink_chaos`] delta-debugs a failing chaos
//! configuration down to the fewest calls and fault knobs that still
//! reproduce the failure signature, verifying the minimized run under
//! record+replay.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use firefly::fault::{FaultConfig, FaultPlan};
use firefly::meter::Phase;
use firefly::vm::ContextId;
use idl::wire::Value;
use kernel::thread::Thread;
use lrpc::{
    AStackPolicy, AdaptPlan, Binding, BreakerConfig, Handler, LrpcRuntime, Recommendation,
    RecoveryConfig, Reply, ResilientClient, RetryPolicy, ServerCtx, TestRuntime,
};
use obs::{SpanRecord, TraceId};
use replay::{RecordLog, ReplayDivergence, Session};
use workload::trace::TraceModel;

use crate::common;

/// Maximum relative host-wall overhead recording may add to the serial
/// Figure-2 Null-call loop before the CI gate fails.
pub const MAX_RECORD_OVERHEAD: f64 = 0.10;

/// The interface of the chaos scenario. `Get` and `Stat` are idempotent
/// (retry-eligible); `Put` is not.
const RR_CHAOS_IDL: &str = r#"
    interface RrChaos {
        [astacks = 8] [idempotent = 1] procedure Get(x: int32) -> int32;
        [astacks = 8] procedure Put(x: int32) -> int32;
        [astacks = 8] [idempotent = 1] procedure Stat() -> int32;
    }
"#;

fn rr_chaos_handlers() -> Vec<Handler> {
    vec![
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Int32(x) = args[0] else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(x.wrapping_add(1))))
        }) as Handler,
        Box::new(|_: &ServerCtx, args: &[Value]| {
            let Value::Int32(x) = args[0] else {
                unreachable!("stubs decoded the declared types")
            };
            Ok(Reply::value(Value::Int32(x.wrapping_mul(2))))
        }) as Handler,
        Box::new(|_: &ServerCtx, _: &[Value]| Ok(Reply::value(Value::Int32(7)))) as Handler,
    ]
}

/// The recordable workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// A seeded chaos run: a resilient client replays a trace against a
    /// server with injected panics, forged bindings and dispatch delays.
    Chaos,
    /// The serial Figure-2 workload: steady-state Null calls on one CPU.
    Fig2,
    /// A seeded batched-chaos run: `call_batch` groups of mixed
    /// procedures under injected server panics, full submission rings
    /// and lost doorbells.
    Batch,
    /// A multi-CPU site run: calls dispatched across a 4-CPU Firefly
    /// with domain caching on and a fixed adaptive sizing plan applied
    /// at import, so idle-processor claims (`sched:idle-claim`) and
    /// sizing decisions (`adapt`) both land in the decision streams.
    Site,
}

impl ScenarioKind {
    /// Stable scenario name, stored in the log's metadata.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Chaos => "chaos",
            ScenarioKind::Fig2 => "fig2",
            ScenarioKind::Batch => "batch",
            ScenarioKind::Site => "site",
        }
    }

    /// Parses a scenario name (the CLI's `--scenario` value).
    pub fn parse(name: &str) -> Option<ScenarioKind> {
        match name {
            "chaos" => Some(ScenarioKind::Chaos),
            "fig2" => Some(ScenarioKind::Fig2),
            "batch" => Some(ScenarioKind::Batch),
            "site" => Some(ScenarioKind::Site),
            _ => None,
        }
    }
}

/// One concrete scenario instance.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Which workload to run.
    pub kind: ScenarioKind,
    /// Seed for the fault schedule and the retry jitter.
    pub seed: u64,
    /// Workload size (trace events for chaos, Null calls for fig2).
    pub calls: usize,
}

impl Scenario {
    /// A chaos scenario.
    pub fn chaos(seed: u64, calls: usize) -> Scenario {
        Scenario {
            kind: ScenarioKind::Chaos,
            seed,
            calls,
        }
    }

    /// A Figure-2 scenario.
    pub fn fig2(calls: usize) -> Scenario {
        Scenario {
            kind: ScenarioKind::Fig2,
            seed: 0,
            calls,
        }
    }

    /// A batched-chaos scenario.
    pub fn batch(seed: u64, calls: usize) -> Scenario {
        Scenario {
            kind: ScenarioKind::Batch,
            seed,
            calls,
        }
    }

    /// A multi-CPU site scenario.
    pub fn site(seed: u64, calls: usize) -> Scenario {
        Scenario {
            kind: ScenarioKind::Site,
            seed,
            calls,
        }
    }
}

/// The chaos scenario's default fault schedule for `seed`.
pub fn chaos_fault_config(seed: u64) -> FaultConfig {
    FaultConfig {
        server_panic_every: 7,
        forge_binding_every: 11,
        dispatch_delay_us: 5,
        ..FaultConfig::with_seed(seed)
    }
}

/// The batched-chaos scenario's default fault schedule for `seed`: the
/// ring-specific fault sites (submission ring presented as full, lost
/// doorbells) on top of server panics and dispatch delays.
pub fn batch_fault_config(seed: u64) -> FaultConfig {
    FaultConfig {
        server_panic_every: 5,
        ring_full_every: 7,
        doorbell_lost_every: 3,
        dispatch_delay_us: 2,
        ..FaultConfig::with_seed(seed)
    }
}

/// Everything observable about one scenario run, captured for the
/// byte-equality oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunArtifacts {
    /// `spans_to_json` over the run's flight spans, trace ids normalized
    /// to dense per-run indices (raw ids are a process-global counter).
    pub trace_json: String,
    /// `metrics_to_json` over the runtime's final metrics snapshot.
    pub metrics_json: String,
    /// Final virtual clock of CPU 0, nanoseconds.
    pub vtime_ns: u64,
    /// The fault plan's event digest (0 when no plan is installed).
    pub fault_digest: u64,
    /// Fault events injected.
    pub fault_events: u64,
    /// Client calls that succeeded.
    pub ok: u32,
    /// Client calls that failed.
    pub err: u32,
}

/// 64-bit FNV-1a, used for the artifact digests stored in log metadata.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Rewrites raw (process-global) trace ids as dense 1-based per-run
/// indices, in ascending allocation order. Two runs of the same scenario
/// then produce byte-identical `spans_to_json` no matter how many trace
/// ids the rest of the process consumed in between.
fn normalize_trace_ids(spans: &mut [SpanRecord]) {
    let mut ids: Vec<u64> = spans.iter().map(|s| s.trace.raw()).collect();
    ids.sort_unstable();
    ids.dedup();
    for s in spans.iter_mut() {
        let dense = ids
            .binary_search(&s.trace.raw())
            .expect("own id is present") as u64
            + 1;
        s.trace = TraceId::from_raw(dense);
    }
}

/// Maps one workload-trace event onto the chaos interface.
fn event_call(rank: usize, bytes: u32) -> (&'static str, Vec<Value>) {
    match rank % 3 {
        0 => ("Get", vec![Value::Int32(bytes as i32)]),
        1 => ("Put", vec![Value::Int32(bytes as i32)]),
        _ => ("Stat", vec![]),
    }
}

/// A run in progress: the runtime plus the call driver.
struct ScenarioRun {
    rt: Arc<LrpcRuntime>,
    plan: Option<Arc<FaultPlan>>,
    driver: Driver,
}

enum Driver {
    Chaos(Box<ResilientClient>),
    Fig2 {
        thread: Arc<Thread>,
        binding: Binding,
    },
    Batch {
        thread: Arc<Thread>,
        binding: Binding,
    },
    Site {
        threads: Vec<Arc<Thread>>,
        bindings: Vec<Binding>,
        server_ctx: ContextId,
    },
}

/// Client domains in the site scenario.
const SITE_CLIENTS: usize = 2;

/// CPUs in the site scenario's simulated Firefly.
const SITE_CPUS: usize = 4;

/// The site scenario's fixed sizing plan. A real adaptive run harvests
/// this from a prior leg's histograms; the recorded fixture pins the
/// import-time application path (and its `adapt` decision stream)
/// without depending on the controller's tuning.
fn site_adapt_plan() -> Arc<AdaptPlan> {
    let mut plan = AdaptPlan::default();
    plan.per_interface.insert(
        "RrChaos".to_string(),
        Recommendation {
            astacks: 4,
            ring_slots: 32,
        },
    );
    Arc::new(plan)
}

/// Calls per submitted batch in the batched-chaos scenario.
const BATCH_GROUP: usize = 8;

/// Maps one workload-trace event onto the chaos interface by procedure
/// index (the shape `call_batch` takes).
fn event_call_indexed(rank: usize, bytes: u32) -> (usize, Vec<Value>) {
    match rank % 3 {
        0 => (0, vec![Value::Int32(bytes as i32)]),
        1 => (1, vec![Value::Int32(bytes as i32)]),
        _ => (2, vec![]),
    }
}

fn build(sc: Scenario, fault: &FaultConfig, session: &Arc<Session>) -> ScenarioRun {
    let mut builder = TestRuntime::new()
        .domain_caching(false)
        .astack_policy(AStackPolicy::Fail)
        .session(Arc::clone(session));
    if sc.kind == ScenarioKind::Site {
        builder = builder
            .cpus(SITE_CPUS)
            .domain_caching(true)
            .adapt(site_adapt_plan());
    }
    let rt = builder.build();
    match sc.kind {
        ScenarioKind::Chaos => {
            let server = rt.kernel().create_domain("rr-chaos-server");
            rt.export(&server, RR_CHAOS_IDL, rr_chaos_handlers())
                .expect("export");
            let plan = FaultPlan::new(fault.clone());
            rt.set_fault_plan(Some(Arc::clone(&plan)));
            let app = rt.kernel().create_domain("rr-chaos-app");
            let client = ResilientClient::import(
                &rt,
                &app,
                "RrChaos",
                RecoveryConfig {
                    // No host-time watchdog: the scenario injects no
                    // hangs, and a wall-clock deadline is itself a
                    // nondeterministic decision the log cannot answer.
                    deadline: None,
                    retry: RetryPolicy {
                        max_retries: 2,
                        ..RetryPolicy::default()
                    },
                    breaker: BreakerConfig {
                        trip_after: 3,
                        cooldown_rejects: 2,
                    },
                    jitter_seed: sc.seed,
                    ..RecoveryConfig::default()
                },
            )
            .expect("import");
            ScenarioRun {
                rt,
                plan: Some(plan),
                driver: Driver::Chaos(Box::new(client)),
            }
        }
        ScenarioKind::Fig2 => {
            let server = rt.kernel().create_domain("bench-server");
            rt.export(&server, common::BENCH_IDL, common::lrpc_bench_handlers())
                .expect("export");
            let client = rt.kernel().create_domain("bench-client");
            let thread = rt.kernel().spawn_thread(&client);
            let binding = rt.import(&client, "Bench").expect("import");
            ScenarioRun {
                rt,
                plan: None,
                driver: Driver::Fig2 { thread, binding },
            }
        }
        ScenarioKind::Batch => {
            let server = rt.kernel().create_domain("rr-batch-server");
            rt.export(&server, RR_CHAOS_IDL, rr_chaos_handlers())
                .expect("export");
            let plan = FaultPlan::new(fault.clone());
            rt.set_fault_plan(Some(Arc::clone(&plan)));
            let app = rt.kernel().create_domain("rr-batch-app");
            let thread = rt.kernel().spawn_thread(&app);
            let binding = rt.import(&app, "RrChaos").expect("import");
            ScenarioRun {
                rt,
                plan: Some(plan),
                driver: Driver::Batch { thread, binding },
            }
        }
        ScenarioKind::Site => {
            // No fault plan: the fixture pins the clean multi-CPU path —
            // idle-processor claims, per-interface cache counters and
            // import-time adaptive sizing, not fault handling.
            let server = rt.kernel().create_domain("rr-site-server");
            let server_ctx = server.ctx().id();
            rt.export(&server, RR_CHAOS_IDL, rr_chaos_handlers())
                .expect("export");
            let mut threads = Vec::with_capacity(SITE_CLIENTS);
            let mut bindings = Vec::with_capacity(SITE_CLIENTS);
            for i in 0..SITE_CLIENTS {
                let client = rt.kernel().create_domain(format!("rr-site-client-{i}"));
                threads.push(rt.kernel().spawn_thread(&client));
                bindings.push(rt.import(&client, "RrChaos").expect("import"));
            }
            ScenarioRun {
                rt,
                plan: None,
                driver: Driver::Site {
                    threads,
                    bindings,
                    server_ctx,
                },
            }
        }
    }
}

fn drive(run: &ScenarioRun, sc: Scenario) -> (u32, u32) {
    match &run.driver {
        Driver::Chaos(client) => {
            let trace = TraceModel::taos().generate(sc.seed, sc.calls);
            let (mut ok, mut err) = (0, 0);
            for ev in &trace.events {
                let (proc, args) = event_call(ev.proc_rank, ev.bytes);
                match client.call(proc, &args) {
                    Ok(_) => ok += 1,
                    Err(_) => err += 1,
                }
            }
            (ok, err)
        }
        Driver::Fig2 { thread, binding } => {
            for _ in 0..sc.calls {
                binding
                    .call(0, thread, "Null", &[])
                    .expect("fig2 Null call");
            }
            (sc.calls as u32, 0)
        }
        Driver::Site {
            threads,
            bindings,
            server_ctx,
        } => {
            // A compact version of the tail benchmark's multiprocessor
            // driver: each call dispatches on the earliest-clock CPU and
            // the finishing CPU parks idling in the server's context, so
            // the next call's transfer claims it with a processor
            // exchange (Section 3.4) — every claim is a recorded
            // `sched:idle-claim` decision.
            let machine = run.rt.kernel().machine();
            let n = machine.num_cpus();
            let trace = TraceModel::taos().generate(sc.seed, sc.calls);
            let (mut ok, mut err) = (0, 0);
            for (rank, ev) in trace.events.iter().enumerate() {
                let (proc_index, args) = event_call_indexed(ev.proc_rank, ev.bytes);
                let cpu_id = (0..n)
                    .min_by_key(|&i| (machine.cpu(i).now(), i))
                    .expect("the machine has CPUs");
                machine.cpu(cpu_id).set_idle_in(None);
                let slot = rank % SITE_CLIENTS;
                match bindings[slot].call_unmetered(cpu_id, &threads[slot], proc_index, &args) {
                    Ok(out) => {
                        ok += 1;
                        machine.cpu(out.end_cpu).set_idle_in(Some(*server_ctx));
                    }
                    Err(_) => err += 1,
                }
            }
            (ok, err)
        }
        Driver::Batch { thread, binding } => {
            let trace = TraceModel::taos().generate(sc.seed, sc.calls);
            let (mut ok, mut err) = (0, 0);
            for group in trace.events.chunks(BATCH_GROUP) {
                let requests: Vec<(usize, Vec<Value>)> = group
                    .iter()
                    .map(|ev| event_call_indexed(ev.proc_rank, ev.bytes))
                    .collect();
                match binding.call_batch(0, thread, requests) {
                    Ok(out) => {
                        for r in &out.results {
                            match r {
                                Ok(_) => ok += 1,
                                Err(_) => err += 1,
                            }
                        }
                    }
                    Err(_) => err += group.len() as u32,
                }
            }
            (ok, err)
        }
    }
}

/// Runs one scenario under `session`, capturing the full artifact set.
/// The caller must hold [`common::flight_lock`] across the call.
fn run_scenario(sc: Scenario, fault: &FaultConfig, session: &Arc<Session>) -> RunArtifacts {
    let run = build(sc, fault, session);

    // Trace-id watermarks bracket the run: every id the run allocates is
    // strictly between them, so spans from earlier (or parallel,
    // lock-excluded) activity are filtered out of the capture.
    let lo = TraceId::next().raw();
    obs::flight::enable();
    let (ok, err) = drive(&run, sc);
    obs::flight::disable();
    let hi = TraceId::next().raw();

    let mut spans: Vec<SpanRecord> = obs::flight::snapshot()
        .into_iter()
        .filter(|s| s.trace.raw() > lo && s.trace.raw() < hi)
        .collect();
    normalize_trace_ids(&mut spans);
    let trace_json = obs::spans_to_json(&spans, &|code| Phase::from_code(code).label().to_string());
    let metrics_json = obs::metrics_to_json(&run.rt.collect_metrics());
    RunArtifacts {
        trace_json,
        metrics_json,
        vtime_ns: run.rt.kernel().machine().cpu(0).now().as_nanos(),
        fault_digest: run.plan.as_ref().map_or(0, |p| p.digest()),
        fault_events: run.plan.as_ref().map_or(0, |p| p.event_count() as u64),
        ok,
        err,
    }
}

/// A finished recording: the decision log plus the run's artifacts.
#[derive(Debug)]
pub struct Recording {
    /// The decision log, with scenario parameters and artifact digests in
    /// its metadata block.
    pub log: RecordLog,
    /// The recorded run's artifacts.
    pub artifacts: RunArtifacts,
}

/// Records `sc` under its default fault schedule.
pub fn record(sc: Scenario) -> Recording {
    let fault = match sc.kind {
        ScenarioKind::Chaos => chaos_fault_config(sc.seed),
        ScenarioKind::Fig2 | ScenarioKind::Site => FaultConfig::default(),
        ScenarioKind::Batch => batch_fault_config(sc.seed),
    };
    record_with(sc, &fault)
}

/// Records `sc` under an explicit fault schedule (the shrinker's probe).
pub fn record_with(sc: Scenario, fault: &FaultConfig) -> Recording {
    let _flight = common::flight_lock();
    let session = Session::recorder();
    let artifacts = run_scenario(sc, fault, &session);
    session.set_meta("scenario", sc.kind.name());
    session.set_meta("seed", &sc.seed.to_string());
    session.set_meta("calls", &sc.calls.to_string());
    session.set_meta("fault_config", &format!("{fault:?}"));
    session.set_meta(
        "trace_digest",
        &fnv1a(artifacts.trace_json.as_bytes()).to_string(),
    );
    session.set_meta(
        "metrics_digest",
        &fnv1a(artifacts.metrics_json.as_bytes()).to_string(),
    );
    session.set_meta("vtime_ns", &artifacts.vtime_ns.to_string());
    session.set_meta("fault_digest", &artifacts.fault_digest.to_string());
    session.set_meta("fault_events", &artifacts.fault_events.to_string());
    session.set_meta("ok", &artifacts.ok.to_string());
    session.set_meta("err", &artifacts.err.to_string());
    Recording {
        log: session.finish(),
        artifacts,
    }
}

/// The outcome of replaying a log.
pub struct ReplayReport {
    /// Artifacts of the replayed run.
    pub artifacts: RunArtifacts,
    /// First decision that mismatched the log, if any.
    pub divergence: Option<ReplayDivergence>,
    /// Logged decisions the replayed run never consumed (it made fewer
    /// decisions than the recording).
    pub unconsumed: usize,
    /// Artifact fields that differ from the recorded run, as
    /// `name: recorded vs replayed` lines.
    pub mismatches: Vec<String>,
}

impl ReplayReport {
    /// True when the replayed run consumed the whole log without a single
    /// divergence and every artifact matches the recording byte-for-byte.
    pub fn is_identical(&self) -> bool {
        self.divergence.is_none() && self.unconsumed == 0 && self.mismatches.is_empty()
    }
}

fn meta_u64(meta: &BTreeMap<String, String>, key: &str) -> Result<u64, String> {
    meta.get(key)
        .ok_or_else(|| format!("log metadata is missing `{key}`"))?
        .parse()
        .map_err(|_| format!("log metadata `{key}` is not a number"))
}

/// Reconstructs the scenario a log was recorded from.
pub fn scenario_of(log: &RecordLog) -> Result<Scenario, String> {
    let name = log
        .meta
        .get("scenario")
        .ok_or("log metadata is missing `scenario`")?;
    let kind =
        ScenarioKind::parse(name).ok_or_else(|| format!("unknown scenario `{name}` in log"))?;
    Ok(Scenario {
        kind,
        seed: meta_u64(&log.meta, "seed")?,
        calls: meta_u64(&log.meta, "calls")? as usize,
    })
}

/// Replays a recorded log from the log alone: the scenario is rebuilt
/// from the metadata block, the fault plan is an all-zero dummy (every
/// draw is answered from the log), and the replayed artifacts are checked
/// byte-for-byte against the recorded digests.
pub fn replay(log: &RecordLog) -> Result<ReplayReport, String> {
    let sc = scenario_of(log)?;
    let _flight = common::flight_lock();
    let session = Session::replayer(log);
    let artifacts = run_scenario(sc, &FaultConfig::default(), &session);

    let mut mismatches = Vec::new();
    let digest = |s: &str| fnv1a(s.as_bytes()).to_string();
    for (key, got) in [
        ("trace_digest", digest(&artifacts.trace_json)),
        ("metrics_digest", digest(&artifacts.metrics_json)),
        ("vtime_ns", artifacts.vtime_ns.to_string()),
        ("fault_digest", artifacts.fault_digest.to_string()),
        ("fault_events", artifacts.fault_events.to_string()),
        ("ok", artifacts.ok.to_string()),
        ("err", artifacts.err.to_string()),
    ] {
        match log.meta.get(key) {
            Some(recorded) if *recorded == got => {}
            Some(recorded) => {
                mismatches.push(format!("{key}: recorded {recorded} vs replayed {got}"))
            }
            None => mismatches.push(format!("{key}: missing from log metadata")),
        }
    }
    Ok(ReplayReport {
        artifacts,
        divergence: session.divergence(),
        unconsumed: session.unconsumed(),
        mismatches,
    })
}

/// Recording overhead on the serial Figure-2 Null-call loop: identical
/// workloads timed live and in record mode, best-of-3 host wall each.
pub struct OverheadReport {
    /// Calls per timed loop.
    pub calls: usize,
    /// Best live host wall, ns/call.
    pub live_ns_per_call: f64,
    /// Best recording host wall, ns/call.
    pub record_ns_per_call: f64,
    /// `(record - live) / live`, floored at 0.
    pub overhead: f64,
    /// Decision events one recorded loop captured.
    pub events: usize,
}

impl OverheadReport {
    /// True if recording stayed within [`MAX_RECORD_OVERHEAD`].
    pub fn passes(&self) -> bool {
        self.overhead <= MAX_RECORD_OVERHEAD
    }
}

/// Measures [`OverheadReport`] for `calls` Null calls.
pub fn measure_overhead(calls: usize) -> OverheadReport {
    let _flight = common::flight_lock();
    let sc = Scenario::fig2(calls);
    let time_once = |session: &Arc<Session>| -> f64 {
        let run = build(sc, &FaultConfig::default(), session);
        let Driver::Fig2 { thread, binding } = &run.driver else {
            unreachable!("fig2 scenario builds a fig2 driver")
        };
        binding.call(0, thread, "Null", &[]).expect("warmup");
        binding.call(0, thread, "Null", &[]).expect("warmup");
        let t0 = Instant::now();
        for _ in 0..calls {
            binding.call(0, thread, "Null", &[]).expect("timed Null");
        }
        t0.elapsed().as_secs_f64() * 1e9 / calls.max(1) as f64
    };
    // Interleave live/record iterations so slow host phases (frequency
    // scaling, noisy neighbours) hit both modes alike, and take the best
    // of each: the minima approximate the undisturbed cost.
    let mut live_ns_per_call = f64::INFINITY;
    let mut record_ns_per_call = f64::INFINITY;
    let mut events = 0;
    for _ in 0..5 {
        live_ns_per_call = live_ns_per_call.min(time_once(&Session::live()));
        let session = Session::recorder();
        record_ns_per_call = record_ns_per_call.min(time_once(&session));
        events = session.event_count();
    }
    OverheadReport {
        calls,
        live_ns_per_call,
        record_ns_per_call,
        overhead: ((record_ns_per_call - live_ns_per_call) / live_ns_per_call).max(0.0),
        events,
    }
}

/// The result of shrinking a failing chaos run.
#[derive(Debug)]
pub struct ShrinkOutcome {
    /// The minimized fault schedule.
    pub config: FaultConfig,
    /// The minimized call count.
    pub calls: usize,
    /// Candidate runs evaluated.
    pub steps: usize,
    /// The minimized run, recorded.
    pub recording: Recording,
    /// True if the minimized recording replays identically and the
    /// replayed run still exhibits the failure signature.
    pub replay_verified: bool,
}

/// One shrinkable `u64` fault knob: accessors plus how to make its
/// schedule sparser when it cannot be disabled outright (every-N knobs
/// double their interval; magnitude knobs halve their value).
struct U64Knob {
    get: fn(&FaultConfig) -> u64,
    set: fn(&mut FaultConfig, u64),
    sparser: fn(u64) -> u64,
}

fn u64_knobs() -> Vec<U64Knob> {
    fn double(v: u64) -> u64 {
        v.saturating_mul(2)
    }
    fn halve(v: u64) -> u64 {
        v / 2
    }
    vec![
        U64Knob {
            get: |c| c.server_panic_every,
            set: |c, v| c.server_panic_every = v,
            sparser: double,
        },
        U64Knob {
            get: |c| c.server_hang_every,
            set: |c, v| c.server_hang_every = v,
            sparser: double,
        },
        U64Knob {
            get: |c| c.forge_binding_every,
            set: |c, v| c.forge_binding_every = v,
            sparser: double,
        },
        U64Knob {
            get: |c| c.terminate_server_after,
            set: |c, v| c.terminate_server_after = v,
            sparser: double,
        },
        U64Knob {
            get: |c| c.ring_full_every,
            set: |c, v| c.ring_full_every = v,
            sparser: double,
        },
        U64Knob {
            get: |c| c.doorbell_lost_every,
            set: |c, v| c.doorbell_lost_every = v,
            sparser: double,
        },
        U64Knob {
            get: |c| c.dispatch_delay_us,
            set: |c, v| c.dispatch_delay_us = v,
            sparser: halve,
        },
        U64Knob {
            get: |c| c.packet_delay_us,
            set: |c, v| c.packet_delay_us = v,
            sparser: halve,
        },
    ]
}

/// Delta-debugs a failing chaos run: starting from `initial` and
/// `initial_calls`, repeatedly bisects the call count and disables or
/// sparsifies fault knobs, keeping every change under which `failing`
/// still holds, until a fixpoint. Every probe is a fresh deterministic
/// recording, so the search is reproducible. Returns `None` if the
/// initial configuration does not exhibit the failure signature.
pub fn shrink_chaos(
    seed: u64,
    initial: &FaultConfig,
    initial_calls: usize,
    failing: &dyn Fn(&RunArtifacts) -> bool,
) -> Option<ShrinkOutcome> {
    let mut steps = 0usize;
    let mut probe = |config: &FaultConfig, calls: usize| -> bool {
        steps += 1;
        failing(&record_with(Scenario::chaos(seed, calls), config).artifacts)
    };

    let mut config = initial.clone();
    let mut calls = initial_calls;
    if !probe(&config, calls) {
        return None;
    }

    loop {
        let mut changed = false;

        // Bisect the workload first: fewer calls shrink every stream.
        while calls >= 2 && probe(&config, calls / 2) {
            calls /= 2;
            changed = true;
        }

        // Flag knobs: off or on, nothing in between.
        for (get, set) in [
            (
                (|c: &FaultConfig| c.astack_exhaust) as fn(&FaultConfig) -> bool,
                (|c: &mut FaultConfig| c.astack_exhaust = false) as fn(&mut FaultConfig),
            ),
            (
                |c: &FaultConfig| c.bulk_exhaust,
                |c: &mut FaultConfig| c.bulk_exhaust = false,
            ),
        ] {
            if !get(&config) {
                continue;
            }
            let mut cand = config.clone();
            set(&mut cand);
            if probe(&cand, calls) {
                config = cand;
                changed = true;
            }
        }

        // Probability knobs: try zero.
        for set in [
            (|c: &mut FaultConfig| c.packet_loss = 0.0) as fn(&mut FaultConfig),
            |c: &mut FaultConfig| c.packet_dup = 0.0,
            |c: &mut FaultConfig| c.packet_delay_prob = 0.0,
        ] {
            let mut cand = config.clone();
            set(&mut cand);
            if cand != config && probe(&cand, calls) {
                config = cand;
                changed = true;
            }
        }

        // Numeric knobs: disable outright if the signature survives,
        // otherwise make the schedule sparser one notch per round.
        for knob in u64_knobs() {
            let current = (knob.get)(&config);
            if current == 0 {
                continue;
            }
            let mut cand = config.clone();
            (knob.set)(&mut cand, 0);
            if probe(&cand, calls) {
                config = cand;
                changed = true;
                continue;
            }
            let sparser = (knob.sparser)(current);
            if sparser != current && sparser != 0 {
                let mut cand = config.clone();
                (knob.set)(&mut cand, sparser);
                if probe(&cand, calls) {
                    config = cand;
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }
    }

    // Verify the minimized run end to end: record it, replay it from the
    // log alone, and require both byte-identity and the failure signature
    // on the *replayed* artifacts.
    let recording = record_with(Scenario::chaos(seed, calls), &config);
    let replay_verified = match replay(&recording.log) {
        Ok(report) => report.is_identical() && failing(&report.artifacts),
        Err(_) => false,
    };
    Some(ShrinkOutcome {
        config,
        calls,
        steps,
        recording,
        replay_verified,
    })
}

/// The default failure signature: the client observed at least one error.
pub fn client_saw_errors(artifacts: &RunArtifacts) -> bool {
    artifacts.err > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for kind in [
            ScenarioKind::Chaos,
            ScenarioKind::Fig2,
            ScenarioKind::Batch,
            ScenarioKind::Site,
        ] {
            assert_eq!(ScenarioKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ScenarioKind::parse("nope"), None);
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn trace_normalization_is_dense_and_order_preserving() {
        let span = |raw: u64, start: u64| SpanRecord {
            trace: TraceId::from_raw(raw),
            phase: 1,
            start_ns: start,
            dur_ns: 1,
        };
        let mut spans = vec![span(900, 0), span(17, 1), span(900, 2), span(44, 3)];
        normalize_trace_ids(&mut spans);
        let raws: Vec<u64> = spans.iter().map(|s| s.trace.raw()).collect();
        assert_eq!(raws, vec![3, 1, 3, 2], "ascending raw -> dense 1-based");
    }

    #[test]
    fn fig2_record_replays_byte_identically() {
        let rec = record(Scenario::fig2(20));
        assert!(rec.log.total_events() > 0, "the run recorded decisions");
        assert_eq!(rec.artifacts.ok, 20);
        let report = replay(&rec.log).expect("well-formed log");
        assert!(
            report.is_identical(),
            "divergence {:?}, unconsumed {}, mismatches {:?}",
            report.divergence,
            report.unconsumed,
            report.mismatches
        );
        assert_eq!(report.artifacts, rec.artifacts);
    }

    #[test]
    fn chaos_record_replays_byte_identically_from_the_log_alone() {
        let rec = record(Scenario::chaos(42, 60));
        assert!(rec.artifacts.err > 0, "the schedule injected failures");
        assert!(rec.artifacts.fault_events > 0);
        // replay() installs a zero-knob dummy plan: every fault draw must
        // be answered from the log, or the artifacts cannot match.
        let report = replay(&rec.log).expect("well-formed log");
        assert!(
            report.is_identical(),
            "divergence {:?}, unconsumed {}, mismatches {:?}",
            report.divergence,
            report.unconsumed,
            report.mismatches
        );
        assert_eq!(report.artifacts.trace_json, rec.artifacts.trace_json);
        assert_eq!(report.artifacts.metrics_json, rec.artifacts.metrics_json);
    }

    #[test]
    fn batch_record_replays_byte_identically_from_the_log_alone() {
        let rec = record(Scenario::batch(5, 48));
        assert!(rec.artifacts.err > 0, "the schedule injected failures");
        assert!(rec.artifacts.fault_events > 0);
        let report = replay(&rec.log).expect("well-formed log");
        assert!(
            report.is_identical(),
            "divergence {:?}, unconsumed {}, mismatches {:?}",
            report.divergence,
            report.unconsumed,
            report.mismatches
        );
        assert_eq!(report.artifacts, rec.artifacts);
    }

    #[test]
    fn site_record_replays_byte_identically_and_claims_processors() {
        let rec = record(Scenario::site(3, 48));
        assert_eq!(rec.artifacts.err, 0, "the clean site run has no faults");
        assert_eq!(rec.artifacts.ok, 48);
        let claims = rec
            .log
            .streams
            .get("sched:idle-claim")
            .expect("multi-CPU dispatch probes the idle set");
        assert!(
            claims.iter().any(|e| e.payload != 0),
            "at least one probe claimed a parked processor"
        );
        assert!(
            rec.log.streams.contains_key("adapt"),
            "import applied the sizing plan as a recorded decision"
        );
        let report = replay(&rec.log).expect("well-formed log");
        assert!(
            report.is_identical(),
            "divergence {:?}, unconsumed {}, mismatches {:?}",
            report.divergence,
            report.unconsumed,
            report.mismatches
        );
        assert_eq!(report.artifacts, rec.artifacts);
    }

    #[test]
    fn shrinker_minimizes_a_failing_chaos_run() {
        let outcome = shrink_chaos(7, &chaos_fault_config(7), 64, &client_saw_errors)
            .expect("the initial schedule fails");
        assert!(outcome.calls <= 64);
        assert!(outcome.steps > 0);
        assert!(
            outcome.replay_verified,
            "the minimized run must replay identically and still fail"
        );
        // The shrinker must have simplified something: fewer calls or at
        // least one knob disabled relative to the initial schedule.
        let initial = chaos_fault_config(7);
        assert!(
            outcome.calls < 64
                || outcome.config.server_panic_every != initial.server_panic_every
                || outcome.config.forge_binding_every != initial.forge_binding_every
                || outcome.config.dispatch_delay_us != initial.dispatch_delay_us,
            "nothing was shrunk: {:?}",
            outcome.config
        );
    }

    #[test]
    fn shrinker_rejects_a_passing_run() {
        // A quiescent schedule injects nothing, so the signature never
        // holds and the shrinker must say so rather than "minimize".
        assert!(shrink_chaos(7, &FaultConfig::with_seed(7), 8, &client_saw_errors).is_none());
    }
}
