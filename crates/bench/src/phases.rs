//! Flight-recorder replay: Table-4/5 phase breakdowns from recorded
//! spans.
//!
//! Where [`crate::experiments::table5`] reads the per-call [`Meter`]'s
//! segment list, this module reconstructs the same breakdown from the
//! *flight recorder* — the lock-free per-thread span rings of
//! [`obs::flight`] — and diffs it against [`CostModel`]'s predictions.
//! Agreement proves the observability plane end to end: every charged
//! phase of a Null call must appear in the recorded flight, sum to the
//! model's 157 µs, and cost nothing on the virtual clock.
//!
//! [`Meter`]: firefly::meter::Meter

use std::collections::BTreeMap;

use firefly::cost::CostModel;
use firefly::meter::Phase;
use firefly::time::Nanos;
use obs::SpanRecord;

use crate::common::{format_table, LrpcEnv};
use crate::json::Json;

/// Maximum relative drift between the flight-reconstructed Table-5 total
/// and [`CostModel::lrpc_null_serial`] before `--check` fails.
pub const MAX_TOTAL_DRIFT: f64 = 0.01;

/// Maximum relative virtual-time overhead the enabled recorder may add to
/// a Null call before `--check` fails. The recorder is designed to add
/// *zero* virtual time; the 5 % gate catches anything that starts
/// charging the clock.
pub const MAX_RECORDER_OVERHEAD: f64 = 0.05;

/// Per-phase totals of one recorded call.
#[derive(Clone, Debug)]
pub struct PhaseBreakdown {
    /// `(phase, total)` for every phase with non-zero recorded time, in
    /// phase-code order.
    pub totals: Vec<(Phase, Nanos)>,
    /// Sum of every recorded span.
    pub total: Nanos,
    /// Number of spans aggregated.
    pub span_count: usize,
}

/// Aggregates one call's flight spans phase by phase.
pub fn aggregate(spans: &[SpanRecord]) -> PhaseBreakdown {
    let mut by_phase: BTreeMap<u16, Nanos> = BTreeMap::new();
    for s in spans {
        *by_phase.entry(s.phase).or_insert(Nanos::ZERO) += Nanos::from_nanos(s.dur_ns);
    }
    let totals: Vec<(Phase, Nanos)> = by_phase
        .into_iter()
        .map(|(code, dur)| (Phase::from_code(code), dur))
        .collect();
    let total = totals.iter().map(|&(_, d)| d).sum();
    PhaseBreakdown {
        totals,
        total,
        span_count: spans.len(),
    }
}

/// One Table-5 row reconstructed from a flight: the measured time next to
/// the cost model's prediction.
#[derive(Clone, Debug)]
pub struct FlightRow {
    /// Table-5 operation name.
    pub operation: String,
    /// Time reconstructed from the recorded spans.
    pub measured: Nanos,
    /// The cost model's prediction for this category.
    pub predicted: Nanos,
}

/// Table 5 as reproduced from a flight recording of one Null call.
#[derive(Clone, Debug)]
pub struct FlightTable5 {
    /// The category rows (minimum rows first, then the overhead rows).
    pub rows: Vec<FlightRow>,
    /// Total of every recorded span.
    pub measured_total: Nanos,
    /// [`CostModel::lrpc_null_serial`].
    pub predicted_total: Nanos,
    /// `|measured - predicted| / predicted`.
    pub total_drift: f64,
    /// Virtual elapsed time of the recorded call.
    pub elapsed_recorded: Nanos,
    /// Virtual elapsed time of an identical call with the recorder off.
    pub elapsed_baseline: Nanos,
    /// Relative virtual-time overhead the recorder added
    /// (`(recorded - baseline) / baseline`; zero by design).
    pub recorder_overhead: f64,
    /// Spans the recorded call emitted.
    pub span_count: usize,
}

impl FlightTable5 {
    /// True if the flight reproduces the cost model within the gates.
    pub fn passes(&self) -> bool {
        self.total_drift <= MAX_TOTAL_DRIFT && self.recorder_overhead <= MAX_RECORDER_OVERHEAD
    }
}

fn relative_drift(measured: Nanos, predicted: Nanos) -> f64 {
    let m = measured.as_nanos() as f64;
    let p = predicted.as_nanos() as f64;
    if p == 0.0 {
        if m == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (m - p).abs() / p
    }
}

/// Folds a phase breakdown into the paper's Table-5 categories, diffed
/// against `cost`'s per-category predictions.
pub fn table5_from_breakdown(breakdown: &PhaseBreakdown, cost: &CostModel) -> Vec<FlightRow> {
    let total_for = |phase: Phase| -> Nanos {
        breakdown
            .totals
            .iter()
            .filter(|&&(p, _)| p == phase)
            .map(|&(_, d)| d)
            .sum()
    };
    let stubs =
        total_for(Phase::ClientStub) + total_for(Phase::ServerStub) + total_for(Phase::QueueOp);
    let accounted = [
        Phase::ProcedureCall,
        Phase::Trap,
        Phase::ContextSwitch,
        Phase::ClientStub,
        Phase::ServerStub,
        Phase::QueueOp,
        Phase::KernelTransfer,
    ];
    let other: Nanos = breakdown
        .totals
        .iter()
        .filter(|&&(p, _)| !accounted.contains(&p))
        .map(|&(_, d)| d)
        .sum();
    vec![
        FlightRow {
            operation: "Modula2+ procedure call".into(),
            measured: total_for(Phase::ProcedureCall),
            predicted: cost.hw.procedure_call,
        },
        FlightRow {
            operation: "Two kernel traps".into(),
            measured: total_for(Phase::Trap),
            predicted: cost.hw.kernel_trap * 2,
        },
        FlightRow {
            operation: "Two context switches".into(),
            measured: total_for(Phase::ContextSwitch),
            predicted: cost.hw.context_switch * 2,
        },
        FlightRow {
            operation: "Stubs".into(),
            measured: stubs,
            predicted: cost.stub_overhead(),
        },
        FlightRow {
            operation: "Kernel transfer".into(),
            measured: total_for(Phase::KernelTransfer),
            predicted: cost.kernel_transfer_overhead(),
        },
        FlightRow {
            operation: "Other".into(),
            measured: other,
            predicted: Nanos::ZERO,
        },
    ]
}

/// Runs the flight-recorded Null experiment: a steady-state serial Null
/// call with the recorder off (the baseline), then an identical call with
/// the recorder on, whose spans — isolated by the call's [`TraceId`] —
/// are folded into Table-5 layout and diffed against the cost model.
///
/// Toggles the process-wide flight recorder; callers running under a
/// parallel test harness must serialize recorder toggles themselves.
///
/// [`TraceId`]: firefly::meter::TraceId
pub fn run_null_flight() -> FlightTable5 {
    let cost = CostModel::cvax_firefly();
    let env = LrpcEnv::new(1, false);
    // Two warmups reach steady state (TLB residency, E-stack association,
    // lazy metric registration); the third call is the recorder-off
    // baseline.
    env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    let baseline = env.binding.call(0, &env.thread, "Null", &[]).unwrap();

    obs::flight::enable();
    let recorded = env.binding.call(0, &env.thread, "Null", &[]).unwrap();
    let spans = obs::flight::spans_for(recorded.trace);
    obs::flight::disable();

    let breakdown = aggregate(&spans);
    let rows = table5_from_breakdown(&breakdown, &cost);
    let predicted_total = cost.lrpc_null_serial();
    let overhead = (recorded.elapsed.as_nanos() as f64 - baseline.elapsed.as_nanos() as f64)
        / baseline.elapsed.as_nanos().max(1) as f64;
    FlightTable5 {
        rows,
        measured_total: breakdown.total,
        predicted_total,
        total_drift: relative_drift(breakdown.total, predicted_total),
        elapsed_recorded: recorded.elapsed,
        elapsed_baseline: baseline.elapsed,
        recorder_overhead: overhead.max(0.0),
        span_count: breakdown.span_count,
    }
}

/// Renders the flight-reconstructed Table 5 with the gate verdicts.
pub fn render(t: &FlightTable5) -> String {
    let body: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.operation.clone(),
                format!("{:.1}", r.measured.as_micros_f64()),
                format!("{:.1}", r.predicted.as_micros_f64()),
            ]
        })
        .collect();
    format!(
        "Table 5 from flight recording ({} spans)\n{}\n\
         total: {:.1}us measured vs {:.1}us predicted (drift {:.2}%, gate {:.0}%)\n\
         recorder virtual-time overhead: {:.2}% (gate {:.0}%)\n\
         verdict: {}\n",
        t.span_count,
        format_table(&["Operation", "Flight (us)", "Model (us)"], &body),
        t.measured_total.as_micros_f64(),
        t.predicted_total.as_micros_f64(),
        t.total_drift * 100.0,
        MAX_TOTAL_DRIFT * 100.0,
        t.recorder_overhead * 100.0,
        MAX_RECORDER_OVERHEAD * 100.0,
        if t.passes() { "PASS" } else { "FAIL" }
    )
}

/// The phase breakdown as a JSON object, for embedding in BENCH rows.
pub fn to_json(t: &FlightTable5) -> Json {
    let rows: Vec<Json> = t
        .rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("operation".into(), Json::Str(r.operation.clone())),
                ("measured_us".into(), Json::Num(r.measured.as_micros_f64())),
                (
                    "predicted_us".into(),
                    Json::Num(r.predicted.as_micros_f64()),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("rows".into(), Json::Arr(rows)),
        (
            "total_us".into(),
            Json::Num(t.measured_total.as_micros_f64()),
        ),
        (
            "predicted_total_us".into(),
            Json::Num(t.predicted_total.as_micros_f64()),
        ),
        ("total_drift".into(), Json::Num(t.total_drift)),
        ("recorder_overhead".into(), Json::Num(t.recorder_overhead)),
        ("span_count".into(), Json::Num(t.span_count as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use firefly::meter::TraceId;

    use crate::common::flight_lock;

    #[test]
    fn flight_reproduces_table5_within_one_percent() {
        let _serial = flight_lock();
        let t = run_null_flight();
        assert!(t.span_count > 0, "the call emitted no flight spans");
        assert!(
            t.total_drift <= MAX_TOTAL_DRIFT,
            "flight total {} vs model {} (drift {:.3}%)",
            t.measured_total,
            t.predicted_total,
            t.total_drift * 100.0
        );
        // Category agreement, not just the total: minimum rows carry no
        // overhead and vice versa.
        for row in &t.rows {
            assert!(
                relative_drift(row.measured, row.predicted) <= MAX_TOTAL_DRIFT,
                "{}: measured {} vs predicted {}",
                row.operation,
                row.measured,
                row.predicted
            );
        }
    }

    #[test]
    fn recorder_adds_no_virtual_time() {
        let _serial = flight_lock();
        let t = run_null_flight();
        assert_eq!(
            t.elapsed_recorded, t.elapsed_baseline,
            "the flight recorder must not charge the virtual clock"
        );
        assert_eq!(t.recorder_overhead, 0.0);
        assert!(t.passes());
    }

    #[test]
    fn aggregate_sums_by_phase() {
        let spans = vec![
            SpanRecord {
                trace: TraceId::from_raw(7),
                phase: Phase::Trap.code(),
                start_ns: 0,
                dur_ns: 18_000,
            },
            SpanRecord {
                trace: TraceId::from_raw(7),
                phase: Phase::Trap.code(),
                start_ns: 100_000,
                dur_ns: 18_000,
            },
            SpanRecord {
                trace: TraceId::from_raw(7),
                phase: Phase::ContextSwitch.code(),
                start_ns: 20_000,
                dur_ns: 33_000,
            },
        ];
        let b = aggregate(&spans);
        assert_eq!(b.span_count, 3);
        assert_eq!(b.total, Nanos::from_nanos(69_000));
        assert_eq!(
            b.totals,
            vec![
                (Phase::Trap, Nanos::from_nanos(36_000)),
                (Phase::ContextSwitch, Nanos::from_nanos(33_000)),
            ]
        );
    }

    #[test]
    fn json_embedding_round_trips() {
        let _serial = flight_lock();
        let t = run_null_flight();
        let doc = to_json(&t);
        let parsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(parsed, doc);
        let total = parsed.get("total_us").and_then(Json::as_f64).unwrap();
        assert!((total - t.measured_total.as_micros_f64()).abs() < 1e-9);
        assert_eq!(
            parsed.get("rows").and_then(Json::as_arr).unwrap().len(),
            t.rows.len()
        );
    }
}
